//! A full weakly-connected browsing transfer over the live prototype:
//! real frames, real CRC checks, real corruption, progressive
//! rendering, and stall recovery with the client-side packet cache.
//!
//! ```sh
//! cargo run --example browse_session
//! ```

use mrtweb::content::query::Query;
use mrtweb::content::sc::{Measure, StructuralCharacteristic};
use mrtweb::docmodel::document::Document;
use mrtweb::docmodel::lod::Lod;
use mrtweb::prelude::CacheMode;
use mrtweb::textproc::pipeline::ScPipeline;
use mrtweb::transport::live::{run_transfer, ClientEvent, LiveServer, TransferConfig};

fn document() -> Document {
    Document::parse_xml(
        "<document><title>Field Guide to Mobile Web Systems</title>\
         <section><title>Weak Connectivity</title>\
         <paragraph>Wireless mobile channels corrupt packets and drop \
         connections, so browsing must tolerate loss rather than assume \
         reliable delivery of whole documents.</paragraph>\
         <paragraph>Response time is dominated by retransmissions; a client \
         cache of intact cooked packets avoids resending what already \
         arrived safely.</paragraph></section>\
         <section><title>Content Ordering</title>\
         <paragraph>Ranking organizational units by query-based information \
         content ships the most informative paragraphs first, letting the \
         reader abandon irrelevant pages early.</paragraph></section>\
         <section><title>Appendix</title>\
         <paragraph>Ancillary tables, acknowledgements and other low-content \
         material travel last under multi-resolution ordering.</paragraph>\
         </section></document>",
    )
    .expect("example document is valid")
}

fn run(alpha: f64, cache: CacheMode, label: &str) {
    let doc = document();
    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let query = Query::parse("mobile wireless cache", &pipeline);
    let sc = StructuralCharacteristic::from_index(&index, Some(&query));
    let server = LiveServer::new(&doc, &sc, Lod::Paragraph, Measure::Qic, 48, 1.5)
        .expect("document fits a single dispersal group");
    println!(
        "--- {label}: α={alpha}, M={}, N={}, {} slices ---",
        server.header().m,
        server.header().n,
        server.header().plan.slices().len()
    );
    let report = run_transfer(
        server,
        &TransferConfig {
            alpha,
            seed: 42,
            cache_mode: cache,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rendered: Vec<String> = Vec::new();
    for event in &report.events {
        match event {
            ClientEvent::SliceProgress { label, fraction }
                if *fraction >= 1.0 && !rendered.contains(label) =>
            {
                rendered.push(label.clone());
            }
            ClientEvent::Reconstructed => {
                println!("  [render] full document reconstructed");
            }
            // Partial progress below the render threshold.
            ClientEvent::SliceProgress { .. } => {}
        }
    }
    println!("  units fully rendered from clear text, in arrival order: {rendered:?}");
    println!(
        "  completed={} rounds={} frames_sent={} corrupted={} payload={}B",
        report.completed,
        report.rounds,
        report.frames_sent,
        report.frames_corrupted,
        report.payload.len()
    );
}

fn main() {
    run(0.0, CacheMode::Caching, "clean channel");
    run(0.3, CacheMode::Caching, "lossy channel, Caching");
    run(0.3, CacheMode::NoCaching, "lossy channel, NoCaching");
}
