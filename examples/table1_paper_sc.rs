//! Regenerates the paper's Table 1: IC / QIC / MQIC of every
//! organizational unit of a draft of the manuscript under the query
//! `{browsing, mobile, web}`.
//!
//! ```sh
//! cargo run --example table1_paper_sc
//! ```

use mrtweb::content::query::Query;
use mrtweb::content::sc::StructuralCharacteristic;
use mrtweb::sim::table1::{paper_draft, render_table1};
use mrtweb::textproc::pipeline::ScPipeline;

fn main() {
    println!("Table 1: information content of a draft paper");
    println!("query = {{browsing, mobile, web}}\n");
    println!("{}", render_table1());

    // The same machinery with a different query, to show QIC is dynamic
    // while IC stays fixed (§3.2).
    let doc = paper_draft();
    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let q2 = Query::parse("vandermonde packet cache", &pipeline);
    let sc2 = StructuralCharacteristic::from_index(&index, Some(&q2));
    println!("\nsame document, query = {{vandermonde, packet, cache}}:\n");
    println!("{}", sc2.render_table());
}
