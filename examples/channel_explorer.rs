//! Sweeps channel corruption (α), redundancy (γ) and transmission LOD,
//! printing mean response times — a compact tour of the trade-offs
//! behind Figures 4 and 6.
//!
//! ```sh
//! cargo run --release --example channel_explorer [docs] [reps]
//! ```

use mrtweb::docmodel::lod::Lod;
use mrtweb::prelude::CacheMode;
use mrtweb::sim::browsing::replicate;
use mrtweb::sim::params::Params;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let docs: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(40);
    let reps: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("mean response time (s) per document; docs={docs}, reps={reps}");
    println!("\n== sweep 1: α × γ at the document LOD (all documents relevant) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "α", "γ=1.2 NC", "γ=1.2 C", "γ=1.8 NC", "γ=1.8 C"
    );
    for alpha in [0.1, 0.3, 0.5] {
        print!("{alpha:>6.1}");
        for gamma in [1.2, 1.8] {
            for cache in [CacheMode::NoCaching, CacheMode::Caching] {
                let params = Params {
                    alpha,
                    gamma,
                    cache_mode: cache,
                    irrelevant_fraction: 0.0,
                    docs_per_session: docs,
                    max_rounds: 80,
                    ..Default::default()
                };
                let s = replicate(&params, Lod::Document, reps, 7);
                print!(" {:>10.2}", s.mean);
            }
        }
        println!();
    }

    println!("\n== sweep 2: LOD × relevance threshold F (all documents irrelevant, Caching) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "F", "document", "section", "subsect", "paragraph"
    );
    for f in [0.1, 0.3, 0.5, 0.8] {
        print!("{f:>6.1}");
        for lod in [Lod::Document, Lod::Section, Lod::Subsection, Lod::Paragraph] {
            let params = Params {
                alpha: 0.1,
                cache_mode: CacheMode::Caching,
                irrelevant_fraction: 1.0,
                threshold: f,
                docs_per_session: docs,
                max_rounds: 80,
                ..Default::default()
            };
            let s = replicate(&params, lod, reps, 11);
            print!(" {:>10.2}", s.mean);
        }
        println!();
    }
    println!("\nlower is better; the paragraph column shows the multi-resolution win.");
}
