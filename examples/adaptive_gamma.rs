//! Adaptive redundancy (§4.2's suggestion): the client feeds observed
//! packet fates into an EWMA estimate of α; the server re-plans γ per
//! document. The channel drifts from calm to stormy and back.
//!
//! ```sh
//! cargo run --release --example adaptive_gamma
//! ```

use mrtweb::channel::bandwidth::Bandwidth;
use mrtweb::channel::bernoulli::BernoulliChannel;
use mrtweb::channel::link::Link;
use mrtweb::transport::adaptive::AdaptiveRedundancy;
use mrtweb::transport::plan::{TransmissionPlan, UnitSlice};
use mrtweb::transport::session::{download, CacheMode, Relevance, SessionConfig};

fn main() {
    let mut controller = AdaptiveRedundancy::new(0.95, 0.05, 0.1);
    let mut link = Link::new(
        Bandwidth::from_kbps(19.2),
        BernoulliChannel::new(0.1, 99),
        1,
    );
    let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);

    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "doc", "true α", "est α", "γ", "time (s)", "rounds"
    );
    for doc in 0..30 {
        // The channel drifts: calm -> storm (docs 10..20) -> calm.
        let true_alpha = if (10..20).contains(&doc) { 0.45 } else { 0.1 };
        link.loss_mut().set_alpha(true_alpha);

        let m = plan.raw_packets(256);
        let gamma = controller.gamma(m).expect("valid plan");
        let config = SessionConfig {
            gamma,
            cache_mode: CacheMode::Caching,
            max_rounds: 100,
            ..Default::default()
        };
        let report = download(&plan, Relevance::relevant(), &config, &mut link);
        // Feed what the client observed back into the controller.
        let observed = report.packets_sent as usize;
        let corrupted = (report.packets_sent as f64 * true_alpha).round() as usize;
        controller.observe_round(corrupted.min(observed), observed);

        println!(
            "{:>4} {:>8.2} {:>8.3} {:>8.3} {:>10.2} {:>8}",
            doc,
            true_alpha,
            controller.estimated_alpha(),
            gamma,
            report.response_time,
            report.rounds
        );
    }
    println!("\nγ rises while the storm lasts and decays afterwards — bandwidth is");
    println!("spent on redundancy only while the channel actually needs it.");
}
