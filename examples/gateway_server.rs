//! The full server side of Figure 1: documents persisted in a
//! database-gateway store, structural characteristics cached per query,
//! transmissions prepared on request, and delivered to a live client
//! over a lossy link.
//!
//! ```sh
//! cargo run --example gateway_server
//! ```

use std::sync::Arc;

use mrtweb::docmodel::document::Document;
use mrtweb::docmodel::lod::Lod;
use mrtweb::store::disk::{load_store, save_store};
use mrtweb::store::gateway::{Gateway, Request};
use mrtweb::store::store::DocumentStore;
use mrtweb::transport::live::{run_transfer, TransferConfig};

fn page(title: &str, hot: &str, cold: &str) -> Document {
    Document::parse_xml(&format!(
        "<document><title>{title}</title>\
         <section><title>Main</title><paragraph>{hot}</paragraph></section>\
         <section><title>Appendix</title><paragraph>{cold}</paragraph></section>\
         </document>"
    ))
    .expect("example pages are valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Populate the store (a crawler or publisher would do this).
    let store = Arc::new(DocumentStore::new(16));
    store.put(
        "http://site/mobile-guide",
        page(
            "Mobile Guide",
            "mobile wireless browsing needs careful bandwidth and caching strategies",
            "change history and acknowledgements",
        ),
    );
    store.put(
        "http://site/cookbook",
        page(
            "Cookbook",
            "slow braises for winter evenings",
            "index of suppliers",
        ),
    );
    println!("store holds {} documents", store.len());

    // 2. Persist and reload — the gateway restarts without re-crawling.
    let dir = std::env::temp_dir().join("mrtweb-gateway-example");
    let saved = save_store(&dir, &store)?;
    let (reloaded, corrupt) = load_store(&dir, 16)?;
    println!(
        "persisted {saved} documents; reloaded {} (corrupt: {})",
        reloaded.len(),
        corrupt.len()
    );

    // 3. Serve a query-biased transmission over a 25%-lossy channel.
    let gateway = Gateway::new(Arc::new(reloaded));
    let request = Request {
        lod: Lod::Section,
        packet_size: 64,
        ..Request::new("http://site/mobile-guide", "mobile wireless caching")
    };
    let server = gateway.prepare(&request)?;
    println!(
        "prepared transmission: M={}, N={}, first slice = unit {}",
        server.header().m,
        server.header().n,
        server.header().plan.slices()[0].label
    );
    let report = run_transfer(
        server,
        &TransferConfig {
            alpha: 0.25,
            seed: 17,
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "transfer: completed={} rounds={} corrupted={} of {} frames",
        report.completed, report.rounds, report.frames_corrupted, report.frames_sent
    );

    // 4. The second identical request hits the SC cache.
    let _ = gateway.prepare(&request)?;
    let stats = gateway.store().stats();
    println!(
        "sc cache: {} hits, {} misses",
        stats.sc_hits, stats.sc_misses
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
