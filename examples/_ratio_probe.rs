fn main() {
    let spec = mrtweb::docmodel::gen::SyntheticDocSpec::default();
    let mut total_raw = 0usize;
    let mut total_packed = 0usize;
    for seed in 0..10 {
        let doc = spec.generate(seed).document;
        let text = doc.full_text();
        let packed = mrtweb::transport::compress::compress(text.as_bytes());
        total_raw += text.len();
        total_packed += packed.len();
    }
    println!(
        "mean compression ratio: {:.3}",
        total_packed as f64 / total_raw as f64
    );
}
