//! Profile-driven prefetching over a cluster of linked pages — the
//! paper's §6 direction: "intelligent prefetching based on information
//! content and user-profiling, utilizing the unused wireless bandwidth
//! being left idle".
//!
//! ```sh
//! cargo run --example prefetch_cluster
//! ```

use mrtweb::content::profile::UserProfile;
use mrtweb::content::qic::QueryContent;
use mrtweb::docmodel::collection::Collection;
use mrtweb::docmodel::document::Document;
use mrtweb::docmodel::unit::UnitPath;
use mrtweb::textproc::pipeline::ScPipeline;
use mrtweb::transport::prefetch::{Candidate, PrefetchQueue};

fn page(title: &str, body: &str) -> Document {
    Document::parse_xml(&format!(
        "<document><title>{title}</title><section><title>{title}</title>\
         <paragraph>{body}</paragraph></section></document>"
    ))
    .expect("example pages are valid")
}

fn main() {
    // A site: an index linking to four articles.
    let mut site = Collection::new("index");
    site.insert("index", page("Index", "links to everything below"));
    site.insert(
        "wireless-tips",
        page(
            "Wireless Tips",
            "mobile wireless bandwidth caching for weak connectivity",
        ),
    );
    site.insert(
        "packet-codes",
        page(
            "Packet Codes",
            "vandermonde dispersal packet redundancy reconstruction",
        ),
    );
    site.insert(
        "gardening",
        page("Gardening", "tomatoes compost seedlings and mulch"),
    );
    site.insert("recipes", page("Recipes", "flour butter sugar and an oven"));
    for to in ["wireless-tips", "packet-codes", "gardening", "recipes"] {
        site.link("index", to).expect("pages exist");
    }

    // The user has been reading networking material; the profile learns.
    let pipeline = ScPipeline::default();
    let mut profile = UserProfile::new(0.9, 1.0);
    profile.accept(&pipeline.run(&page("a", "mobile wireless packet transmission")));
    profile.accept(&pipeline.run(&page("b", "wireless bandwidth caching packet loss")));
    profile.reject(&pipeline.run(&page("c", "tomatoes compost gardening")));
    let standing_query = profile.to_query(6, 4);
    println!("standing query from profile:");
    for (stem, count) in standing_query.iter() {
        println!("  {stem:<12} weight-count {count}");
    }

    // Score every linked page by QIC against the standing query and
    // enroll it for idle-bandwidth prefetching.
    let mut queue = PrefetchQueue::new();
    for key in site.reading_order().into_iter().skip(1) {
        let doc = site.page(key).expect("reading order lists existing pages");
        let index = pipeline.run(doc);
        let qic = QueryContent::from_index(&index, &standing_query);
        let score = qic.scores().subtree_at(&UnitPath::root());
        // QIC of the root is 1 when the page matches at all and 0 when
        // not; refine with the page's raw matching mass.
        let mass: f64 = standing_query
            .stems()
            .map(|s| index.total_count(s) as f64)
            .sum();
        let priority = score * mass;
        println!(
            "page {key:<14} qic-root {score:.1}  match-mass {mass:>4}  priority {priority:.1}"
        );
        queue.enroll(Candidate::new(key, priority, doc.content_len()));
    }

    println!("\nidle-bandwidth prefetch order:");
    let mut rank = 1;
    while let Some(c) = queue.pop() {
        println!(
            "  {rank}. {} (priority {:.1}, {} bytes)",
            c.id, c.priority, c.bytes
        );
        rank += 1;
    }
    println!(
        "\nnetworking articles outrank gardening and recipes — the profile steers the prefetcher."
    );
}
