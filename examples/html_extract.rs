//! Structure extraction from plain HTML (the paper's §6 work-in-
//! progress): heading levels induce the LOD hierarchy, so unstructured
//! pages gain multi-resolution transmission too.
//!
//! ```sh
//! cargo run --example html_extract
//! ```

use mrtweb::content::query::Query;
use mrtweb::content::sc::{Measure, StructuralCharacteristic};
use mrtweb::docmodel::html::extract;
use mrtweb::docmodel::lod::Lod;
use mrtweb::textproc::pipeline::ScPipeline;
use mrtweb::transport::plan::plan_document;

const PAGE: &str = r#"<html><head><title>Trail Conditions Bulletin</title></head>
<body>
<h1>Current Conditions</h1>
<p>The mobile network along the ridge is <b>weakly connected</b>; expect
corrupted packets and slow mobile web browsing at the shelters.</p>
<p>Rangers publish bulletins as structured web documents so phones can fetch
the high-content sections first.</p>
<h1>Route Notes</h1>
<h2>North Approach</h2>
<p>Snow free. Water at the second switchback.</p>
<h2>South Approach</h2>
<p>Bridge out; ford the creek at the marked crossing.</p>
<h1>Administrivia</h1>
<p>Permits renew on the first of the month. Parking lot B is closed.</p>
<script>analytics.track("pageview");</script>
</body></html>"#;

fn main() {
    let doc = extract(PAGE).expect("tag soup is tolerated");
    println!("extracted title: {:?}", doc.title());
    println!(
        "sections={} subsections={} paragraphs={}",
        doc.units_at(Lod::Section).len(),
        doc.units_at(Lod::Subsection).len(),
        doc.units_at(Lod::Paragraph).len()
    );

    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let query = Query::parse("mobile web browsing", &pipeline);
    let sc = StructuralCharacteristic::from_index(&index, Some(&query));
    println!("\nstructural characteristic:\n{}", sc.render_table());

    let (plan, _) = plan_document(&doc, &sc, Lod::Paragraph, Measure::Qic);
    println!("paragraph transmission order under the query:");
    for s in plan.slices() {
        println!(
            "  {:<8} {:>4} bytes  content {:.4}",
            s.label, s.bytes, s.content
        );
    }
    println!("\nthe connectivity paragraph outranks administrivia, as it should.");
}
