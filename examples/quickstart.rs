//! Quickstart: parse a structured document, compute its structural
//! characteristic, encode it for a lossy channel, lose packets, and
//! reconstruct.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mrtweb::content::query::Query;
use mrtweb::content::sc::{Measure, StructuralCharacteristic};
use mrtweb::docmodel::document::Document;
use mrtweb::docmodel::lod::Lod;
use mrtweb::erasure::ida::Codec;
use mrtweb::erasure::redundancy::Plan;
use mrtweb::textproc::pipeline::ScPipeline;
use mrtweb::transport::plan::plan_document;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A structured web document (XML per the paper's model).
    let xml = "<document><title>Weakly-Connected Browsing</title>\
        <abstract><paragraph>Mobile web browsing over lossy wireless links \
        wastes bandwidth when whole documents must be retransmitted.</paragraph></abstract>\
        <section><title>Multi-Resolution Transmission</title>\
        <paragraph>Units with higher information content are sent first, so the \
        client can judge relevance early and hit stop.</paragraph></section>\
        <section><title>Fault Tolerance</title>\
        <paragraph>A systematic Vandermonde dispersal turns M raw packets into N \
        cooked packets; any M intact cooked packets reconstruct the document.</paragraph>\
        </section></document>";
    let doc = Document::parse_xml(xml)?;
    println!(
        "parsed: {:?} ({} units, {} bytes)",
        doc.title(),
        doc.unit_count(),
        doc.content_len()
    );

    // 2. Structural characteristic with a user query.
    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let query = Query::parse("mobile browsing", &pipeline);
    let sc = StructuralCharacteristic::from_index(&index, Some(&query));
    println!("\nstructural characteristic:\n{}", sc.render_table());

    // 3. Transmission plan: QIC-descending unit order at paragraph LOD.
    let (plan, payload) = plan_document(&doc, &sc, Lod::Paragraph, Measure::Qic);
    println!("transmission order:");
    for s in plan.slices() {
        println!(
            "  unit {:<6} {:>4} bytes  content {:.4}",
            s.label, s.bytes, s.content
        );
    }

    // 4. Plan redundancy for a 20%-lossy channel at 99% success.
    let packet_size = 64;
    let m = plan.raw_packets(packet_size);
    let code = Plan::optimal(m, 0.2, 0.99)?;
    println!(
        "\nredundancy plan: M={} raw -> N={} cooked (γ={:.2}, achieves {:.4})",
        code.raw,
        code.cooked,
        code.ratio(),
        code.achieved_probability()?
    );

    // 5. Encode, lose every third packet, reconstruct.
    let codec = Codec::new(code.raw, code.cooked, packet_size)?;
    let cooked = codec.encode(&payload);
    let survivors: Vec<(usize, Vec<u8>)> = cooked
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0) // channel corrupts every 3rd packet
        .collect();
    let restored = codec.decode(&survivors, payload.len())?;
    assert_eq!(restored, payload);
    println!(
        "lost {} of {} packets; document reconstructed bit-exactly ({} bytes)",
        code.cooked - survivors.len(),
        code.cooked,
        restored.len()
    );
    Ok(())
}
