#!/usr/bin/env bash
# Tier-1 gate plus lint and a perf smoke run.
#
#   ./ci.sh            # everything
#   ./ci.sh --no-bench # skip the bench smoke (e.g. constrained runners)
#
# The bench smoke runs the erasure-codec sweep in quick mode and leaves
# its machine-readable summary in BENCH_erasure.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")"

run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) run_bench=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> mrtweb-analysis (in-tree lint: panic paths, SAFETY comments, layering)"
cargo run -q -p mrtweb-analysis -- check

echo "==> cargo clippy -D warnings (pedantic)"
# Pedantic is the baseline; the -A list below names the lints we accept
# wholesale (cast style in numeric simulation code, doc phrasing) so
# everything else stays deny-by-default.
cargo clippy --workspace --all-targets -- \
  -W clippy::pedantic \
  -A clippy::cast-possible-truncation \
  -A clippy::cast-precision-loss \
  -A clippy::cast-sign-loss \
  -A clippy::cast-lossless \
  -A clippy::must-use-candidate \
  -A clippy::return-self-not-must-use \
  -A clippy::doc-markdown \
  -A clippy::float-cmp \
  -A clippy::unreadable-literal \
  -A clippy::too-many-lines \
  -A clippy::missing-errors-doc \
  -A clippy::missing-panics-doc \
  -A clippy::module-name-repetitions \
  -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests (PROPTEST_CASES=${PROPTEST_CASES:-192})"
PROPTEST_CASES="${PROPTEST_CASES:-192}" cargo test --workspace -q

echo "==> fault-injection matrix (8 scenarios x 3 seeds)"
for seed in 1 2 3; do
  target/release/mrtweb faultrun --all --seed "$seed" \
    | grep -E '^(PASS|FAIL)' | sed "s/^/    /"
done

echo "==> proxy smoke: serve + loadgen over loopback -> BENCH_proxy.json"
proxy_log="$(mktemp)"
target/release/mrtweb serve --addr 127.0.0.1:0 --runtime-secs 90 > "$proxy_log" 2>&1 &
proxy_pid=$!
trap 'kill "$proxy_pid" 2>/dev/null || true' EXIT
proxy_addr=""
for _ in $(seq 1 50); do
  proxy_addr="$(awk '/^listening on /{print $3; exit}' "$proxy_log" || true)"
  [ -n "$proxy_addr" ] && break
  sleep 0.1
done
[ -n "$proxy_addr" ] || { echo "proxy did not come up: $(cat "$proxy_log")" >&2; exit 1; }
echo "    proxy at $proxy_addr"
timeout 60 target/release/mrtweb loadgen --addr "$proxy_addr" \
  --clients 8 --requests 32 --json | sed "s/^/    /"
timeout 60 target/release/mrtweb loadgen --addr "$proxy_addr" \
  --sweep 1,8,32 --requests 8 --bench-out BENCH_proxy.json > /dev/null
test -s BENCH_proxy.json || { echo "BENCH_proxy.json missing" >&2; exit 1; }
# The metrics must parse as JSON and report a clean run: zero CRC
# rejections, timeouts, and protocol errors across the whole smoke.
timeout 30 target/release/mrtweb stats --addr "$proxy_addr" --assert-clean | sed "s/^/    /"
kill "$proxy_pid" 2>/dev/null || true
wait "$proxy_pid" 2>/dev/null || true
trap - EXIT

if [ "$run_bench" -eq 1 ]; then
  echo "==> bench smoke (quick mode): erasure_codec -> BENCH_erasure.json"
  MRTWEB_BENCH_QUICK=1 cargo bench -p mrtweb-bench --bench erasure_codec
  test -s BENCH_erasure.json || { echo "BENCH_erasure.json missing" >&2; exit 1; }
fi

echo "==> ci.sh OK"
