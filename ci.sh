#!/usr/bin/env bash
# Tier-1 gate plus lint, fault matrix, perf smoke and the bench gate,
# split into named stages so CI jobs (and humans) can run them alone.
#
#   ./ci.sh                      # every stage, in order
#   ./ci.sh --stage clippy       # one stage (repeatable: --stage a --stage b)
#   ./ci.sh --quick              # reduced proptest cases / single fault seed
#   ./ci.sh --no-bench           # skip the bench smoke (constrained runners)
#
# Stages, in default order:
#
#   fmt            cargo fmt --check
#   analysis       in-tree lint (panic paths, SAFETY comments, layering)
#   clippy         pedantic clippy, -D warnings
#   tier1          release build + default-feature test suite
#   tests          full workspace test sweep (PROPTEST_CASES honored)
#   obs-no-trace   mrtweb-obs with the `trace` feature off (no-op path)
#   proxy-fallback mrtweb-proxy with the `event` feature off (blocking
#                  engine only, unsafe code forbidden crate-wide)
#   faults         fault-injection matrix (every faultrun scenario x seeds)
#   proxy-smoke    event-engine serve + loadgen over loopback,
#                  closed sweep up to C=1024 -> BENCH_proxy.json
#   broadcast      carousel smoke: 256 listeners x 4 channels with zero
#                  re-encodes, K-sweep -> BENCH_broadcast.json
#   edge           edge-cache smoke: zero-re-encode hit path, two-cell
#                  roaming handoff, eviction under a tiny budget; folds
#                  the edge section into BENCH_proxy.json
#   bench          erasure-codec sweep (quick mode) -> BENCH_erasure.json
#   bench-gate     compare fresh BENCH_*.json against BENCH_BASELINE.json
#   miri           cargo miri test on the concurrency-bearing crates
#                  (SKIPs when the miri component is not installed)
#   tsan           ThreadSanitizer test pass on the concurrency-bearing
#                  crates (SKIPs without nightly + rust-src: TSan needs
#                  an instrumented std via -Zbuild-std to avoid false
#                  positives in uninstrumented runtime code)
#
# The proxy readiness wait is bounded but configurable: set
# MRTWEB_PROXY_WAIT_SECS (default 5) on slow runners. The proxy child
# is torn down unconditionally — including when a stage fails mid-way.
set -euo pipefail
cd "$(dirname "$0")"

ALL_STAGES="fmt analysis clippy tier1 tests obs-no-trace proxy-fallback faults proxy-smoke broadcast edge bench bench-gate miri tsan"

run_bench=1
quick=0
stages=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --no-bench) run_bench=0 ;;
    --quick) quick=1 ;;
    --stage)
      shift
      [ "$#" -gt 0 ] || { echo "--stage needs a name" >&2; exit 2; }
      case " $ALL_STAGES " in
        *" $1 "*) stages="$stages $1" ;;
        *) echo "unknown stage: $1 (known: $ALL_STAGES)" >&2; exit 2 ;;
      esac
      ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done
[ -n "$stages" ] || stages="$ALL_STAGES"

# ---- proxy teardown: unconditional, idempotent -------------------------
proxy_pid=""
proxy_log=""
cleanup_proxy() {
  if [ -n "$proxy_pid" ]; then
    kill "$proxy_pid" 2>/dev/null || true
    wait "$proxy_pid" 2>/dev/null || true
    proxy_pid=""
  fi
  if [ -n "$proxy_log" ]; then
    rm -f "$proxy_log"
    proxy_log=""
  fi
}
trap cleanup_proxy EXIT

stage_fmt() {
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check
}

stage_analysis() {
  echo "==> mrtweb-analysis (in-tree lint: panic paths, SAFETY comments, layering)"
  cargo run -q -p mrtweb-analysis -- check
}

stage_clippy() {
  echo "==> cargo clippy -D warnings (pedantic)"
  # Pedantic is the baseline; the -A list below names the lints we accept
  # wholesale (cast style in numeric simulation code, doc phrasing) so
  # everything else stays deny-by-default.
  cargo clippy --workspace --all-targets -- \
    -W clippy::pedantic \
    -A clippy::cast-possible-truncation \
    -A clippy::cast-precision-loss \
    -A clippy::cast-sign-loss \
    -A clippy::cast-lossless \
    -A clippy::must-use-candidate \
    -A clippy::return-self-not-must-use \
    -A clippy::doc-markdown \
    -A clippy::float-cmp \
    -A clippy::unreadable-literal \
    -A clippy::too-many-lines \
    -A clippy::missing-errors-doc \
    -A clippy::missing-panics-doc \
    -A clippy::module-name-repetitions \
    -D warnings
}

stage_tier1() {
  echo "==> tier-1: cargo build --release && cargo test -q"
  cargo build --release
  cargo test -q
}

stage_tests() {
  local cases="${PROPTEST_CASES:-192}"
  [ "$quick" -eq 1 ] && cases="${PROPTEST_CASES:-32}"
  echo "==> workspace tests (PROPTEST_CASES=$cases)"
  PROPTEST_CASES="$cases" cargo test --workspace -q
}

stage_obs_no_trace() {
  echo "==> mrtweb-obs with tracing compiled out (--no-default-features)"
  cargo test -q -p mrtweb-obs --no-default-features
}

stage_proxy_fallback() {
  echo "==> mrtweb-proxy fallback build (--no-default-features: blocking engine only)"
  cargo test -q -p mrtweb-proxy --no-default-features
}

stage_faults() {
  local seeds="1 2 3"
  [ "$quick" -eq 1 ] && seeds="1"
  [ -x target/release/mrtweb ] || cargo build --release
  # Scenario count comes from the binary itself (--list prints a header
  # line, then one indented line per scenario) so the matrix can grow
  # without this script going stale.
  local scenarios
  scenarios="$(target/release/mrtweb faultrun --list | grep -c '^  ')"
  echo "==> fault-injection matrix ($scenarios scenarios x seeds: $seeds)"
  for seed in $seeds; do
    target/release/mrtweb faultrun --all --seed "$seed" \
      | grep -E '^(PASS|FAIL)' | sed "s/^/    /"
  done
}

stage_proxy_smoke() {
  echo "==> proxy smoke: event-engine serve + loadgen over loopback -> BENCH_proxy.json"
  [ -x target/release/mrtweb ] || cargo build --release
  proxy_log="$(mktemp)"
  target/release/mrtweb serve --addr 127.0.0.1:0 --engine auto \
    --max-sessions 4096 --runtime-secs 120 > "$proxy_log" 2>&1 &
  proxy_pid=$!
  local wait_secs="${MRTWEB_PROXY_WAIT_SECS:-5}"
  local proxy_addr=""
  for _ in $(seq 1 $((wait_secs * 10))); do
    proxy_addr="$(awk '/^listening on /{print $3; exit}' "$proxy_log" || true)"
    [ -n "$proxy_addr" ] && break
    # Fail fast if the server died before announcing its address.
    kill -0 "$proxy_pid" 2>/dev/null \
      || { echo "proxy exited early: $(cat "$proxy_log")" >&2; return 1; }
    sleep 0.1
  done
  [ -n "$proxy_addr" ] || {
    echo "proxy did not come up within ${wait_secs}s (MRTWEB_PROXY_WAIT_SECS to raise): $(cat "$proxy_log")" >&2
    return 1
  }
  echo "    proxy at $proxy_addr"
  grep -q "engine event" "$proxy_log" \
    || echo "    note: event engine unavailable, smoking the blocking fallback"
  timeout 60 target/release/mrtweb loadgen --addr "$proxy_addr" \
    --clients 8 --requests 32 --json | sed "s/^/    /"
  # Open-loop mode: offered vs attempted rate, coordinated-omission-free
  # latency. A deliberately modest rate so the stage never flakes.
  timeout 60 target/release/mrtweb loadgen --addr "$proxy_addr" \
    --clients 32 --requests 8 --rate 500 --arrival poisson --json | sed "s/^/    /"
  timeout 120 target/release/mrtweb loadgen --addr "$proxy_addr" \
    --sweep 1,8,32,256,1024 --requests 8 --bench-out BENCH_proxy.json > /dev/null
  test -s BENCH_proxy.json || { echo "BENCH_proxy.json missing" >&2; return 1; }
  # The C=1024 point is the held-concurrency acceptance check: every
  # session admitted, zero rejected, zero failed.
  grep -q '"clients": 1024, "mode": "closed", "attempted": 8192, "completed": 8192, "rejected": 0, "failed": 0' \
    BENCH_proxy.json \
    || { echo "C=1024 sweep point not clean:" >&2; cat BENCH_proxy.json >&2; return 1; }
  # The stats snapshot must parse and report a clean run: zero CRC
  # rejections, timeouts, and protocol errors across the whole smoke.
  timeout 30 target/release/mrtweb stats --addr "$proxy_addr" --assert-clean | sed "s/^/    /"
  cleanup_proxy
}

stage_broadcast() {
  echo "==> broadcast smoke: carousel fan-out + K-sweep -> BENCH_broadcast.json"
  [ -x target/release/mrtweb ] || cargo build --release
  # Acceptance: every listener completes and the trace shows exactly one
  # encode per document regardless of listener count (the verb exits
  # nonzero otherwise).
  target/release/mrtweb broadcast --listeners 256 --channels 4 | sed "s/^/    /"
  # Under corrupting air the CRC + redundancy path must still finish.
  target/release/mrtweb broadcast --listeners 32 --fault corrupting | sed "s/^/    /"
  local sweep_out
  sweep_out="$(target/release/mrtweb broadcast --sweep 1,2,4 --bench-out BENCH_broadcast.json | tail -1)"
  echo "    $sweep_out"
  test -s BENCH_broadcast.json || { echo "BENCH_broadcast.json missing" >&2; return 1; }
  case "$sweep_out" in
    *"decreasing with K: true"*) ;;
    *) echo "mean access time did not decrease with more channels" >&2; return 1 ;;
  esac
}

stage_edge() {
  echo "==> edge smoke: zero-re-encode hits, two-cell roaming, eviction under budget"
  [ -x target/release/mrtweb ] || cargo build --release
  # Acceptance: repeat requests hit the cache and the trace shows one
  # encode per distinct document; the verb exits nonzero otherwise.
  local run_out
  run_out="$(target/release/mrtweb edge --docs 8 --requests 64)"
  echo "$run_out" | sed "s/^/    /"
  case "$run_out" in
    *"zero_reencode=true"*) ;;
    *) echo "edge smoke re-encoded a cached document" >&2; return 1 ;;
  esac
  # A 12 KiB budget over this corpus must evict yet never exceed the
  # budget (the verb checks under_budget itself; assert the pressure).
  local evict_out
  evict_out="$(target/release/mrtweb edge --docs 6 --requests 18 --budget $((12 * 1024)))"
  echo "$evict_out" | sed "s/^/    /"
  case "$evict_out" in
    *"under_budget=true"*) ;;
    *) echo "edge eviction run exceeded its byte budget" >&2; return 1 ;;
  esac
  # Two-cell roaming handoff: cell B serves the resume from the one
  # migrated record, byte-identically, cheaper than a restart.
  target/release/mrtweb edge --roam --docs 3 | sed "s/^/    /"
  # Fold the measured hit/miss latencies into the bench envelope the
  # gate reads (idempotent over the proxy-smoke array).
  target/release/mrtweb edge --docs 8 --requests 64 --bench-out BENCH_proxy.json > /dev/null
  test -s BENCH_proxy.json || { echo "BENCH_proxy.json missing" >&2; return 1; }
  grep -q '"edge":' BENCH_proxy.json \
    || { echo "BENCH_proxy.json has no edge section" >&2; return 1; }
}

stage_bench() {
  if [ "$run_bench" -ne 1 ]; then
    echo "==> bench smoke skipped (--no-bench)"
    return 0
  fi
  echo "==> bench smoke (quick mode): erasure_codec -> BENCH_erasure.json"
  MRTWEB_BENCH_QUICK=1 cargo bench -p mrtweb-bench --bench erasure_codec
  test -s BENCH_erasure.json || { echo "BENCH_erasure.json missing" >&2; return 1; }
}

stage_bench_gate() {
  echo "==> bench gate: fresh BENCH_*.json vs BENCH_BASELINE.json"
  cargo run -q -p mrtweb-analysis -- bench-gate
}

# The crates whose lock/atomic traffic the sanitizers exercise: the obs
# ring buffer, the proxy's admission counters and the transport layer's
# live protocol threads.
SANITIZER_CRATES="-p mrtweb-obs -p mrtweb-transport -p mrtweb-erasure"

stage_miri() {
  echo "==> miri: interpreter-checked test pass (UB + data-race detection)"
  local tc=""
  if cargo miri --version >/dev/null 2>&1; then
    tc=""
  elif cargo +nightly miri --version >/dev/null 2>&1; then
    tc="+nightly"
  else
    echo "    SKIP: miri component not installed (rustup component add miri)"
    return 0
  fi
  # Isolation off: the obs clock shim reads Instant::now once to pin
  # its epoch (the workspace's single audited wall-clock site). A low
  # proptest case count keeps the ~100x interpreter slowdown bounded.
  # shellcheck disable=SC2086  # word-splitting of tc and the -p list is intended
  MIRIFLAGS="-Zmiri-disable-isolation" PROPTEST_CASES=8 \
    cargo $tc miri test -q $SANITIZER_CRATES
}

stage_tsan() {
  echo "==> tsan: ThreadSanitizer test pass on the concurrency-bearing crates"
  if ! rustc +nightly --version >/dev/null 2>&1; then
    echo "    SKIP: nightly toolchain not installed (-Zsanitizer requires nightly)"
    return 0
  fi
  local sysroot
  sysroot="$(rustc +nightly --print sysroot)"
  if [ ! -d "$sysroot/lib/rustlib/src/rust/library" ]; then
    # Without -Zbuild-std the uninstrumented std reports false races
    # (e.g. in std::sync::mpmc inside libtest itself), so a TSan run
    # against a prebuilt std would cry wolf on every execution.
    echo "    SKIP: rust-src not installed (rustup component add rust-src --toolchain nightly)"
    return 0
  fi
  local triple
  triple="$(rustc +nightly --version --verbose | awk '/^host:/{print $2}')"
  # shellcheck disable=SC2086  # word-splitting of the -p list is intended
  RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
    PROPTEST_CASES=16 \
    cargo +nightly test -q -Zbuild-std --target "$triple" $SANITIZER_CRATES
}

for stage in $stages; do
  case "$stage" in
    fmt) stage_fmt ;;
    analysis) stage_analysis ;;
    clippy) stage_clippy ;;
    tier1) stage_tier1 ;;
    tests) stage_tests ;;
    obs-no-trace) stage_obs_no_trace ;;
    proxy-fallback) stage_proxy_fallback ;;
    faults) stage_faults ;;
    proxy-smoke) stage_proxy_smoke ;;
    broadcast) stage_broadcast ;;
    edge) stage_edge ;;
    bench) stage_bench ;;
    bench-gate) stage_bench_gate ;;
    miri) stage_miri ;;
    tsan) stage_tsan ;;
  esac
done

echo "==> ci.sh OK"
