//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `serde` cannot be fetched. The codebase
//! only uses `#[derive(Serialize, Deserialize)]` as forward-looking markers
//! (no serializer crate such as `serde_json` is in the dependency graph),
//! so this stub provides the two traits as empty markers plus no-op derive
//! macros. Swapping the real serde back in is a one-line change in the
//! workspace `[patch.crates-io]` table.

/// Marker trait mirroring `serde::Serialize`.
///
/// Carries no methods: nothing in this workspace serializes through serde
/// at runtime; the derive exists so the data model is serde-ready.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::ser` with the stub trait.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirror of `serde::de` with the stub traits.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<T: Serialize> Serialize for std::ops::Range<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::ops::Range<T> {}
