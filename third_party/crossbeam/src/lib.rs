//! Offline stand-in for `crossbeam` (no network in this build
//! environment). Provides the `channel` module over `std::sync::mpsc`
//! with crossbeam's unified `Sender`/`Receiver` types, plus `scope`
//! forwarding to `std::thread::scope`. MPMC cloning of receivers is not
//! reproduced — the workspace uses single-consumer channels only.

/// Multi-producer channels, mirroring `crossbeam::channel` (subset).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel; unifies bounded and unbounded flavours.
    pub enum Sender<T> {
        /// Backed by a rendezvous/bounded `SyncSender`.
        Bounded(mpsc::SyncSender<T>),
        /// Backed by an unbounded `Sender`.
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over received values; ends on disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates a channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }
}

/// Scoped threads, mirroring `crossbeam::scope` on top of the (since
/// Rust 1.63) equivalent `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(f))
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn unbounded_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
