//! Mini regex-driven string generator backing `&'static str`
//! strategies, mirroring proptest's string strategy for the pattern
//! subset this workspace uses: literal characters, character classes
//! with ranges (`[a-zA-Z0-9<>&'"]`), groups, `{m,n}`/`{n}` repetition,
//! and the `\PC` escape ("any non-control character").
//!
//! Patterns are parsed on every generation; they are tiny, and this
//! keeps the strategy type a plain `&'static str` with no cache state.

use crate::TestRng;

/// One repeatable element of the pattern.
enum Node {
    /// A fixed character.
    Lit(char),
    /// Choice among an explicit set of characters.
    Class(Vec<char>),
    /// Choice from the printable pool (`\PC`).
    Printable,
    /// A parenthesized sub-pattern.
    Group(Vec<(Node, u32, u32)>),
}

/// Pool for `\PC`: printable ASCII plus multibyte characters so UTF-8
/// handling gets exercised (all outside Unicode category C).
const PRINTABLE_EXTRA: &[char] = &['é', 'ß', 'λ', '中', '→', '😀'];

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset — a property test
/// author error, caught on the test's first run.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() from the front
    let nodes = parse_sequence(&mut chars, false);
    assert!(chars.is_empty(), "unbalanced ')' in pattern {pattern:?}");
    let mut out = String::new();
    emit_sequence(&nodes, rng, &mut out);
    out
}

fn parse_sequence(rest: &mut Vec<char>, in_group: bool) -> Vec<(Node, u32, u32)> {
    let mut nodes = Vec::new();
    while let Some(&c) = rest.last() {
        match c {
            ')' => {
                assert!(in_group, "stray ')' in pattern");
                return nodes;
            }
            '(' => {
                rest.pop();
                let inner = parse_sequence(rest, true);
                assert_eq!(rest.pop(), Some(')'), "unclosed '(' in pattern");
                let (min, max) = parse_quantifier(rest);
                nodes.push((Node::Group(inner), min, max));
            }
            '[' => {
                rest.pop();
                let class = parse_class(rest);
                let (min, max) = parse_quantifier(rest);
                nodes.push((Node::Class(class), min, max));
            }
            '\\' => {
                rest.pop();
                let node = parse_escape(rest);
                let (min, max) = parse_quantifier(rest);
                nodes.push((node, min, max));
            }
            _ => {
                rest.pop();
                let (min, max) = parse_quantifier(rest);
                nodes.push((Node::Lit(c), min, max));
            }
        }
    }
    assert!(!in_group, "unclosed '(' in pattern");
    nodes
}

fn parse_escape(rest: &mut Vec<char>) -> Node {
    match rest.pop() {
        Some('P') => {
            // Only the \PC ("not category C", i.e. printable) form is
            // used in this workspace.
            assert_eq!(rest.pop(), Some('C'), "unsupported \\P class");
            Node::Printable
        }
        Some(c @ ('\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}' | '+' | '*' | '?' | '|')) => {
            Node::Lit(c)
        }
        Some('n') => Node::Lit('\n'),
        Some('t') => Node::Lit('\t'),
        other => panic!("unsupported escape \\{other:?}"),
    }
}

fn parse_class(rest: &mut Vec<char>) -> Vec<char> {
    let mut class = Vec::new();
    loop {
        let c = rest.pop().expect("unclosed '[' in pattern");
        match c {
            ']' => break,
            '\\' => class.push(rest.pop().expect("dangling escape in class")),
            _ => {
                if rest.last() == Some(&'-') && rest.get(rest.len().wrapping_sub(2)) != Some(&']') {
                    rest.pop(); // the '-'
                    let hi = rest.pop().expect("unclosed range in class");
                    assert!(c <= hi, "inverted range {c}-{hi} in class");
                    for code in c as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(code) {
                            class.push(ch);
                        }
                    }
                } else {
                    class.push(c);
                }
            }
        }
    }
    assert!(!class.is_empty(), "empty character class");
    class
}

fn parse_quantifier(rest: &mut Vec<char>) -> (u32, u32) {
    match rest.last() {
        Some('{') => {
            rest.pop();
            let mut min_digits = String::new();
            let mut max_digits = String::new();
            let mut in_max = false;
            loop {
                match rest.pop().expect("unclosed '{' in pattern") {
                    '}' => break,
                    ',' => in_max = true,
                    d if d.is_ascii_digit() => {
                        if in_max {
                            max_digits.push(d);
                        } else {
                            min_digits.push(d);
                        }
                    }
                    other => panic!("bad quantifier character {other:?}"),
                }
            }
            let min: u32 = min_digits.parse().expect("quantifier needs a minimum");
            let max: u32 = if in_max {
                max_digits.parse().expect("open-ended {m,} not supported")
            } else {
                min
            };
            assert!(min <= max, "inverted quantifier {{{min},{max}}}");
            (min, max)
        }
        Some('?') => {
            rest.pop();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn emit_sequence(nodes: &[(Node, u32, u32)], rng: &mut TestRng, out: &mut String) {
    for (node, min, max) in nodes {
        let span = (*max - *min + 1) as u64;
        let reps = *min + rng.below(span) as u32;
        for _ in 0..reps {
            emit_node(node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(chars) => {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
        Node::Printable => {
            let pool = 95 + PRINTABLE_EXTRA.len() as u64;
            let pick = rng.below(pool);
            if pick < 95 {
                out.push(char::from(b' ' + pick as u8));
            } else {
                out.push(PRINTABLE_EXTRA[(pick - 95) as usize]);
            }
        }
        Node::Group(inner) => emit_sequence(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn word_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{3,8}", &mut r);
            assert!((3..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn grouped_phrase_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{3,8}( [a-z]{3,8}){0,2}", &mut r);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{s:?}");
            assert!(words.iter().all(|w| (3..=8).contains(&w.len())));
        }
    }

    #[test]
    fn class_with_specials_and_quote() {
        let mut r = rng();
        let allowed: Vec<char> = ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain("<>&'\"".chars())
            .collect();
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9<>&'\"]{1,10}", &mut r);
            assert!((1..=10).contains(&s.chars().count()));
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_escape() {
        let mut r = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = generate("\\PC{0,64}", &mut r);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_non_ascii |= s.chars().any(|c| !c.is_ascii());
        }
        assert!(saw_non_ascii, "pool should include multibyte characters");
    }
}
