//! Offline stand-in for `proptest` (no network in this build
//! environment). Implements the subset the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, `any::<T>()`, [`Just`],
//! range and tuple strategies, `collection::vec`, `option::of`,
//! string-from-mini-regex strategies, `prop_oneof!`, and the
//! [`proptest!`] macro with `prop_assert*`/`prop_assume!`.
//!
//! Differences from the real crate: no shrinking (failures report the
//! raw generated case via the panic message) and a fixed deterministic
//! RNG seeded per test name, so every run explores the same cases.
//! `PROPTEST_CASES` overrides the case count like upstream.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; each test gets one seeded from its name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generator of values of one type, mirroring `proptest::strategy::Strategy`.
///
/// Object-safe: `generate` takes no generic parameters, so strategies
/// can be boxed for heterogeneous unions (`prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; target of `prop_oneof!`.
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[idx].generate(rng)
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy backing `any::<int>()`.
pub struct FullInt<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for FullInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Bias towards structure-revealing edge values now
                    // and then, like the real crate's integer strategy.
                    match rng.below(16) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullInt { _marker: std::marker::PhantomData }
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy backing `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

/// Strategy backing `any::<f64>()` (finite values only).
pub struct AnyF64;

impl Strategy for AnyF64 {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Spread across magnitudes; keep finite so tests never trip on
        // NaN comparisons the real crate also avoids by default.
        let mag = rng.below(61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * 2f64.powi(mag)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyF64;
    fn arbitrary() -> Self::Strategy {
        AnyF64
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span) as $t
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + (rng.unit_f64() as $t) * (end - start)
                }
            }
        )*
    };
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Collection strategies, mirroring `proptest::collection` (subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for variable-length `Vec`s.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s with length drawn from `size` and elements
    /// from `element`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies, mirroring `proptest::option` (subset).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s biased towards `Some` (3:1, like upstream).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to also produce `None`, mirroring
    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

mod regex_gen;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// Per-run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
    /// Accepted for API parity; shrinking is not implemented here.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Applies the `PROPTEST_CASES` environment override, like upstream.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Builds the deterministic per-test generator from the test's name.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a keeps distinct test names on distinct streams.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(hash)
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::resolve_cases(config.cases);
                let mut rng = $crate::test_rng(stringify!($name));
                for __case in 0..cases {
                    // Result lets prop_assume! discard a case by
                    // early-returning without aborting the test.
                    let __outcome: ::std::result::Result<(), ()> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Uniform choice among strategies with possibly different concrete
/// types; mirrors `proptest::prop_oneof!` (unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the precondition fails, mirroring
/// `prop_assume!`. Only valid inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10);
        let mut rng = crate::test_rng("oneof");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0usize..100, flag in any::<bool>(), s in "[a-z]{2,4}") {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert_ne!(x, 13);
            let _ = flag;
        }
    }
}
