//! Offline stand-in for `rand` 0.9 (no network in this build
//! environment). Implements the subset the workspace uses:
//! `rngs::StdRng` + `SeedableRng::seed_from_u64`, the `Rng` extension
//! methods `random_range` / `random_bool`, and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so streams differ from upstream, but
//! every simulation in this workspace seeds explicitly and only needs
//! determinism, not a particular stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source, mirroring `rand_core::RngCore` (subset).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, mirroring `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding constructor, mirroring `rand::SeedableRng` (subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a float uniform in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits give the densest uniform grid representable in f64.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can be sampled, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Multiply-shift bounded sampling; the slight modulo
                    // bias is irrelevant for simulation-scale spans.
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + draw as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every draw is valid.
                        return rng.next_u64() as $t;
                    }
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    start + draw as $t
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    start + (unit_f64(rng.next_u64()) as $t) * (end - start)
                }
            }
        )*
    };
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xorshift128+ over SplitMix64-expanded seeds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift128+ (Vigna): two words of state so nearby seeds
            // decorrelate after the SplitMix64 expansion below.
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand through SplitMix64 like rand's own seed_from_u64,
            // so sequential seeds land on unrelated streams.
            let mut st = seed;
            let s0 = splitmix(&mut st);
            let s1 = splitmix(&mut st);
            StdRng { s0, s1: s1 | 1 }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq` (subset).
pub mod seq {
    use super::RngCore;

    /// Shuffle support for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = a.random_range(0..17);
            assert_eq!(x, b.random_range(0..17));
            assert!(x < 17);
            let f: f64 = a.random_range(1.0..=3.0);
            assert!((1.0..=3.0).contains(&f));
            b.random_range::<f64, _>(1.0..=3.0);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
