//! No-op derive macros backing the offline `serde` stand-in.
//!
//! Each derive emits an empty marker-trait impl for the deriving type.
//! The parser is deliberately tiny: it scans the top-level token stream
//! for the `struct`/`enum`/`union` keyword and takes the following
//! identifier as the type name. Generic deriving types would need real
//! parsing; the workspace has none (enforced by a compile error here if
//! one appears, since the emitted impl would not type-check).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
