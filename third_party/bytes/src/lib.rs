//! Offline stand-in for the `bytes` crate (no network in this build
//! environment). Implements the subset the workspace uses: `BytesMut`
//! as a growable byte buffer, `Bytes` as a frozen buffer, `BufMut`
//! put-methods and `Buf` get-methods (little- and big-endian where
//! used). Semantics match `bytes` 1.x for this subset; zero-copy
//! reference counting is not reproduced (buffers are plain `Vec<u8>`).

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: v }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            inner: iter.into_iter().collect(),
        }
    }
}

/// Write-side buffer operations (append-only, like `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations (like `bytes::Buf`).
///
/// # Panics
///
/// Like the real crate, the get-methods panic when the buffer holds too
/// few bytes; callers bound-check first (see `store::codec::get_exact`).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_be() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32_le(0xAABBCCDD);
        buf.put_u64_le(42);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32_le(), 0xAABBCCDD);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur, b"xy");
    }
}
