//! Offline stand-in for `criterion` (no network in this build
//! environment). Implements the harness subset the workspace's
//! `harness = false` benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, byte throughput reporting,
//! and `final_summary`. Timing is a plain warm-up + calibrated-batch
//! loop over `Instant` — no statistics engine — which is adequate for
//! the relative before/after comparisons recorded in this repository.
//!
//! Quick mode (`--quick` argument or `MRTWEB_BENCH_QUICK=1`) cuts the
//! measurement budget ~50× so CI smoke runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement, kept so harness binaries can export
/// machine-readable summaries (e.g. `BENCH_erasure.json`) without
/// re-running the workload.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name passed to `benchmark_group`.
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Bytes processed per iteration, when a byte throughput was set.
    pub bytes_per_iter: Option<u64>,
    /// Derived MiB/s, when a byte throughput was set.
    pub mib_per_s: Option<f64>,
}

/// Top-level harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var_os("MRTWEB_BENCH_QUICK").is_some(),
            filter: None,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--quick`, and a free-form
    /// substring filter like the real crate's positional FILTER).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => self.quick = true,
                // Cargo's libtest pass-through flags; ignore.
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\n{name}");
        BenchmarkGroup {
            group: name.to_string(),
            quick: self.quick,
            filter: self.filter.clone(),
            throughput: None,
            criterion: self,
        }
    }

    /// Prints the closing summary (no-op beyond a newline here).
    pub fn final_summary(&self) {
        eprintln!();
    }

    /// Whether quick mode is active (`--quick` / `MRTWEB_BENCH_QUICK`).
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Measurements recorded so far, in execution order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

/// Unit used to convert time per iteration into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"<name>/<parameter>"`, like the real crate.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    quick: bool,
    filter: Option<String>,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Shrinks/extends the sample budget (accepted for API parity).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Adjusts the measurement window (accepted for API parity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Runs one benchmark closure with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Closes the group (separator line only; measurements print live).
    pub fn finish(self) {
        eprintln!();
    }

    fn run(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{name}", self.group);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher::new(self.quick);
        f(&mut bencher);
        let Some(ns) = bencher.ns_per_iter else {
            return;
        };
        let mut line = format!("  {full:<40} {:>12} ns/iter", group_digits(ns));
        let mut bytes_per_iter = None;
        let mut mib_per_s = None;
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            bytes_per_iter = Some(bytes);
            if ns > 0.0 {
                let mib_s = bytes as f64 / (ns * 1e-9) / (1024.0 * 1024.0);
                mib_per_s = Some(mib_s);
                line.push_str(&format!("  {mib_s:>10.1} MiB/s"));
            }
        }
        if let Some(Throughput::Elements(elems)) = self.throughput {
            if ns > 0.0 {
                let per_s = elems as f64 / (ns * 1e-9);
                line.push_str(&format!("  {per_s:>12.0} elem/s"));
            }
        }
        eprintln!("{line}");
        self.criterion.records.push(BenchRecord {
            group: self.group.clone(),
            name: name.to_string(),
            ns_per_iter: ns,
            bytes_per_iter,
            mib_per_s,
        });
    }
}

fn group_digits(ns: f64) -> String {
    let raw = format!("{:.0}", ns);
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, ch) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    quick: bool,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    fn new(quick: bool) -> Self {
        Bencher {
            quick,
            ns_per_iter: None,
        }
    }

    /// Measures `routine`: warm up, calibrate a batch size that runs
    /// long enough to trust `Instant`, then time a few batches and keep
    /// the fastest (least-noise) estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (warmup, target_batch_ns, rounds) = if self.quick {
            (Duration::from_millis(10), 2_000_000.0, 2)
        } else {
            (Duration::from_millis(300), 50_000_000.0, 5)
        };

        // Warm-up: fill caches, trigger lazy init, estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        let batch = ((target_batch_ns / est_ns.max(1.0)).ceil() as u64).max(1);
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = Some(best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("MRTWEB_BENCH_QUICK", "1");
        let mut b = Bencher::new(true);
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter.unwrap() >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("enc", 42).to_string(), "enc/42");
    }
}
