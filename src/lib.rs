//! # mrtweb — fault-tolerant multi-resolution web transmission
//!
//! A faithful, production-quality Rust implementation of the system
//! described in *On Supporting Weakly-Connected Browsing in a Mobile Web
//! Environment* (Leong, McLeod, Si, Yau; ICDCS 2000).
//!
//! The facade re-exports every subsystem crate:
//!
//! * [`docmodel`] — XML subset parser, LOD document tree, organizational
//!   units, synthetic document generation;
//! * [`textproc`] — the five-stage structural-characteristic pipeline;
//! * [`content`] — information content (IC), query-based (QIC) and
//!   modified query-based (MQIC) measures;
//! * [`erasure`] — systematic Vandermonde information dispersal, CRC
//!   framing, and negative-binomial redundancy planning;
//! * [`channel`] — weakly-connected wireless channel models;
//! * [`transport`] — the fault-tolerant multi-resolution transmission
//!   protocol with client-side caching;
//! * [`sim`] — the browsing-session simulator and the drivers that
//!   regenerate every table and figure of the paper's evaluation;
//! * [`store`] — the server-side document store and database gateway
//!   (the paper's Figure 1 back end), with binary persistence and
//!   structural-characteristic caching;
//! * [`proxy`] — the base-station gateway as a real TCP daemon:
//!   concurrent sessions over a length-prefixed CRC-checked wire
//!   protocol, admission control, stats, and a load generator;
//! * [`obs`] — the observability subsystem: a lock-free structured
//!   event tracer, log-scale latency histograms, and named
//!   counter/gauge registries, compile-out-able via the `trace`
//!   feature.
//!
//! # Quickstart
//!
//! ```
//! use mrtweb::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Parse a structured document and build its structural characteristic.
//! let xml = "<document><title>Mobile Web</title>\
//!            <section><title>Intro</title>\
//!            <paragraph>Browsing the mobile web is weakly connected.</paragraph>\
//!            </section></document>";
//! let doc = Document::parse_xml(xml)?;
//! let sc = ScPipeline::default().run(&doc);
//!
//! // Encode the document for a lossy channel: M -> N cooked packets.
//! let bytes = doc.to_xml().into_bytes();
//! let m = bytes.len().div_ceil(64);
//! let plan = Plan::optimal(m, 0.2, 0.95)?;
//! let codec = Codec::new(plan.raw, plan.cooked, 64)?;
//! let cooked = codec.encode(&bytes);
//! assert!(cooked.len() >= m);
//! # let _ = sc;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod broadcast;
pub mod edge;
pub mod faultrun;

pub use mrtweb_channel as channel;
pub use mrtweb_content as content;
pub use mrtweb_docmodel as docmodel;
pub use mrtweb_erasure as erasure;
pub use mrtweb_obs as obs;
pub use mrtweb_proxy as proxy;
pub use mrtweb_sim as sim;
pub use mrtweb_store as store;
pub use mrtweb_textproc as textproc;
pub use mrtweb_transport as transport;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use mrtweb_channel::bernoulli::BernoulliChannel;
    pub use mrtweb_channel::clock::SimClock;
    pub use mrtweb_channel::ewma::EwmaEstimator;
    pub use mrtweb_content::ic::InformationContent;
    pub use mrtweb_content::query::Query;
    pub use mrtweb_docmodel::document::Document;
    pub use mrtweb_docmodel::lod::Lod;
    pub use mrtweb_erasure::ida::Codec;
    pub use mrtweb_erasure::redundancy::Plan;
    pub use mrtweb_textproc::pipeline::ScPipeline;
    pub use mrtweb_transport::session::{CacheMode, SessionConfig};
}
