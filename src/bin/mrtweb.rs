//! `mrtweb` — command-line front end to the library.
//!
//! ```text
//! mrtweb sc <file.xml|file.html> [--query "words"]     print the structural characteristic
//! mrtweb plan <file> [--query Q] [--lod L]             print the transmission order
//! mrtweb transfer <file> [--alpha A] [--lod L] [--gamma G] [--query Q] [--nocache]
//!                                                      run a live lossy transfer
//! mrtweb summary <file> [--budget BYTES]               lead-in summary (baseline)
//! mrtweb redundancy <M> <alpha> [--success S]          plan N for a code
//! mrtweb faultrun --scenario NAME [--seed S]           run a fault-injection scenario
//! mrtweb faultrun --all [--seed S]                     run every scenario
//! mrtweb faultrun --list                               list scenarios
//! ```

use std::process::ExitCode;

use mrtweb::content::query::Query;
use mrtweb::content::sc::{Measure, StructuralCharacteristic};
use mrtweb::docmodel::document::Document;
use mrtweb::docmodel::lod::Lod;
use mrtweb::erasure::redundancy::Plan;
use mrtweb::prelude::CacheMode;
use mrtweb::textproc::pipeline::ScPipeline;
use mrtweb::textproc::summary::lead_in_summary;
use mrtweb::transport::live::{run_transfer, LiveServer, TransferConfig};
use mrtweb::transport::plan::plan_document;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  mrtweb sc <file> [--query Q]");
            eprintln!(
                "  mrtweb plan <file> [--query Q] [--lod document|section|subsection|paragraph]"
            );
            eprintln!("  mrtweb transfer <file> [--alpha A] [--gamma G] [--lod L] [--query Q] [--nocache] [--seed S]");
            eprintln!("  mrtweb summary <file> [--budget BYTES]");
            eprintln!("  mrtweb redundancy <M> <alpha> [--success S]");
            eprintln!("  mrtweb faultrun --scenario NAME [--seed S] | --all [--seed S] | --list");
            ExitCode::from(2)
        }
    }
}

struct Flags {
    query: String,
    lod: Lod,
    alpha: f64,
    gamma: f64,
    seed: u64,
    nocache: bool,
    budget: usize,
    success: f64,
    scenario: String,
    all: bool,
    list: bool,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            query: String::new(),
            lod: Lod::Paragraph,
            alpha: 0.1,
            gamma: 1.5,
            seed: 42,
            nocache: false,
            budget: 512,
            success: 0.95,
            scenario: String::new(),
            all: false,
            list: false,
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--query" => {
                f.query.clone_from(need(i)?);
                i += 1;
            }
            "--lod" => {
                f.lod = need(i)?.parse().map_err(|e| format!("{e}"))?;
                i += 1;
            }
            "--alpha" => {
                f.alpha = need(i)?.parse().map_err(|_| "--alpha needs a number")?;
                i += 1;
            }
            "--gamma" => {
                f.gamma = need(i)?.parse().map_err(|_| "--gamma needs a number")?;
                i += 1;
            }
            "--seed" => {
                f.seed = need(i)?.parse().map_err(|_| "--seed needs an integer")?;
                i += 1;
            }
            "--budget" => {
                f.budget = need(i)?.parse().map_err(|_| "--budget needs an integer")?;
                i += 1;
            }
            "--success" => {
                f.success = need(i)?.parse().map_err(|_| "--success needs a number")?;
                i += 1;
            }
            "--scenario" => {
                f.scenario.clone_from(need(i)?);
                i += 1;
            }
            "--all" => f.all = true,
            "--list" => f.list = true,
            "--nocache" => f.nocache = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(f)
}

fn load_document(path: &str) -> Result<Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ext = std::path::Path::new(path).extension();
    let is_html =
        ext.is_some_and(|e| e.eq_ignore_ascii_case("html") || e.eq_ignore_ascii_case("htm"));
    if is_html {
        mrtweb::docmodel::html::extract(&text).map_err(|e| format!("{e}"))
    } else {
        Document::parse_xml(&text).map_err(|e| format!("{e}"))
    }
}

fn build_sc(doc: &Document, query: &str) -> (StructuralCharacteristic, Measure) {
    let pipeline = ScPipeline::default();
    let index = pipeline.run(doc);
    if query.is_empty() {
        (
            StructuralCharacteristic::from_index(&index, None),
            Measure::Ic,
        )
    } else {
        let q = Query::parse(query, &pipeline);
        (
            StructuralCharacteristic::from_index(&index, Some(&q)),
            Measure::Qic,
        )
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "sc" => {
            let path = args.get(1).ok_or("sc needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let (sc, _) = build_sc(&doc, &flags.query);
            println!(
                "{} — {} units, {} bytes",
                doc.title().unwrap_or("(untitled)"),
                doc.unit_count(),
                doc.content_len()
            );
            if !flags.query.is_empty() {
                println!("query: {}", flags.query);
            }
            println!("{}", sc.render_table());
            Ok(())
        }
        "plan" => {
            let path = args.get(1).ok_or("plan needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let (sc, measure) = build_sc(&doc, &flags.query);
            let (plan, _) = plan_document(&doc, &sc, flags.lod, measure);
            println!(
                "transmission order at the {} LOD (by {measure}):",
                flags.lod
            );
            for (i, s) in plan.slices().iter().enumerate() {
                println!(
                    "  {i:>3}. unit {:<8} {:>6} bytes  content {:.4}",
                    s.label, s.bytes, s.content
                );
            }
            println!(
                "total: {} bytes, M = {} raw packets at 256B",
                plan.total_bytes(),
                plan.raw_packets(256)
            );
            Ok(())
        }
        "transfer" => {
            let path = args.get(1).ok_or("transfer needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let (sc, measure) = build_sc(&doc, &flags.query);
            let server = LiveServer::new_auto(&doc, &sc, flags.lod, measure, 64, flags.gamma)
                .map_err(|e| format!("{e}"))?;
            println!(
                "M={} N={} packet={}B γ={:.2} α={}",
                server.header().m,
                server.header().n,
                server.header().packet_size,
                flags.gamma,
                flags.alpha
            );
            let report = run_transfer(
                server,
                &TransferConfig {
                    alpha: flags.alpha,
                    seed: flags.seed,
                    cache_mode: if flags.nocache {
                        CacheMode::NoCaching
                    } else {
                        CacheMode::Caching
                    },
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            println!(
                "completed={} rounds={} frames={} corrupted={} payload={}B",
                report.completed,
                report.rounds,
                report.frames_sent,
                report.frames_corrupted,
                report.payload.len()
            );
            if !report.completed {
                return Err("transfer did not complete".into());
            }
            Ok(())
        }
        "summary" => {
            let path = args.get(1).ok_or("summary needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let s = lead_in_summary(&doc, flags.budget);
            println!(
                "{} sentences, {} of {} bytes ({:.1}%):",
                s.sentences.len(),
                s.len_bytes(),
                doc.content_len(),
                100.0 * s.len_bytes() as f64 / doc.content_len().max(1) as f64
            );
            for sent in &s.sentences {
                println!("  • {sent}");
            }
            Ok(())
        }
        "redundancy" => {
            let m: usize = args
                .get(1)
                .ok_or("redundancy needs M")?
                .parse()
                .map_err(|_| "bad M")?;
            let alpha: f64 = args
                .get(2)
                .ok_or("redundancy needs alpha")?
                .parse()
                .map_err(|_| "bad alpha")?;
            let flags = parse_flags(&args[3..])?;
            let plan = Plan::optimal(m, alpha, flags.success).map_err(|e| format!("{e}"))?;
            println!(
                "M={} α={} S={:.0}% → N={} (γ={:.3}), achieved {:.5}",
                plan.raw,
                plan.alpha,
                flags.success * 100.0,
                plan.cooked,
                plan.ratio(),
                plan.achieved_probability().map_err(|e| format!("{e}"))?
            );
            Ok(())
        }
        "faultrun" => {
            let flags = parse_flags(&args[1..])?;
            if flags.list {
                println!("fault-injection scenarios:");
                for (name, what) in mrtweb::faultrun::SCENARIOS {
                    println!("  {name:<12} {what}");
                }
                return Ok(());
            }
            let reports = if flags.all {
                mrtweb::faultrun::run_all(flags.seed)
            } else if flags.scenario.is_empty() {
                return Err("faultrun needs --scenario NAME, --all, or --list".into());
            } else {
                vec![mrtweb::faultrun::run_scenario(&flags.scenario, flags.seed)?]
            };
            let mut failed = 0usize;
            for r in &reports {
                print!("{}", r.render());
                if !r.passed() {
                    failed += 1;
                }
            }
            if failed > 0 {
                return Err(format!("{failed} of {} scenario(s) failed", reports.len()));
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}
