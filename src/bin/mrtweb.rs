//! `mrtweb` — command-line front end to the library.
//!
//! ```text
//! mrtweb sc <file.xml|file.html> [--query "words"]     print the structural characteristic
//! mrtweb plan <file> [--query Q] [--lod L]             print the transmission order
//! mrtweb transfer <file> [--alpha A] [--lod L] [--gamma G] [--query Q] [--nocache]
//!                                                      run a live lossy transfer
//! mrtweb summary <file> [--budget BYTES]               lead-in summary (baseline)
//! mrtweb redundancy <M> <alpha> [--success S]          plan N for a code
//! mrtweb faultrun --scenario NAME [--seed S]           run a fault-injection scenario
//! mrtweb faultrun --all [--seed S]                     run every scenario
//! mrtweb faultrun --list                               list scenarios
//! mrtweb edge [--docs D] [--requests R] [--budget BYTES] [--roam] [--bench-out FILE]
//!                                                      drive the base-station edge cache
//! mrtweb serve [files...] [--addr A] [--engine E] [--max-sessions N] [--workers W] [--fault PRESET]
//!                                                      run the base-station proxy daemon
//! mrtweb fetch <url> [--addr A] [--query Q] [--stop-content X] [--stop-slices K]
//!                                                      fetch a document from a proxy
//! mrtweb loadgen [--addr A] [--clients K] [--requests R] [--rate RPS] [--sweep 1,8,32] [--json]
//!                                                      drive a proxy (closed or open loop)
//! mrtweb stats [--addr A] [--assert-clean]             print a proxy's stats as JSON
//! mrtweb trace <record|dump|summarize> ...             work with observability traces
//! ```

use std::net::ToSocketAddrs as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mrtweb::channel::fault::FaultConfig;
use mrtweb::content::query::Query;
use mrtweb::content::sc::{Measure, StructuralCharacteristic};
use mrtweb::docmodel::document::Document;
use mrtweb::docmodel::gen::SyntheticDocSpec;
use mrtweb::docmodel::lod::Lod;
use mrtweb::erasure::redundancy::Plan;
use mrtweb::prelude::CacheMode;
use mrtweb::proxy::client::{fetch, fetch_stats, FetchOptions};
use mrtweb::proxy::loadgen::{self, ArrivalMode, LoadConfig};
use mrtweb::proxy::server::{bind_engine, Engine, ServerConfig};
use mrtweb::store::gateway::Gateway;
use mrtweb::store::store::DocumentStore;
use mrtweb::textproc::pipeline::ScPipeline;
use mrtweb::textproc::summary::lead_in_summary;
use mrtweb::transport::live::{run_transfer, LiveServer, TransferConfig};
use mrtweb::transport::plan::plan_document;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  mrtweb sc <file> [--query Q]");
            eprintln!(
                "  mrtweb plan <file> [--query Q] [--lod document|section|subsection|paragraph]"
            );
            eprintln!("  mrtweb transfer <file> [--alpha A] [--gamma G] [--lod L] [--query Q] [--nocache] [--seed S]");
            eprintln!("  mrtweb summary <file> [--budget BYTES]");
            eprintln!("  mrtweb redundancy <M> <alpha> [--success S]");
            eprintln!("  mrtweb faultrun --scenario NAME [--seed S] | --all [--seed S] | --list");
            eprintln!("  mrtweb edge [--docs D] [--requests R] [--budget BYTES] [--packet-size P] [--gamma G] [--seed S] [--roam] [--json] [--bench-out FILE]");
            eprintln!("  mrtweb broadcast [--docs D] [--listeners L] [--channels K] [--skew flat|popularity] [--index-every I] [--packet-size P] [--gamma G] [--fault PRESET] [--stop-content X] [--seed S] [--json] [--sweep 1,2,4] [--bench-out FILE]");
            eprintln!("  mrtweb serve [files...] [--addr A] [--engine auto|event|blocking] [--corpus K] [--max-sessions N] [--workers W] [--frame-budget B] [--fault PRESET] [--seed S] [--runtime-secs T]");
            eprintln!("  mrtweb fetch <url> [--addr A] [--query Q] [--lod L] [--measure ic|qic|mqic] [--packet-size P] [--gamma G] [--stop-content X] [--stop-slices K] [--out FILE]");
            eprintln!("  mrtweb loadgen [--addr A] [--url U] [--clients K] [--requests R] [--rate RPS --arrival fixed|poisson] [--sweep 1,8,32] [--json] [--bench-out FILE]");
            eprintln!("  mrtweb stats [--addr A] [--assert-clean]");
            eprintln!("  mrtweb trace record <file> [--out FILE] [transfer flags]");
            eprintln!("  mrtweb trace dump <trace.jsonl>");
            eprintln!("  mrtweb trace summarize <trace.jsonl>");
            ExitCode::from(2)
        }
    }
}

// CLI switches are naturally independent booleans, not a state machine.
#[allow(clippy::struct_excessive_bools)]
struct Flags {
    query: String,
    lod: Lod,
    alpha: f64,
    gamma: f64,
    seed: u64,
    nocache: bool,
    budget: usize,
    success: f64,
    scenario: String,
    all: bool,
    list: bool,
    // edge verb: a separate resident-byte budget so `--budget` (the
    // summary verb's sentence budget, default 512) keeps its meaning.
    byte_budget: usize,
    roam: bool,
    // proxy verbs
    addr: String,
    corpus: usize,
    max_sessions: usize,
    workers: usize,
    frame_budget: u64,
    fault: String,
    runtime_secs: u64,
    measure: String,
    packet_size: u32,
    stop_content: Option<f64>,
    stop_slices: Option<usize>,
    out: String,
    url: String,
    clients: usize,
    requests: usize,
    sweep: String,
    json: bool,
    bench_out: String,
    // broadcast verb
    listeners: usize,
    channels: usize,
    docs: usize,
    skew: String,
    index_every: usize,
    assert_clean: bool,
    timeout_secs: u64,
    engine: String,
    rate: f64,
    arrival: String,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            query: String::new(),
            lod: Lod::Paragraph,
            alpha: 0.1,
            gamma: 1.5,
            seed: 42,
            nocache: false,
            budget: 512,
            success: 0.95,
            scenario: String::new(),
            all: false,
            list: false,
            byte_budget: 1 << 20,
            roam: false,
            addr: "127.0.0.1:7340".to_owned(),
            corpus: 4,
            max_sessions: 64,
            workers: 8,
            frame_budget: 1 << 20,
            fault: String::new(),
            runtime_secs: 0,
            measure: "ic".to_owned(),
            packet_size: 256,
            stop_content: None,
            stop_slices: None,
            out: String::new(),
            url: "doc/0".to_owned(),
            clients: 8,
            requests: 16,
            sweep: String::new(),
            json: false,
            bench_out: String::new(),
            listeners: 32,
            channels: 1,
            docs: 8,
            skew: "popularity".to_owned(),
            index_every: 16,
            assert_clean: false,
            timeout_secs: 10,
            engine: "auto".to_owned(),
            rate: 0.0,
            arrival: "fixed".to_owned(),
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--query" => {
                f.query.clone_from(need(i)?);
                i += 1;
            }
            "--lod" => {
                f.lod = need(i)?.parse().map_err(|e| format!("{e}"))?;
                i += 1;
            }
            "--alpha" => {
                f.alpha = need(i)?.parse().map_err(|_| "--alpha needs a number")?;
                i += 1;
            }
            "--gamma" => {
                f.gamma = need(i)?.parse().map_err(|_| "--gamma needs a number")?;
                i += 1;
            }
            "--seed" => {
                f.seed = need(i)?.parse().map_err(|_| "--seed needs an integer")?;
                i += 1;
            }
            "--budget" => {
                f.budget = need(i)?.parse().map_err(|_| "--budget needs an integer")?;
                f.byte_budget = f.budget;
                i += 1;
            }
            "--roam" => f.roam = true,
            "--success" => {
                f.success = need(i)?.parse().map_err(|_| "--success needs a number")?;
                i += 1;
            }
            "--scenario" => {
                f.scenario.clone_from(need(i)?);
                i += 1;
            }
            "--all" => f.all = true,
            "--list" => f.list = true,
            "--nocache" => f.nocache = true,
            "--addr" => {
                f.addr.clone_from(need(i)?);
                i += 1;
            }
            "--corpus" => {
                f.corpus = need(i)?.parse().map_err(|_| "--corpus needs an integer")?;
                i += 1;
            }
            "--max-sessions" => {
                f.max_sessions = need(i)?
                    .parse()
                    .map_err(|_| "--max-sessions needs an integer")?;
                i += 1;
            }
            "--workers" => {
                f.workers = need(i)?.parse().map_err(|_| "--workers needs an integer")?;
                i += 1;
            }
            "--frame-budget" => {
                f.frame_budget = need(i)?
                    .parse()
                    .map_err(|_| "--frame-budget needs an integer")?;
                i += 1;
            }
            "--fault" => {
                f.fault.clone_from(need(i)?);
                i += 1;
            }
            "--runtime-secs" => {
                f.runtime_secs = need(i)?
                    .parse()
                    .map_err(|_| "--runtime-secs needs an integer")?;
                i += 1;
            }
            "--measure" => {
                f.measure.clone_from(need(i)?);
                i += 1;
            }
            "--packet-size" => {
                f.packet_size = need(i)?
                    .parse()
                    .map_err(|_| "--packet-size needs an integer")?;
                i += 1;
            }
            "--stop-content" => {
                f.stop_content = Some(
                    need(i)?
                        .parse()
                        .map_err(|_| "--stop-content needs a number")?,
                );
                i += 1;
            }
            "--stop-slices" => {
                f.stop_slices = Some(
                    need(i)?
                        .parse()
                        .map_err(|_| "--stop-slices needs an integer")?,
                );
                i += 1;
            }
            "--out" => {
                f.out.clone_from(need(i)?);
                i += 1;
            }
            "--url" => {
                f.url.clone_from(need(i)?);
                i += 1;
            }
            "--clients" => {
                f.clients = need(i)?.parse().map_err(|_| "--clients needs an integer")?;
                i += 1;
            }
            "--requests" => {
                f.requests = need(i)?
                    .parse()
                    .map_err(|_| "--requests needs an integer")?;
                i += 1;
            }
            "--sweep" => {
                f.sweep.clone_from(need(i)?);
                i += 1;
            }
            "--bench-out" => {
                f.bench_out.clone_from(need(i)?);
                i += 1;
            }
            "--timeout-secs" => {
                f.timeout_secs = need(i)?
                    .parse()
                    .map_err(|_| "--timeout-secs needs an integer")?;
                i += 1;
            }
            "--engine" => {
                f.engine.clone_from(need(i)?);
                i += 1;
            }
            "--rate" => {
                f.rate = need(i)?.parse().map_err(|_| "--rate needs a number")?;
                i += 1;
            }
            "--arrival" => {
                f.arrival.clone_from(need(i)?);
                i += 1;
            }
            "--listeners" => {
                f.listeners = need(i)?
                    .parse()
                    .map_err(|_| "--listeners needs an integer")?;
                i += 1;
            }
            "--channels" => {
                f.channels = need(i)?
                    .parse()
                    .map_err(|_| "--channels needs an integer")?;
                i += 1;
            }
            "--docs" => {
                f.docs = need(i)?.parse().map_err(|_| "--docs needs an integer")?;
                i += 1;
            }
            "--skew" => {
                f.skew.clone_from(need(i)?);
                i += 1;
            }
            "--index-every" => {
                f.index_every = need(i)?
                    .parse()
                    .map_err(|_| "--index-every needs an integer")?;
                i += 1;
            }
            "--json" => f.json = true,
            "--assert-clean" => f.assert_clean = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(f)
}

fn load_document(path: &str) -> Result<Document, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ext = std::path::Path::new(path).extension();
    let is_html =
        ext.is_some_and(|e| e.eq_ignore_ascii_case("html") || e.eq_ignore_ascii_case("htm"));
    if is_html {
        mrtweb::docmodel::html::extract(&text).map_err(|e| format!("{e}"))
    } else {
        Document::parse_xml(&text).map_err(|e| format!("{e}"))
    }
}

fn build_sc(doc: &Document, query: &str) -> (StructuralCharacteristic, Measure) {
    let pipeline = ScPipeline::default();
    let index = pipeline.run(doc);
    if query.is_empty() {
        (
            StructuralCharacteristic::from_index(&index, None),
            Measure::Ic,
        )
    } else {
        let q = Query::parse(query, &pipeline);
        (
            StructuralCharacteristic::from_index(&index, Some(&q)),
            Measure::Qic,
        )
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "sc" => {
            let path = args.get(1).ok_or("sc needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let (sc, _) = build_sc(&doc, &flags.query);
            println!(
                "{} — {} units, {} bytes",
                doc.title().unwrap_or("(untitled)"),
                doc.unit_count(),
                doc.content_len()
            );
            if !flags.query.is_empty() {
                println!("query: {}", flags.query);
            }
            println!("{}", sc.render_table());
            Ok(())
        }
        "plan" => {
            let path = args.get(1).ok_or("plan needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let (sc, measure) = build_sc(&doc, &flags.query);
            let (plan, _) = plan_document(&doc, &sc, flags.lod, measure);
            println!(
                "transmission order at the {} LOD (by {measure}):",
                flags.lod
            );
            for (i, s) in plan.slices().iter().enumerate() {
                println!(
                    "  {i:>3}. unit {:<8} {:>6} bytes  content {:.4}",
                    s.label, s.bytes, s.content
                );
            }
            println!(
                "total: {} bytes, M = {} raw packets at 256B",
                plan.total_bytes(),
                plan.raw_packets(256)
            );
            Ok(())
        }
        "transfer" => {
            let path = args.get(1).ok_or("transfer needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let (sc, measure) = build_sc(&doc, &flags.query);
            let server = LiveServer::new_auto(&doc, &sc, flags.lod, measure, 64, flags.gamma)
                .map_err(|e| format!("{e}"))?;
            println!(
                "M={} N={} packet={}B γ={:.2} α={}",
                server.header().m,
                server.header().n,
                server.header().packet_size,
                flags.gamma,
                flags.alpha
            );
            let report = run_transfer(
                server,
                &TransferConfig {
                    alpha: flags.alpha,
                    seed: flags.seed,
                    cache_mode: if flags.nocache {
                        CacheMode::NoCaching
                    } else {
                        CacheMode::Caching
                    },
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            println!(
                "completed={} rounds={} frames={} corrupted={} payload={}B",
                report.completed,
                report.rounds,
                report.frames_sent,
                report.frames_corrupted,
                report.payload.len()
            );
            if !report.completed {
                return Err("transfer did not complete".into());
            }
            Ok(())
        }
        "summary" => {
            let path = args.get(1).ok_or("summary needs a file")?;
            let flags = parse_flags(&args[2..])?;
            let doc = load_document(path)?;
            let s = lead_in_summary(&doc, flags.budget);
            println!(
                "{} sentences, {} of {} bytes ({:.1}%):",
                s.sentences.len(),
                s.len_bytes(),
                doc.content_len(),
                100.0 * s.len_bytes() as f64 / doc.content_len().max(1) as f64
            );
            for sent in &s.sentences {
                println!("  • {sent}");
            }
            Ok(())
        }
        "redundancy" => {
            let m: usize = args
                .get(1)
                .ok_or("redundancy needs M")?
                .parse()
                .map_err(|_| "bad M")?;
            let alpha: f64 = args
                .get(2)
                .ok_or("redundancy needs alpha")?
                .parse()
                .map_err(|_| "bad alpha")?;
            let flags = parse_flags(&args[3..])?;
            let plan = Plan::optimal(m, alpha, flags.success).map_err(|e| format!("{e}"))?;
            println!(
                "M={} α={} S={:.0}% → N={} (γ={:.3}), achieved {:.5}",
                plan.raw,
                plan.alpha,
                flags.success * 100.0,
                plan.cooked,
                plan.ratio(),
                plan.achieved_probability().map_err(|e| format!("{e}"))?
            );
            Ok(())
        }
        "faultrun" => {
            let flags = parse_flags(&args[1..])?;
            if flags.list {
                println!("fault-injection scenarios:");
                for (name, what) in mrtweb::faultrun::SCENARIOS {
                    println!("  {name:<12} {what}");
                }
                return Ok(());
            }
            let reports = if flags.all {
                mrtweb::faultrun::run_all(flags.seed)
            } else if flags.scenario.is_empty() {
                return Err("faultrun needs --scenario NAME, --all, or --list".into());
            } else {
                vec![mrtweb::faultrun::run_scenario(&flags.scenario, flags.seed)?]
            };
            let mut failed = 0usize;
            for r in &reports {
                print!("{}", r.render());
                if !r.passed() {
                    failed += 1;
                }
            }
            if failed > 0 {
                return Err(format!("{failed} of {} scenario(s) failed", reports.len()));
            }
            Ok(())
        }
        "broadcast" => {
            let flags = parse_flags(&args[1..])?;
            let skew = match flags.skew.as_str() {
                "flat" => mrtweb::transport::broadcast::Skew::Flat,
                "popularity" | "skewed" => mrtweb::transport::broadcast::Skew::Popularity,
                other => return Err(format!("unknown skew {other:?} (flat|popularity)")),
            };
            let stop = match flags.stop_content {
                Some(x) => mrtweb::transport::broadcast::StopRule::Content(x),
                None => mrtweb::transport::broadcast::StopRule::Complete,
            };
            let cfg = mrtweb::broadcast::RunConfig {
                docs: flags.docs.max(1),
                listeners: flags.listeners.max(1),
                channels: flags.channels.max(1),
                skew,
                index_every: flags.index_every,
                packet_size: flags.packet_size.max(4) as usize,
                gamma: flags.gamma,
                seed: flags.seed,
                fault: parse_fault(&flags.fault)?,
                stop,
                max_cycles: 64,
            };
            if !flags.sweep.is_empty() || !flags.bench_out.is_empty() {
                let ks = if flags.sweep.is_empty() {
                    vec![1, 2, 4]
                } else {
                    parse_counts(&flags.sweep)?
                };
                let (json, points, decreasing) = mrtweb::broadcast::bench_sweep(&cfg, &ks)?;
                println!("{json}");
                if !flags.bench_out.is_empty() {
                    std::fs::write(&flags.bench_out, format!("{json}\n"))
                        .map_err(|e| format!("cannot write {}: {e}", flags.bench_out))?;
                }
                println!("sweep: K={ks:?} skewed mean access decreasing with K: {decreasing}");
                if points.iter().any(|p| p.listeners_completed == 0) {
                    return Err("a sweep point completed no listeners".into());
                }
                return Ok(());
            }
            let report = mrtweb::broadcast::run(&cfg)?;
            if flags.json {
                println!(
                    "{{\"docs\": {}, \"channels\": {}, \"listeners\": {}, \"completed\": {}, \"byte_identical\": {}, \"mean_access_slots\": {:.3}, \"p95_access_slots\": {:.3}, \"encode_spans\": {}, \"zero_reencode\": {}}}",
                    report.docs,
                    report.channels,
                    report.outcomes.len(),
                    report.completed,
                    report.byte_identical,
                    report.mean_access_slots,
                    report.p95_access_slots,
                    report.encode_spans,
                    report.zero_reencode()
                );
            } else {
                print!("{}", report.render());
            }
            if report.completed < report.outcomes.len() {
                return Err(format!(
                    "{} of {} listener(s) did not complete",
                    report.outcomes.len() - report.completed,
                    report.outcomes.len()
                ));
            }
            if !report.zero_reencode() {
                return Err(format!(
                    "carousel re-encoded: {} encode spans for {} documents",
                    report.encode_spans, report.docs
                ));
            }
            Ok(())
        }
        "edge" => {
            let flags = parse_flags(&args[1..])?;
            let cfg = mrtweb::edge::RunConfig {
                docs: flags.docs.max(1),
                requests: flags.requests.max(1),
                byte_budget: flags.byte_budget.max(1),
                packet_size: flags.packet_size.max(4) as usize,
                gamma: flags.gamma,
                seed: flags.seed,
            };
            if flags.roam {
                let report = mrtweb::edge::roam(&cfg)?;
                print!("{}", report.render());
                if !report.all_byte_identical() {
                    return Err("a roamed document did not reconstruct byte-identically".into());
                }
                if !report.resumes_cheaper_than_restart() {
                    return Err("a resume pushed ≥ M frames over the new wireless hop".into());
                }
                if report.migrations_in > report.docs as u64 {
                    return Err(format!(
                        "{} migration records for {} documents (must be ≤ 1 per document)",
                        report.migrations_in, report.docs
                    ));
                }
                return Ok(());
            }
            let report = mrtweb::edge::run(&cfg)?;
            if flags.json {
                println!("{}", mrtweb::edge::edge_metrics_json(&report));
            } else {
                print!("{}", report.render());
            }
            if !report.byte_identical {
                return Err("an edge hit served frames that differ from the miss".into());
            }
            if !report.under_budget() {
                return Err(format!(
                    "resident bytes {} exceed the budget {}",
                    report.resident_bytes, report.byte_budget
                ));
            }
            // Re-encodes are legitimate only after an eviction dropped
            // the entry; a roomy budget must encode once per document.
            if report.evictions == 0 && !report.zero_reencode() {
                return Err(format!(
                    "edge cache re-encoded: {} encode spans for {} documents",
                    report.encode_spans, report.docs
                ));
            }
            if !flags.bench_out.is_empty() {
                let existing = std::fs::read_to_string(&flags.bench_out).ok();
                let json = mrtweb::edge::envelope_bench_json(
                    existing.as_deref(),
                    &mrtweb::edge::edge_metrics_json(&report),
                );
                std::fs::write(&flags.bench_out, format!("{json}\n"))
                    .map_err(|e| format!("cannot write {}: {e}", flags.bench_out))?;
                println!("wrote {}", flags.bench_out);
            }
            Ok(())
        }
        "serve" => {
            // Leading non-flag arguments are document files to serve.
            let mut paths: Vec<String> = Vec::new();
            let mut rest = &args[1..];
            while let Some(first) = rest.first() {
                if first.starts_with("--") {
                    break;
                }
                paths.push(first.clone());
                rest = &rest[1..];
            }
            let flags = parse_flags(rest)?;
            let store = Arc::new(DocumentStore::new(64));
            if paths.is_empty() {
                let spec = SyntheticDocSpec::default();
                for i in 0..flags.corpus.max(1) {
                    let generated = spec.generate(flags.seed.wrapping_add(i as u64));
                    store.put(format!("doc/{i}"), generated.document);
                }
            } else {
                for path in &paths {
                    store.put(path.clone(), load_document(path)?);
                }
            }
            let config = ServerConfig {
                max_sessions: flags.max_sessions,
                workers: flags.workers,
                frame_budget: flags.frame_budget,
                fault: parse_fault(&flags.fault)?,
                fault_seed: flags.seed,
                ..Default::default()
            };
            let engine = Engine::parse(&flags.engine).ok_or_else(|| {
                format!("unknown engine {:?} (auto|event|blocking)", flags.engine)
            })?;
            let server = bind_engine(
                &flags.addr,
                Gateway::new(Arc::clone(&store)),
                config,
                engine,
            )
            .map_err(|e| format!("cannot bind {}: {e}", flags.addr))?;
            println!(
                "listening on {} (engine {})",
                server.local_addr(),
                engine.resolved()
            );
            for url in store.urls() {
                println!("serving {url}");
            }
            if flags.runtime_secs > 0 {
                std::thread::sleep(Duration::from_secs(flags.runtime_secs));
                let final_stats = server.shutdown();
                println!("{}", final_stats.to_json());
                Ok(())
            } else {
                loop {
                    std::thread::sleep(Duration::from_hours(1));
                }
            }
        }
        "fetch" => {
            let url = args.get(1).ok_or("fetch needs a url")?;
            let flags = parse_flags(&args[2..])?;
            let options = FetchOptions {
                url: url.clone(),
                query: flags.query.clone(),
                lod: flags.lod.to_string(),
                measure: flags.measure.clone(),
                packet_size: flags.packet_size,
                gamma: flags.gamma,
                stop_at_content: flags.stop_content,
                stop_at_slices: flags.stop_slices,
                io_timeout: Duration::from_secs(flags.timeout_secs.max(1)),
            };
            let report = fetch(flags.addr.as_str(), &options).map_err(|e| e.to_string())?;
            println!(
                "M={} N={} packet={}B rounds={} frames={} crc_rejects={} bytes={}",
                report.header.m,
                report.header.n,
                report.header.packet_size,
                report.rounds,
                report.frames_received,
                report.crc_rejects,
                report.bytes_received
            );
            if report.completed {
                println!("reconstructed {} bytes", report.payload.len());
            } else if report.stopped_early {
                println!("stopped early at the requested resolution");
            } else if report.gave_up {
                return Err("server gave up before reconstruction".into());
            } else {
                return Err("fetch ended without reconstruction".into());
            }
            if !flags.out.is_empty() && report.completed {
                std::fs::write(&flags.out, &report.payload)
                    .map_err(|e| format!("cannot write {}: {e}", flags.out))?;
                println!("wrote {}", flags.out);
            }
            Ok(())
        }
        "loadgen" => {
            let flags = parse_flags(&args[1..])?;
            let addr = resolve(&flags.addr)?;
            let options = FetchOptions {
                url: flags.url.clone(),
                query: flags.query.clone(),
                lod: flags.lod.to_string(),
                measure: flags.measure.clone(),
                packet_size: flags.packet_size,
                gamma: flags.gamma,
                stop_at_content: flags.stop_content,
                stop_at_slices: flags.stop_slices,
                io_timeout: Duration::from_secs(flags.timeout_secs.max(1)),
            };
            let mode = if flags.rate > 0.0 {
                match flags.arrival.as_str() {
                    "fixed" => ArrivalMode::OpenFixed { rps: flags.rate },
                    "poisson" => ArrivalMode::OpenPoisson {
                        rps: flags.rate,
                        seed: flags.seed,
                    },
                    other => {
                        return Err(format!("unknown arrival {other:?} (fixed|poisson)"));
                    }
                }
            } else {
                ArrivalMode::Closed
            };
            if flags.sweep.is_empty() {
                let report = loadgen::run(
                    addr,
                    &LoadConfig {
                        clients: flags.clients.max(1),
                        requests: flags.requests.max(1),
                        mode,
                        options,
                    },
                );
                if flags.json {
                    println!("{}", report.to_json());
                } else {
                    println!(
                        "{} clients × {} requests ({}): {} ok, {} rejected, {} failed in {:.2}s",
                        report.clients,
                        flags.requests,
                        report.mode,
                        report.completed,
                        report.rejected,
                        report.failed,
                        report.elapsed.as_secs_f64()
                    );
                    println!(
                        "throughput {:.1} req/s, latency p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms p99.9 {:.1}ms",
                        report.throughput,
                        report.p50.as_secs_f64() * 1e3,
                        report.p95.as_secs_f64() * 1e3,
                        report.p99.as_secs_f64() * 1e3,
                        report.p99_9.as_secs_f64() * 1e3
                    );
                    if mode != ArrivalMode::Closed {
                        println!(
                            "offered {:.1} req/s, attempted {:.1} req/s{}",
                            report.offered_rps,
                            report.attempted_rps,
                            if report.generator_limited {
                                " (GENERATOR LIMITED: throughput understates the server)"
                            } else {
                                ""
                            }
                        );
                    }
                }
                if report.completed == 0 {
                    return Err("no request completed".into());
                }
            } else {
                let counts = parse_counts(&flags.sweep)?;
                let (reports, json) =
                    loadgen::sweep(addr, &counts, flags.requests.max(1), mode, &options);
                println!("{json}");
                if !flags.bench_out.is_empty() {
                    std::fs::write(&flags.bench_out, format!("{json}\n"))
                        .map_err(|e| format!("cannot write {}: {e}", flags.bench_out))?;
                }
                if reports.iter().any(|r| r.completed == 0) {
                    return Err("a sweep point completed no requests".into());
                }
            }
            Ok(())
        }
        "stats" => {
            let flags = parse_flags(&args[1..])?;
            let snapshot = fetch_stats(
                flags.addr.as_str(),
                Duration::from_secs(flags.timeout_secs.max(1)),
            )
            .map_err(|e| e.to_string())?;
            println!("{}", snapshot.to_json());
            if flags.assert_clean && !mrtweb::proxy::stats::is_clean(&snapshot) {
                return Err(
                    "stats are not clean (crc_rejects, timeouts, or protocol_errors nonzero)"
                        .into(),
                );
            }
            Ok(())
        }
        "trace" => {
            let verb = args
                .get(1)
                .ok_or("trace needs a verb: record, dump, or summarize")?;
            match verb.as_str() {
                "record" => {
                    let path = args.get(2).ok_or("trace record needs a file")?;
                    let flags = parse_flags(&args[3..])?;
                    trace_record(path, &flags)
                }
                "dump" => {
                    let path = args.get(2).ok_or("trace dump needs a .jsonl file")?;
                    let trace = load_trace(path)?;
                    for event in &trace.events {
                        println!(
                            "{:>14} ns  thread {:>3}  {:<20} a={:<12} b={}",
                            event.ts,
                            event.thread,
                            event.kind.name(),
                            event.a,
                            event.b
                        );
                    }
                    if trace.dropped > 0 {
                        println!("({} events dropped at record time)", trace.dropped);
                    }
                    Ok(())
                }
                "summarize" => {
                    let path = args.get(2).ok_or("trace summarize needs a .jsonl file")?;
                    let trace = load_trace(path)?;
                    let summary = mrtweb::obs::export::summarize(&trace);
                    print!("{}", mrtweb::obs::export::render_summary(&summary));
                    Ok(())
                }
                other => Err(format!(
                    "unknown trace verb {other:?} (try record, dump, summarize)"
                )),
            }
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Runs a live transfer with the tracer enabled and writes the captured
/// trace as JSONL to `--out` (or stdout).
fn trace_record(path: &str, flags: &Flags) -> Result<(), String> {
    let doc = load_document(path)?;
    let (sc, measure) = build_sc(&doc, &flags.query);
    mrtweb::obs::trace::set_enabled(true);
    let _ = mrtweb::obs::trace::drain(); // discard anything stale
    let server = LiveServer::new_auto(&doc, &sc, flags.lod, measure, 64, flags.gamma)
        .map_err(|e| format!("{e}"))?;
    let report = run_transfer(
        server,
        &TransferConfig {
            alpha: flags.alpha,
            seed: flags.seed,
            cache_mode: if flags.nocache {
                CacheMode::NoCaching
            } else {
                CacheMode::Caching
            },
            ..Default::default()
        },
    );
    mrtweb::obs::trace::set_enabled(false);
    let trace = mrtweb::obs::trace::drain();
    let report = report.map_err(|e| e.to_string())?;
    eprintln!(
        "transfer: completed={} rounds={} frames={} corrupted={} — {} trace events",
        report.completed,
        report.rounds,
        report.frames_sent,
        report.frames_corrupted,
        trace.events.len()
    );
    let jsonl = mrtweb::obs::export::trace_to_jsonl(&trace);
    if flags.out.is_empty() {
        print!("{jsonl}");
    } else {
        std::fs::write(&flags.out, &jsonl)
            .map_err(|e| format!("cannot write {}: {e}", flags.out))?;
        eprintln!("wrote {}", flags.out);
    }
    Ok(())
}

/// Reads and parses a JSONL trace file.
fn load_trace(path: &str) -> Result<mrtweb::obs::trace::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    mrtweb::obs::export::trace_from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Maps a `--fault` preset name to a fault schedule.
fn parse_fault(name: &str) -> Result<Option<FaultConfig>, String> {
    match name {
        "" | "none" => Ok(None),
        "clean" => Ok(Some(FaultConfig::clean())),
        "corrupting" => Ok(Some(FaultConfig::corrupting(0.1))),
        "bursty" => Ok(Some(FaultConfig::bursty())),
        "outage" => Ok(Some(FaultConfig::outage_heavy())),
        "mixed" => Ok(Some(FaultConfig::mixed())),
        "garbling" => Ok(Some(FaultConfig::garbling())),
        "dropping" => Ok(Some(FaultConfig::dropping(0.1))),
        other => Err(format!(
            "unknown fault preset {other:?} (try clean, corrupting, bursty, outage, mixed, garbling, dropping)"
        )),
    }
}

/// Resolves `host:port` to a socket address.
fn resolve(addr: &str) -> Result<std::net::SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to nothing"))
}

/// Parses a `--sweep` list like `1,8,32`.
fn parse_counts(list: &str) -> Result<Vec<usize>, String> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad sweep count {s:?}"))
                .and_then(|n| {
                    if n == 0 {
                        Err("sweep counts must be positive".to_owned())
                    } else {
                        Ok(n)
                    }
                })
        })
        .collect()
}
