//! Edge-cache and roaming driver: the base station serving cooked blobs.
//!
//! Wires the whole stack into the cell architecture the paper's
//! Figure 1 implies: a [`mrtweb_store::gateway::Gateway`] fronting each
//! base station keeps cooked MRTB dispersed blobs in a bounded,
//! disk-backed [`mrtweb_store::edge::EdgeCache`], so a repeat request
//! re-frames stored packets instead of re-running the slicer, the
//! ranker, and the GF(2⁸) codec. Two drivers:
//!
//! * [`run`] — one cell under a request stream: measures cache-hit vs
//!   encode-on-miss latency and proves the zero-re-encode claim (the
//!   trace's `EncodeSpan` count equals the number of *distinct
//!   documents*, not requests);
//! * [`roam`] — two shared-nothing cells: a client mid-transfer at cell
//!   A roams to cell B, whose only knowledge of the document arrives in
//!   one CRC-framed migration record ([`mrtweb_store::migrate`]); the
//!   client resumes with the packets it already holds and only the
//!   missing ones cross the new wireless hop.
//!
//! Everything is deterministic in the seed; latencies are wall-clock
//! (they feed the `edge` section of `BENCH_proxy.json`).

use std::fmt::Write as _;
use std::sync::Arc;

use mrtweb_content::query::Query;
use mrtweb_content::sc::Measure;
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_docmodel::lod::Lod;
use mrtweb_obs::clock::now_nanos;
use mrtweb_obs::{emit, EventKind};
use mrtweb_store::edge::{EdgeCache, EdgeKey};
use mrtweb_store::gateway::{Gateway, Request};
use mrtweb_store::migrate::{decode_record, encode_record, MigrationRecord};
use mrtweb_store::store::DocumentStore;
use mrtweb_transport::live::{LiveClient, LiveServer};
use mrtweb_transport::plan::plan_document;

/// One edge-cell simulation's knobs. Deterministic in `seed` (latencies
/// excepted — they are real wall-clock measurements).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Distinct documents in the cell's corpus.
    pub docs: usize,
    /// Total requests, round-robin over the corpus (so each document
    /// misses once and hits `requests/docs − 1` times under a roomy
    /// budget).
    pub requests: usize,
    /// The edge cache's resident byte budget.
    pub byte_budget: usize,
    /// Raw packet size in bytes.
    pub packet_size: usize,
    /// Redundancy ratio γ (`N = round(γM)`).
    pub gamma: f64,
    /// Seed for the synthetic corpus.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            docs: 8,
            requests: 64,
            byte_budget: 1 << 20,
            packet_size: 64,
            gamma: 1.5,
            seed: 42,
        }
    }
}

/// Aggregate report of one single-cell run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Distinct documents requested.
    pub docs: usize,
    /// Requests issued.
    pub requests: usize,
    /// Requests served from the edge cache.
    pub hits: u64,
    /// Requests that cooked a blob (encode path).
    pub misses: u64,
    /// `EncodeSpan` events in the trace — equals `docs` when every
    /// repeat request was served without touching the codec.
    pub encode_spans: u64,
    /// Cache-hit serve latency, median, milliseconds.
    pub cache_hit_p50_ms: f64,
    /// Cache-hit serve latency, 99th percentile, milliseconds.
    pub cache_hit_p99_ms: f64,
    /// Encode-on-miss latency, median, milliseconds.
    pub encode_miss_p50_ms: f64,
    /// Encode-on-miss latency, 99th percentile, milliseconds.
    pub encode_miss_p99_ms: f64,
    /// `hits / requests`, percent.
    pub cache_hit_rate_pct: f64,
    /// `encode_miss_p50_ms / cache_hit_p50_ms`.
    pub cache_hit_speedup_vs_miss: f64,
    /// Whether every checked hit served frames byte-identical to the
    /// miss that cooked them.
    pub byte_identical: bool,
    /// Whole entries the budget evicted.
    pub evictions: u64,
    /// Parity packets trimmed from memory by the budget.
    pub trimmed_packets: u64,
    /// Bytes resident when the run ended.
    pub resident_bytes: usize,
    /// The configured byte budget.
    pub byte_budget: usize,
}

impl RunReport {
    /// The tentpole claim: encoding happened once per *document*, never
    /// per request. Only meaningful when the budget held every entry
    /// (an eviction legitimately forces a re-encode on the next miss).
    #[must_use]
    pub fn zero_reencode(&self) -> bool {
        self.encode_spans == self.docs as u64
    }

    /// Whether residency stayed within the configured budget.
    #[must_use]
    pub fn under_budget(&self) -> bool {
        self.resident_bytes <= self.byte_budget
    }

    /// Human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "edge: docs={} requests={} hits={} misses={} hit_rate={:.1}%",
            self.docs, self.requests, self.hits, self.misses, self.cache_hit_rate_pct
        );
        let _ = writeln!(
            out,
            "latency ms: hit p50={:.4} p99={:.4} | miss p50={:.4} p99={:.4} | speedup={:.1}x",
            self.cache_hit_p50_ms,
            self.cache_hit_p99_ms,
            self.encode_miss_p50_ms,
            self.encode_miss_p99_ms,
            self.cache_hit_speedup_vs_miss
        );
        let _ = writeln!(
            out,
            "encodes={} (docs={}) zero_reencode={} byte_identical={}",
            self.encode_spans,
            self.docs,
            self.zero_reencode(),
            self.byte_identical
        );
        let _ = writeln!(
            out,
            "budget: resident_bytes={} byte_budget={} under_budget={} evictions={} trimmed_packets={}",
            self.resident_bytes,
            self.byte_budget,
            self.under_budget(),
            self.evictions,
            self.trimmed_packets
        );
        out
    }
}

/// What happened to one roamed document.
#[derive(Debug, Clone)]
pub struct RoamOutcome {
    /// Corpus index.
    pub doc: usize,
    /// Raw packets `M` of the transmission.
    pub m: usize,
    /// Cooked packets the client already held when it roamed.
    pub held: usize,
    /// Frames the new cell pushed over its wireless hop.
    pub new_hop_frames: usize,
    /// Size of the one migration record that crossed the backhaul.
    pub record_bytes: usize,
    /// Size of the blob inside it.
    pub blob_bytes: usize,
    /// Whether the resumed reconstruction is byte-identical to the
    /// source payload.
    pub byte_identical: bool,
    /// Whether cell B served from its edge cache (it must: its store
    /// is empty, the migration record is all it knows).
    pub served_from_edge: bool,
}

/// Aggregate report of one two-cell roaming run.
#[derive(Debug, Clone)]
pub struct RoamReport {
    /// Documents roamed mid-transfer.
    pub docs: usize,
    /// Per-document detail.
    pub outcomes: Vec<RoamOutcome>,
    /// Migration records cell B admitted (one per roamed document).
    pub migrations_in: u64,
    /// Total backhaul bytes (all migration records).
    pub record_bytes_total: usize,
}

impl RoamReport {
    /// Every roamed document reconstructed byte-identically.
    #[must_use]
    pub fn all_byte_identical(&self) -> bool {
        self.outcomes.iter().all(|o| o.byte_identical)
    }

    /// Every resume pushed fewer than `M` frames over the new hop —
    /// the packets held from cell A kept their value.
    #[must_use]
    pub fn resumes_cheaper_than_restart(&self) -> bool {
        self.outcomes.iter().all(|o| o.new_hop_frames < o.m)
    }

    /// Human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "roam: docs={} migrations_in={} records≤1/doc={} backhaul_bytes={}",
            self.docs,
            self.migrations_in,
            self.migrations_in <= self.docs as u64,
            self.record_bytes_total
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "  doc {}: m={} held={} new_hop_frames={} record_bytes={} byte_identical={} edge_hit={}",
                o.doc, o.m, o.held, o.new_hop_frames, o.record_bytes, o.byte_identical,
                o.served_from_edge
            );
        }
        let _ = writeln!(
            out,
            "all_byte_identical={} resumes_cheaper_than_restart={}",
            self.all_byte_identical(),
            self.resumes_cheaper_than_restart()
        );
        out
    }
}

/// A corpus request: document `i` of the seeded synthetic corpus, at
/// paragraph LOD under the static IC ordering (no query, so the edge
/// key is stable across cells).
fn request_for(i: usize, packet_size: usize, gamma: f64) -> Request {
    Request {
        url: format!("http://cell/doc{i}"),
        query: String::new(),
        lod: Lod::Paragraph,
        measure: Measure::Ic,
        packet_size,
        gamma,
    }
}

/// Fills a store with the seeded synthetic corpus.
fn fill_store(store: &DocumentStore, docs: usize, seed: u64) {
    for i in 0..docs {
        let generated = SyntheticDocSpec {
            sections: 2,
            subsections_per_section: 2,
            paragraphs_per_subsection: 2,
            target_bytes: 1400 + (i % 5) * 300,
            ..Default::default()
        }
        .generate(seed.wrapping_add(i as u64));
        store.put(format!("http://cell/doc{i}"), generated.document);
    }
}

/// A unique scratch directory for one cell's blob store.
fn fresh_dir(tag: &str, seed: u64) -> Result<std::path::PathBuf, String> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_err(|e| format!("{e}"))?
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("mrtweb-edge-{tag}-{seed}-{nanos}"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{e}"))?;
    Ok(dir)
}

/// `q`-quantile of an unsorted latency sample, in milliseconds.
fn quantile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * q).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// Runs one cell under a round-robin request stream and reports hit
/// and miss latencies plus the zero-re-encode evidence.
///
/// # Errors
///
/// Configuration, I/O, or gateway failures as strings; per-request
/// outcomes come back inside the report.
pub fn run(cfg: &RunConfig) -> Result<RunReport, String> {
    if cfg.docs == 0 || cfg.requests == 0 {
        return Err("docs and requests must both be positive".into());
    }
    // Capture the whole run's trace: every encode the gateway performs
    // shows up as an EncodeSpan, hits show up as EdgeHit.
    let session = mrtweb_obs::testkit::capture();
    let outcome = run_traced(cfg);
    let trace = session.finish();
    let mut report = outcome?;
    report.encode_spans = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::EncodeSpan)
        .count() as u64;
    Ok(report)
}

fn run_traced(cfg: &RunConfig) -> Result<RunReport, String> {
    let dir = fresh_dir("run", cfg.seed)?;
    let store = Arc::new(DocumentStore::new(cfg.docs.max(8)));
    fill_store(&store, cfg.docs, cfg.seed);
    let edge = Arc::new(EdgeCache::new(&dir, cfg.byte_budget).map_err(|e| format!("{e}"))?);
    let gateway = Gateway::new(store).with_edge(Arc::clone(&edge));

    let mut hit_ms = Vec::new();
    let mut miss_ms = Vec::new();
    // The first (miss) server per document is the ground truth a later
    // hit must match byte for byte.
    let mut first: Vec<Option<Arc<LiveServer>>> = vec![None; cfg.docs];
    let mut byte_identical = true;
    for r in 0..cfg.requests {
        let i = r % cfg.docs;
        let req = request_for(i, cfg.packet_size, cfg.gamma);
        let t0 = now_nanos();
        let (server, hit) = gateway.prepare_edge(&req).map_err(|e| format!("{e}"))?;
        let elapsed_ms = now_nanos().saturating_sub(t0) as f64 / 1e6;
        if hit {
            hit_ms.push(elapsed_ms);
            if let Some(miss_srv) = &first[i] {
                byte_identical &= miss_srv.header() == server.header()
                    && (0..server.header().n)
                        .all(|f| miss_srv.frame_bytes(f) == server.frame_bytes(f));
            }
        } else {
            miss_ms.push(elapsed_ms);
            first[i] = Some(server);
        }
    }

    let stats = edge.stats();
    let hit_p50 = quantile_ms(&hit_ms, 0.50);
    let miss_p50 = quantile_ms(&miss_ms, 0.50);
    let report = RunReport {
        docs: cfg.docs,
        requests: cfg.requests,
        hits: hit_ms.len() as u64,
        misses: miss_ms.len() as u64,
        encode_spans: 0,
        cache_hit_p50_ms: hit_p50,
        cache_hit_p99_ms: quantile_ms(&hit_ms, 0.99),
        encode_miss_p50_ms: miss_p50,
        encode_miss_p99_ms: quantile_ms(&miss_ms, 0.99),
        cache_hit_rate_pct: hit_ms.len() as f64 / cfg.requests as f64 * 100.0,
        cache_hit_speedup_vs_miss: if hit_p50 > 0.0 {
            miss_p50 / hit_p50
        } else {
            0.0
        },
        byte_identical,
        evictions: stats.evictions,
        trimmed_packets: stats.trimmed_packets,
        resident_bytes: stats.resident_bytes,
        byte_budget: cfg.byte_budget,
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

/// Runs the two-cell roaming handoff: every document starts
/// transferring at cell A, the client roams mid-transfer, and cell B —
/// whose document store is *empty* — serves the resume entirely from
/// the one migration record that crossed the backhaul.
///
/// # Errors
///
/// Configuration, I/O, migration-codec, or gateway failures as strings.
#[allow(clippy::too_many_lines)]
pub fn roam(cfg: &RunConfig) -> Result<RoamReport, String> {
    if cfg.docs == 0 {
        return Err("docs must be positive".into());
    }
    let dir_a = fresh_dir("cell-a", cfg.seed)?;
    let dir_b = fresh_dir("cell-b", cfg.seed)?;
    let store_a = Arc::new(DocumentStore::new(cfg.docs.max(8)));
    fill_store(&store_a, cfg.docs, cfg.seed);
    let edge_a = Arc::new(EdgeCache::new(&dir_a, cfg.byte_budget).map_err(|e| format!("{e}"))?);
    let edge_b = Arc::new(EdgeCache::new(&dir_b, cfg.byte_budget).map_err(|e| format!("{e}"))?);
    let gateway_a = Gateway::new(Arc::clone(&store_a)).with_edge(Arc::clone(&edge_a));
    // Shared-nothing: cell B has no documents, no pipeline state, no
    // history — only its (empty) edge cache.
    let gateway_b = Gateway::new(Arc::new(DocumentStore::new(8))).with_edge(Arc::clone(&edge_b));

    let mut outcomes = Vec::with_capacity(cfg.docs);
    let mut record_bytes_total = 0usize;
    for i in 0..cfg.docs {
        let req = request_for(i, cfg.packet_size, cfg.gamma);

        // Ground truth: the payload the planner would transmit.
        let doc = store_a
            .document(&req.url)
            .ok_or_else(|| format!("corpus document {i} missing"))?;
        let query = Query::parse(&req.query, store_a.pipeline());
        let sc = store_a
            .structural_characteristic(&req.url, &query)
            .ok_or_else(|| format!("no structural characteristic for document {i}"))?;
        let (_, expected) = plan_document(&doc, &sc, req.lod, req.measure);

        // Start the transfer at cell A: the miss cooks and admits the
        // blob; the client banks a deterministic clear-text prefix.
        let (server_a, _) = gateway_a.prepare_edge(&req).map_err(|e| format!("{e}"))?;
        let m = server_a.header().m;
        let held = (m / 2).clamp(1, m.saturating_sub(1).max(1));
        let mut client = LiveClient::new(server_a.header().clone()).map_err(|e| format!("{e}"))?;
        for f in 0..held {
            let wire = server_a
                .frame_bytes(f)
                .ok_or_else(|| format!("cell A cannot serve frame {f}"))?;
            client.on_wire(wire);
        }

        // Roam: one CRC-framed record carries (key, header, blob) over
        // the backhaul; cell B validates and admits it verbatim.
        let key = EdgeKey::of(&req);
        let (header, blob) = edge_a
            .export_blob(&key)
            .ok_or_else(|| format!("cell A never admitted document {i}"))?;
        let blob_bytes = blob.len();
        let record = encode_record(&MigrationRecord { key, header, blob });
        emit(
            EventKind::EdgeMigrate,
            record.len() as u64,
            blob_bytes as u64,
        );
        record_bytes_total += record.len();
        let decoded = decode_record(&record).map_err(|e| format!("{e}"))?;
        edge_b
            .admit_migrated(decoded.key, decoded.header, &decoded.blob)
            .map_err(|e| format!("{e}"))?;

        // Resume at cell B: the serve must come from its edge cache
        // (the store would answer NotFound), and only the packets the
        // client still lacks cross the new wireless hop.
        let (server_b, served_from_edge) =
            gateway_b.prepare_edge(&req).map_err(|e| format!("{e}"))?;
        let missing = client.state().missing();
        emit(EventKind::HandoffResume, held as u64, missing.len() as u64);
        let mut new_hop_frames = 0usize;
        for idx in missing {
            if client.document_bytes().is_some() {
                break;
            }
            let Some(wire) = server_b.frame_bytes(idx) else {
                continue;
            };
            client.on_wire(wire);
            new_hop_frames += 1;
        }
        let byte_identical = client.document_bytes() == Some(&expected[..]);
        outcomes.push(RoamOutcome {
            doc: i,
            m,
            held,
            new_hop_frames,
            record_bytes: record.len(),
            blob_bytes,
            byte_identical,
            served_from_edge,
        });
    }

    let migrations_in = edge_b.stats().migrations_in;
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    Ok(RoamReport {
        docs: cfg.docs,
        outcomes,
        migrations_in,
        record_bytes_total,
    })
}

/// The `edge` object of the bench envelope, rendered from a run.
#[must_use]
pub fn edge_metrics_json(report: &RunReport) -> String {
    format!(
        "{{\"cache_hit_p50_ms\": {:.4}, \"cache_hit_p99_ms\": {:.4}, \"encode_miss_p50_ms\": {:.4}, \"encode_miss_p99_ms\": {:.4}, \"cache_hit_rate_pct\": {:.2}, \"cache_hit_speedup_vs_miss\": {:.1}}}",
        report.cache_hit_p50_ms,
        report.cache_hit_p99_ms,
        report.encode_miss_p50_ms,
        report.encode_miss_p99_ms,
        report.cache_hit_rate_pct,
        report.cache_hit_speedup_vs_miss
    )
}

/// Pulls the proxy sweep array out of an existing `BENCH_proxy.json`,
/// which is either the load generator's bare array or an envelope this
/// driver wrote earlier (so re-running is idempotent).
#[must_use]
pub fn extract_proxy_array(existing: &str) -> Option<String> {
    let text = existing.trim();
    let start = if text.starts_with('[') {
        0
    } else {
        let at = text.find("\"proxy\"")?;
        at + text[at..].find('[')?
    };
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in text[start..].char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[start..=start + i].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Re-envelopes `BENCH_proxy.json`: the existing proxy sweep (bare
/// array or prior envelope) plus the edge section.
#[must_use]
pub fn envelope_bench_json(existing: Option<&str>, edge_json: &str) -> String {
    let proxy = existing
        .and_then(extract_proxy_array)
        .unwrap_or_else(|| "[]".to_owned());
    format!("{{\n  \"proxy\": {proxy},\n  \"edge\": {edge_json}\n}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_requests_hit_and_encode_once_per_document() {
        let report = run(&RunConfig {
            docs: 4,
            requests: 20,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.hits + report.misses, 20, "{}", report.render());
        assert_eq!(report.misses, 4, "{}", report.render());
        assert_eq!(
            report.encode_spans,
            4,
            "one encode per distinct document, not per request: {}",
            report.render()
        );
        assert!(report.zero_reencode(), "{}", report.render());
        assert!(report.byte_identical, "{}", report.render());
        assert!(report.cache_hit_rate_pct >= 75.0, "{}", report.render());
        assert!(report.under_budget(), "{}", report.render());
    }

    #[test]
    fn tiny_budget_evicts_but_never_exceeds() {
        let report = run(&RunConfig {
            docs: 6,
            requests: 18,
            byte_budget: 12 << 10,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        assert!(report.under_budget(), "{}", report.render());
        assert!(
            report.evictions > 0 || report.trimmed_packets > 0,
            "a 12 KiB budget over this corpus must create pressure: {}",
            report.render()
        );
        assert!(report.byte_identical, "{}", report.render());
    }

    #[test]
    fn roaming_resumes_byte_identically_with_one_record_per_doc() {
        let report = roam(&RunConfig {
            docs: 3,
            seed: 11,
            ..Default::default()
        })
        .unwrap();
        assert!(report.all_byte_identical(), "{}", report.render());
        assert!(report.resumes_cheaper_than_restart(), "{}", report.render());
        assert_eq!(
            report.migrations_in,
            3,
            "exactly one migration record per roamed document: {}",
            report.render()
        );
        for o in &report.outcomes {
            assert!(o.served_from_edge, "{}", report.render());
            assert_eq!(o.held + o.new_hop_frames, o.m, "{}", report.render());
        }
    }

    #[test]
    fn roam_is_deterministic_in_structure() {
        let cfg = RunConfig {
            docs: 2,
            seed: 5,
            ..Default::default()
        };
        let a = roam(&cfg).unwrap();
        let b = roam(&cfg).unwrap();
        let shape = |r: &RoamReport| {
            r.outcomes
                .iter()
                .map(|o| (o.m, o.held, o.new_hop_frames, o.record_bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&a), shape(&b));
    }

    #[test]
    fn bench_envelope_wraps_and_rewraps() {
        let bare = r#"[
  {"clients": 1, "p50_ms": 0.7},
  {"clients": 8, "p50_ms": 7.7}
]"#;
        let edge = r#"{"cache_hit_p50_ms": 0.05}"#;
        let enveloped = envelope_bench_json(Some(bare), edge);
        assert!(enveloped.contains("\"proxy\": ["));
        assert!(enveloped.contains("\"edge\": {"));
        // Idempotent: extracting from the envelope gives the array back.
        let again = envelope_bench_json(Some(&enveloped), edge);
        assert_eq!(
            extract_proxy_array(&again).unwrap(),
            extract_proxy_array(bare).unwrap()
        );
        // No prior file: empty sweep, edge still present.
        let fresh = envelope_bench_json(None, edge);
        assert!(fresh.contains("\"proxy\": []"));
    }
}
