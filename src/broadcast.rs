//! Broadcast-mode driver: one encode, unbounded listeners.
//!
//! Wires the whole stack into the paper's §6 broadcast direction: a
//! synthetic corpus flows through the structural-characteristic
//! pipeline and the transmission planner, is dispersal-encoded **once**
//! into store blobs, lifted verbatim onto the air
//! ([`mrtweb_store::air`]), scheduled by the carousel
//! ([`mrtweb_transport::broadcast`]), and heard by any number of
//! listeners through independent fault taps on a shared medium
//! ([`mrtweb_channel::medium`]). Every run is fully determined by its
//! seed, and all timing is in virtual slots.
//!
//! The observability trace proves the headline claim: the number of
//! [`EventKind::EncodeSpan`] events equals the number of documents,
//! however many listeners tuned in.

use std::fmt::Write as _;

use mrtweb_channel::fault::FaultConfig;
use mrtweb_channel::medium::SharedMedium;
use mrtweb_content::sc::{Measure, StructuralCharacteristic};
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_docmodel::lod::Lod;
use mrtweb_obs::EventKind;
use mrtweb_store::air::broadcast_doc_from_blob;
use mrtweb_store::codec::encode_dispersed;
use mrtweb_transport::broadcast::{
    BroadcastDoc, BroadcastListener, Carousel, CarouselConfig, Skew, StopRule,
};
use mrtweb_transport::plan::plan_document;

/// One broadcast simulation's knobs. Everything is deterministic in
/// `seed`.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Corpus size (documents on the air).
    pub docs: usize,
    /// Listeners tuning in (across all channels).
    pub listeners: usize,
    /// Parallel broadcast channels `K`.
    pub channels: usize,
    /// Cycle placement policy.
    pub skew: Skew,
    /// Air-index spacing (data slots between index frames).
    pub index_every: usize,
    /// Cooked packet size in bytes.
    pub packet_size: usize,
    /// Redundancy ratio γ (`N = ⌈γM⌉`).
    pub gamma: f64,
    /// Seed for corpus, listener targets, join offsets, and faults.
    pub seed: u64,
    /// Shared-medium fault schedule (`None` = clean air).
    pub fault: Option<FaultConfig>,
    /// When listeners turn their radios off.
    pub stop: StopRule,
    /// Safety bound: give up on a listener after this many cycles.
    pub max_cycles: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            docs: 8,
            listeners: 32,
            channels: 1,
            skew: Skew::Popularity,
            index_every: 16,
            packet_size: 64,
            gamma: 1.6,
            seed: 42,
            fault: None,
            stop: StopRule::Complete,
            max_cycles: 64,
        }
    }
}

/// What happened to one listener.
#[derive(Debug, Clone)]
pub struct ListenerOutcome {
    /// Listener id (appears as `a` in its trace events).
    pub id: u64,
    /// The document it wanted.
    pub target: u16,
    /// The channel it tuned to.
    pub channel: usize,
    /// The slot it joined at.
    pub joined_at: u64,
    /// Whether it finished under its stop rule.
    pub completed: bool,
    /// Slots listened from tune-in to stop.
    pub access_slots: Option<u64>,
    /// Whether reconstructed bytes match the source exactly (true for
    /// content-rule stops that never reconstructed).
    pub bytes_ok: bool,
    /// Information content at stop.
    pub content: f64,
    /// CRC-rejected frames/records it heard.
    pub corrupt_frames: u64,
}

/// Aggregate report of one broadcast run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Documents on the air.
    pub docs: usize,
    /// Channels used.
    pub channels: usize,
    /// Cycle length of each channel, in slots.
    pub cycle_lens: Vec<usize>,
    /// Listeners that finished under their stop rule.
    pub completed: usize,
    /// Listeners whose reconstruction was byte-identical.
    pub byte_identical: usize,
    /// `EncodeSpan` events observed — the re-encode counter. Equal to
    /// `docs` when the carousel kept its one-encode promise.
    pub encode_spans: u64,
    /// `DecodeSpan` events observed (client-side reconstructions).
    pub decode_spans: u64,
    /// `CarouselCycle` wraps observed across channels.
    pub cycles_completed: u64,
    /// Mean access time over completed listeners, in slots.
    pub mean_access_slots: f64,
    /// 95th-percentile access time over completed listeners, in slots.
    pub p95_access_slots: f64,
    /// Per-listener detail.
    pub outcomes: Vec<ListenerOutcome>,
}

impl RunReport {
    /// Whether encoding happened at most once per document.
    pub fn zero_reencode(&self) -> bool {
        self.encode_spans <= self.docs as u64
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "broadcast: docs={} channels={} cycles={:?}",
            self.docs, self.channels, self.cycle_lens
        );
        let _ = writeln!(
            out,
            "listeners: completed={}/{} byte_identical={}",
            self.completed,
            self.outcomes.len(),
            self.byte_identical
        );
        let _ = writeln!(
            out,
            "access slots: mean={:.1} p95={:.1}",
            self.mean_access_slots, self.p95_access_slots
        );
        let _ = writeln!(
            out,
            "encodes={} (docs={}) zero_reencode={} decodes={} cycle_wraps={}",
            self.encode_spans,
            self.docs,
            self.zero_reencode(),
            self.decode_spans,
            self.cycles_completed
        );
        out
    }
}

/// Builds the on-air corpus: synthetic documents through the SC
/// pipeline and planner, dispersal-encoded once, lifted verbatim.
/// Document `i` gets Zipf popularity `1/(i+1)`. Returns the air
/// documents and each one's planned payload (ground truth for byte
/// identity).
pub fn build_corpus(
    docs: usize,
    packet_size: usize,
    gamma: f64,
    seed: u64,
) -> Result<(Vec<BroadcastDoc>, Vec<Vec<u8>>), String> {
    let mut air = Vec::with_capacity(docs);
    let mut payloads = Vec::with_capacity(docs);
    for i in 0..docs {
        let generated = SyntheticDocSpec {
            sections: 2,
            subsections_per_section: 2,
            paragraphs_per_subsection: 2,
            target_bytes: 1400 + (i % 5) * 300,
            ..Default::default()
        }
        .generate(seed.wrapping_add(i as u64));
        let pipeline = mrtweb_textproc::pipeline::ScPipeline::default();
        let index = pipeline.run(&generated.document);
        let sc = StructuralCharacteristic::from_index(&index, None);
        let (plan, payload) = plan_document(&generated.document, &sc, Lod::Paragraph, Measure::Ic);
        // One group per document: M spans the whole payload, so the
        // store encodes exactly once per document.
        let m = plan.raw_packets(packet_size).max(1);
        let n = ((m as f64 * gamma).ceil() as usize).clamp(m, 256);
        if m > 256 {
            return Err(format!("document {i}: M={m} exceeds the GF(256) bound"));
        }
        let blob = encode_dispersed(&payload, m, n, packet_size).map_err(|e| format!("{e}"))?;
        // The planner's QIC-ranked per-packet contents ride the air
        // index so listeners (and the skewed scheduler) see them.
        let contents = {
            let pc = plan.packet_contents(packet_size);
            let total: f64 = pc.iter().sum();
            if pc.len() == m && total > 0.0 {
                Some(pc.iter().map(|c| c / total).collect::<Vec<f64>>())
            } else {
                None
            }
        };
        let doc =
            broadcast_doc_from_blob(i as u16, 1.0 / (i + 1) as f64, &blob, contents.as_deref())
                .map_err(|e| format!("{e}"))?;
        air.push(doc);
        payloads.push(payload);
    }
    Ok((air, payloads))
}

/// SplitMix64: a tiny deterministic generator for targets and offsets.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one broadcast simulation and returns its aggregate report.
///
/// # Errors
///
/// `Err` only for configuration/corpus problems; listener-level
/// failures (incomplete, wrong bytes) come back inside the report.
pub fn run(cfg: &RunConfig) -> Result<RunReport, String> {
    if cfg.listeners == 0 || cfg.docs == 0 || cfg.channels == 0 {
        return Err("docs, listeners, and channels must all be positive".into());
    }
    // Capture the whole run's trace: corpus encodes, carousel wraps,
    // listener tune-ins, and reconstructions.
    let session = mrtweb_obs::testkit::capture();
    let outcome = run_traced(cfg);
    let trace = session.finish();
    let (mut report, payloads) = outcome?;
    report.encode_spans = count(&trace, EventKind::EncodeSpan);
    report.decode_spans = count(&trace, EventKind::DecodeSpan);
    report.cycles_completed = count(&trace, EventKind::CarouselCycle);
    let _ = payloads;
    Ok(report)
}

fn count(trace: &mrtweb_obs::Trace, kind: EventKind) -> u64 {
    trace.events.iter().filter(|e| e.kind == kind).count() as u64
}

#[allow(clippy::too_many_lines)]
fn run_traced(cfg: &RunConfig) -> Result<(RunReport, Vec<Vec<u8>>), String> {
    let (air, payloads) = build_corpus(cfg.docs, cfg.packet_size, cfg.gamma, cfg.seed)?;
    let carousel = Carousel::build(
        &air,
        &CarouselConfig {
            channels: cfg.channels,
            skew: cfg.skew,
            index_every: cfg.index_every,
        },
    )
    .map_err(|e| format!("{e}"))?;
    let channels = carousel.channels();
    let cycle_lens: Vec<usize> = (0..channels).map(|c| carousel.cycle_len(c)).collect();

    // Assign listeners: target sampled ∝ popularity weight, join
    // offset uniform in the first two cycles of the target's channel.
    let mut rng = cfg.seed ^ 0xB0AD_CA57;
    let total_weight: f64 = air.iter().map(|d| d.weight).sum();
    let mut per_channel: Vec<Vec<(BroadcastListener, u64, u16)>> =
        (0..channels).map(|_| Vec::new()).collect();
    for id in 0..cfg.listeners as u64 {
        let mut pick = (splitmix(&mut rng) as f64 / u64::MAX as f64) * total_weight;
        let mut target = air[air.len() - 1].id;
        for d in &air {
            if pick < d.weight {
                target = d.id;
                break;
            }
            pick -= d.weight;
        }
        let ch = carousel
            .channel_of(target)
            .ok_or_else(|| format!("document {target} missing from the air"))?;
        let join = splitmix(&mut rng) % (2 * cycle_lens[ch] as u64);
        per_channel[ch].push((BroadcastListener::new(id, target, cfg.stop), join, target));
    }

    // Drive each channel: one frame per slot, fanned to that channel's
    // taps through independent fault schedules.
    let clean = FaultConfig::clean();
    let fault = cfg.fault.as_ref().unwrap_or(&clean);
    let mut outcomes = Vec::with_capacity(cfg.listeners);
    for (ch, listeners) in per_channel.iter_mut().enumerate() {
        let mut medium = SharedMedium::new(
            fault,
            cfg.seed ^ (ch as u64).wrapping_mul(0xC0FFEE),
            listeners.len(),
        );
        let horizon = cfg
            .max_cycles
            .saturating_mul(cycle_lens[ch] as u64)
            .max(cycle_lens[ch] as u64);
        let last_join = listeners.iter().map(|(_, j, _)| *j).max().unwrap_or(0);
        for slot in 0..last_join + horizon {
            if listeners
                .iter()
                .all(|(l, join, _)| slot >= *join && l.is_done())
                && listeners.iter().all(|(_, join, _)| slot >= *join)
            {
                break;
            }
            let frame = carousel.frame_at(ch, slot).to_vec();
            for (tap, (listener, join, _)) in listeners.iter_mut().enumerate() {
                if slot < *join || listener.is_done() {
                    continue;
                }
                let delivery = medium.transmit_to(tap, &frame);
                listener.hear(slot, delivery.bytes());
            }
        }
        for (listener, join, target) in listeners.iter() {
            let expected = &payloads[usize::from(*target)];
            let bytes_ok = match listener.bytes() {
                Some(b) => b == &expected[..],
                None => {
                    !matches!(cfg.stop, StopRule::Complete | StopRule::AllPackets)
                        || !listener.is_done()
                }
            };
            outcomes.push(ListenerOutcome {
                id: listener.id(),
                target: *target,
                channel: ch,
                joined_at: *join,
                completed: listener.is_done(),
                access_slots: listener.access_slots(),
                bytes_ok,
                content: listener.content(),
                corrupt_frames: listener.corrupt_frames(),
            });
        }
    }
    outcomes.sort_by_key(|o| o.id);

    let mut access: Vec<u64> = outcomes.iter().filter_map(|o| o.access_slots).collect();
    access.sort_unstable();
    let completed = outcomes.iter().filter(|o| o.completed).count();
    let byte_identical = outcomes
        .iter()
        .filter(|o| o.completed && o.bytes_ok)
        .count();
    let mean = if access.is_empty() {
        0.0
    } else {
        access.iter().sum::<u64>() as f64 / access.len() as f64
    };
    let p95 = access
        .get(((access.len() as f64 * 0.95).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(0) as f64;
    Ok((
        RunReport {
            docs: cfg.docs,
            channels,
            cycle_lens,
            completed,
            byte_identical,
            encode_spans: 0,
            decode_spans: 0,
            cycles_completed: 0,
            mean_access_slots: mean,
            p95_access_slots: p95,
            outcomes,
        },
        payloads,
    ))
}

/// One point of the bench sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Placement policy of this point.
    pub skew: Skew,
    /// Channel count `K`.
    pub k: usize,
    /// Mean access time, slots.
    pub mean_access_slots: f64,
    /// p95 access time, slots.
    pub p95_access_slots: f64,
    /// Listeners completed.
    pub listeners_completed: usize,
}

/// Sweeps listeners × channels × skew and renders the bench JSON.
///
/// Returns the JSON (for `BENCH_broadcast.json`) and whether mean
/// access time decreased from the smallest to the largest `K` on the
/// skewed workload — the acceptance property.
///
/// # Errors
///
/// Propagates configuration errors from [`run`].
pub fn bench_sweep(
    base: &RunConfig,
    ks: &[usize],
) -> Result<(String, Vec<SweepPoint>, bool), String> {
    let mut points = Vec::new();
    for &skew in &[Skew::Flat, Skew::Popularity] {
        for &k in ks {
            let report = run(&RunConfig {
                channels: k,
                skew,
                ..base.clone()
            })?;
            points.push(SweepPoint {
                skew,
                k,
                mean_access_slots: report.mean_access_slots,
                p95_access_slots: report.p95_access_slots,
                listeners_completed: report.completed,
            });
        }
    }
    let skewed: Vec<&SweepPoint> = points
        .iter()
        .filter(|p| p.skew == Skew::Popularity)
        .collect();
    let decreasing = match (skewed.first(), skewed.last()) {
        (Some(a), Some(b)) if skewed.len() > 1 => b.mean_access_slots < a.mean_access_slots,
        _ => false,
    };

    let mut json = String::from("{\n  \"broadcast\": {\n");
    for (si, &skew) in [Skew::Flat, Skew::Popularity].iter().enumerate() {
        let name = if skew == Skew::Flat { "flat" } else { "skewed" };
        let _ = writeln!(json, "    \"{name}\": {{");
        let group: Vec<&SweepPoint> = points.iter().filter(|p| p.skew == skew).collect();
        for (i, p) in group.iter().enumerate() {
            let comma = if i + 1 == group.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "      \"k{}\": {{\"mean_access_slots\": {:.3}, \"p95_access_slots\": {:.3}, \"listeners_completed\": {}}}{comma}",
                p.k, p.mean_access_slots, p.p95_access_slots, p.listeners_completed
            );
        }
        let _ = writeln!(json, "    }}{}", if si == 0 { "," } else { "" });
    }
    json.push_str("  }\n}");
    Ok((json, points, decreasing))
}

/// The golden flat-carousel access-time shape: a lone document on a
/// flat single-channel carousel with one index frame per cycle,
/// measured over *every* join offset.
///
/// A joiner at offset `j` buffers data frames while tuning, decodes as
/// soon as the cycle-boundary index frame arrives (if it buffered `M`
/// packets) or after sweeping the remainder, so its access time is
/// `max(cycle − j, M + 1)` and the mean over all offsets is
/// `cycle/2 + ~(M+1)²/(2·cycle)`. With generous redundancy (`γ = 3`,
/// so `M ≪ cycle`) the correction term shrinks and the mean sits near
/// half a cycle — the textbook flat-carousel expectation the fixture
/// pins, alongside the exact analytic model.
///
/// # Errors
///
/// Propagates corpus/schedule construction failures.
pub fn golden_flat_access(seed: u64) -> Result<String, String> {
    let (air, _) = build_corpus(1, 64, 3.0, seed)?;
    let carousel = Carousel::build(
        &air,
        &CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 0,
        },
    )
    .map_err(|e| format!("{e}"))?;
    let cycle = carousel.cycle_len(0) as u64;
    let mut access = Vec::with_capacity(cycle as usize);
    for join in 0..cycle {
        let mut l = BroadcastListener::new(join, 0, StopRule::Complete);
        let mut slot = join;
        while !l.hear(slot, Some(carousel.frame_at(0, slot))) {
            slot += 1;
            if slot > join + 4 * cycle {
                return Err(format!("golden listener at join={join} never completed"));
            }
        }
        access.push(l.access_slots().unwrap_or(0));
    }
    let mean = access.iter().sum::<u64>() as f64 / access.len() as f64;
    let max = access.iter().copied().max().unwrap_or(0);
    let min = access.iter().copied().min().unwrap_or(0);
    // Closed-form prediction: access(j) = max(cycle − j, floor) where
    // the floor is the fastest possible completion (the M-sweep).
    let model = (0..cycle).map(|j| (cycle - j).max(min)).sum::<u64>() as f64 / cycle as f64;
    Ok(format!(
        "{{\n  \"cycle_len\": {cycle},\n  \"mean_access_slots\": {mean:.3},\n  \"model_mean_slots\": {model:.3},\n  \"half_cycle\": {:.3},\n  \"min_access_slots\": {min},\n  \"max_access_slots\": {max}\n}}",
        cycle as f64 / 2.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_completes_everyone_byte_identically_with_one_encode_per_doc() {
        let report = run(&RunConfig {
            docs: 4,
            listeners: 24,
            channels: 2,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.completed, 24, "{}", report.render());
        assert_eq!(report.byte_identical, 24, "{}", report.render());
        assert!(report.zero_reencode(), "{}", report.render());
        assert_eq!(report.encode_spans, 4, "{}", report.render());
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig {
            docs: 3,
            listeners: 12,
            fault: Some(FaultConfig::corrupting(0.2)),
            seed: 11,
            ..Default::default()
        };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_access_slots, b.mean_access_slots);
        assert_eq!(
            a.outcomes
                .iter()
                .map(|o| o.access_slots)
                .collect::<Vec<_>>(),
            b.outcomes
                .iter()
                .map(|o| o.access_slots)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_reports_decreasing_access_with_more_channels() {
        let (json, points, decreasing) = bench_sweep(
            &RunConfig {
                docs: 8,
                listeners: 32,
                seed: 5,
                ..Default::default()
            },
            &[1, 2, 4],
        )
        .unwrap();
        assert!(decreasing, "points: {points:?}");
        assert!(json.contains("\"broadcast\""));
        assert!(json.contains("\"k1\""));
        assert!(json.contains("mean_access_slots"));
    }

    #[test]
    fn golden_mean_is_near_half_a_cycle() {
        let json = golden_flat_access(42).unwrap();
        // Parse the two numbers back out coarsely.
        let grab = |key: &str| -> f64 {
            let at = json.find(key).expect(key) + key.len() + 2;
            json[at..]
                .trim_start()
                .trim_start_matches(':')
                .trim_start()
                .split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let mean = grab("\"mean_access_slots\"");
        let half = grab("\"half_cycle\"");
        let model = grab("\"model_mean_slots\"");
        assert!(
            (mean - half).abs() <= half * 0.35,
            "mean {mean} too far from half-cycle {half}"
        );
        assert!(
            (mean - model).abs() <= model * 0.05,
            "mean {mean} disagrees with the analytic model {model}"
        );
    }
}
