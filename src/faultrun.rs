//! The deterministic fault-injection harness.
//!
//! Each named scenario drives one or more layers of the stack — the
//! threaded live transport, the session protocol (stall →
//! NoCaching/Caching retransmission), the selective-repeat ARQ
//! baseline, the dispersed-blob store, the broadcast carousel, and the
//! base-station edge cache with its roaming handoff — through a
//! seed-driven
//! [`FaultConfig`] schedule, and checks the protocol invariants the
//! paper's design promises:
//!
//! 1. any `M` intact cooked packets reconstruct the document
//!    **byte-identically**;
//! 2. CRC never passes a corrupted frame (observable as byte-identity
//!    of every completed reconstruction);
//! 3. Caching never re-requests a packet it already holds intact;
//! 4. ARQ terminates within its round budget;
//! 5. progressive [`ClientEvent::SliceProgress`] fractions are monotone
//!    per slice and in `[0, 1]`.
//!
//! Every run is fully determined by `(scenario, seed)`, so any failure
//! reproduces with `mrtweb faultrun --scenario <name> --seed <s>`; the
//! scheduler's trace is carried in the report for replay and diagnosis.

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::fault::{
    apply_fault, render_trace, FaultConfig, FaultEvent, FaultKind, FaultScheduler, ScheduledLoss,
};
use mrtweb_channel::link::Link;
use mrtweb_channel::medium::SharedMedium;
use mrtweb_content::query::Query;
use mrtweb_content::sc::{Measure, StructuralCharacteristic};
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_docmodel::lod::Lod;
use mrtweb_store::air::broadcast_doc_from_blob;
use mrtweb_store::codec::{decode_dispersed, encode_dispersed};
use mrtweb_store::edge::{EdgeCache, EdgeKey};
use mrtweb_store::gateway::{Gateway, Request};
use mrtweb_store::migrate::{decode_record, encode_record, MigrationRecord};
use mrtweb_store::store::DocumentStore;
use mrtweb_transport::arq::{download_arq, ArqConfig};
use mrtweb_transport::broadcast::{
    BroadcastDoc, BroadcastListener, Carousel, CarouselConfig, Skew, StopRule,
};
use mrtweb_transport::live::{run_transfer, ClientEvent, LiveClient, LiveServer, TransferConfig};
use mrtweb_transport::plan::{plan_document, TransmissionPlan, UnitSlice};
use mrtweb_transport::session::{download, CacheMode, Outcome, Relevance, SessionConfig};

/// Scenario registry: `(name, what it stresses)`.
pub const SCENARIOS: &[(&str, &str)] = &[
    (
        "clean",
        "control arm: zero faults through every layer; everything must complete in one round",
    ),
    (
        "bernoulli",
        "i.i.d. bit-flip corruption at α=0.3 through live transport and both session cache modes",
    ),
    (
        "burst",
        "multi-byte burst damage plus occasional garbles through live transport and the store",
    ),
    (
        "outage",
        "timed disconnection windows over light corruption through session and ARQ",
    ),
    (
        "mixed",
        "every fault family at once (drops, dups, reorder, garble, truncate, outage) through live transport and session",
    ),
    (
        "garble",
        "whole-frame garbling and truncation: CRC detection stress through live transport and the store",
    ),
    (
        "arq-storm",
        "heavy silent drops: ARQ NACK-repair rounds and session retransmission under α=0.35 loss",
    ),
    (
        "store-rot",
        "at-rest packet rot in dispersed blobs: decode survives ≥M intact per group, fails cleanly below",
    ),
    (
        "broadcast-join",
        "carousel listeners joining mid-cycle at scattered offsets on clean air: all complete byte-identically within two cycles",
    ),
    (
        "broadcast-outage",
        "a disconnection window spanning a carousel cycle boundary: listeners ride out the outage and still reconstruct exactly",
    ),
    (
        "broadcast-earlystop",
        "per-listener early stop at M: early-stopping bytes equal the patient all-packets collection, and stop before it",
    ),
    (
        "broadcast-corrupt",
        "corrupted frames on the air: CRC discards damage, redundancy covers it, and every completion stays byte-identical",
    ),
    (
        "edge-rot",
        "at-rest rot of an edge-cached blob: the rotted entry never serves, the gateway re-encodes from the store, and the refreshed cache hits byte-identically",
    ),
    (
        "edge-roam-outage",
        "a migration record damaged on the backhaul: decode rejects it cleanly, and the new cell falls back to one re-encode with a byte-identical resume",
    ),
];

/// Names of all registered scenarios.
pub fn scenario_names() -> Vec<&'static str> {
    SCENARIOS.iter().map(|(n, _)| *n).collect()
}

/// Outcome of one `(scenario, seed)` harness run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario that ran.
    pub scenario: String,
    /// The seed that determined the schedule.
    pub seed: u64,
    /// Invariant checks performed.
    pub checks: usize,
    /// Human-readable description of every violated invariant.
    pub failures: Vec<String>,
    /// The concatenated fault traces of every injected layer.
    pub trace: Vec<FaultEvent>,
    /// The causally-ordered observability timeline recorded during the
    /// run (empty when the `trace` feature is compiled out).
    pub timeline: mrtweb_obs::Trace,
}

impl ScenarioReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Multi-line render: verdict, failures, and (on failure) the trace.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "{verdict} scenario={} seed={} checks={} failures={}",
            self.scenario,
            self.seed,
            self.checks,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        if !self.passed() {
            let _ = writeln!(out, "fault trace ({} events):", self.trace.len());
            out.push_str(&render_trace(&self.trace));
            if !self.timeline.events.is_empty() {
                let _ = writeln!(
                    out,
                    "observability timeline ({} events, causal order):",
                    self.timeline.events.len()
                );
                for e in &self.timeline.events {
                    let _ = writeln!(
                        out,
                        "  {:>14} ns  thread {:>3}  {:<18} a={:<12} b={}",
                        e.ts,
                        e.thread,
                        e.kind.name(),
                        e.a,
                        e.b
                    );
                }
            }
            let _ = writeln!(
                out,
                "reproduce with: mrtweb faultrun --scenario {} --seed {}",
                self.scenario, self.seed
            );
        }
        out
    }
}

/// Accumulates invariant checks for one scenario run.
struct Harness {
    checks: usize,
    failures: Vec<String>,
    trace: Vec<FaultEvent>,
}

impl Harness {
    fn new() -> Self {
        Harness {
            checks: 0,
            failures: Vec::new(),
            trace: Vec::new(),
        }
    }

    fn check(&mut self, cond: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !cond {
            self.failures.push(msg());
        }
    }
}

/// Runs one scenario under one seed.
///
/// # Errors
///
/// `Err` names the unknown scenario; all invariant *violations* come
/// back inside the `Ok` report, never as `Err`.
pub fn run_scenario(name: &str, seed: u64) -> Result<ScenarioReport, String> {
    let mut h = Harness::new();
    // One scenario records at a time, so each report's timeline holds
    // exactly its own run's events (the tracer is process-global; the
    // capture session owns the cross-crate timeline lock).
    let session = mrtweb_obs::testkit::capture();
    let outcome = drive(name, seed, &mut h);
    let timeline = session.finish();
    outcome?;
    Ok(ScenarioReport {
        scenario: name.to_string(),
        seed,
        checks: h.checks,
        failures: h.failures,
        trace: h.trace,
        timeline,
    })
}

fn drive(name: &str, seed: u64, h: &mut Harness) -> Result<(), String> {
    match name {
        "clean" => {
            live_layer(h, &FaultConfig::clean(), seed, CacheMode::Caching, true);
            session_layer(h, &FaultConfig::clean(), seed);
            arq_layer(h, &FaultConfig::clean(), seed);
            store_layer(h, &FaultConfig::clean(), seed);
        }
        "bernoulli" => {
            let cfg = FaultConfig::corrupting(0.3);
            live_layer(h, &cfg, seed, CacheMode::Caching, false);
            live_layer(h, &cfg, seed, CacheMode::NoCaching, false);
            session_layer(h, &cfg, seed);
        }
        "burst" => {
            let cfg = FaultConfig::bursty();
            live_layer(h, &cfg, seed, CacheMode::Caching, false);
            store_layer(h, &cfg, seed);
        }
        "outage" => {
            let cfg = FaultConfig::outage_heavy();
            session_layer(h, &cfg, seed);
            arq_layer(h, &cfg, seed);
        }
        "mixed" => {
            let cfg = FaultConfig::mixed();
            live_layer(h, &cfg, seed, CacheMode::Caching, false);
            session_layer(h, &cfg, seed);
        }
        "garble" => {
            let cfg = FaultConfig::garbling();
            live_layer(h, &cfg, seed, CacheMode::Caching, false);
            store_layer(h, &cfg, seed);
        }
        "arq-storm" => {
            let cfg = FaultConfig::dropping(0.35);
            arq_layer(h, &cfg, seed);
            session_layer(h, &cfg, seed);
        }
        "store-rot" => {
            store_layer(h, &FaultConfig::mixed(), seed);
            store_hardening(h, seed);
        }
        "broadcast-join" => broadcast_layer(h, BroadcastArm::Join, seed),
        "broadcast-outage" => broadcast_layer(h, BroadcastArm::Outage, seed),
        "broadcast-earlystop" => broadcast_layer(h, BroadcastArm::EarlyStop, seed),
        "broadcast-corrupt" => broadcast_layer(h, BroadcastArm::Corrupt, seed),
        "edge-rot" => edge_layer(h, EdgeArm::Rot, seed),
        "edge-roam-outage" => edge_layer(h, EdgeArm::RoamOutage, seed),
        other => return Err(format!("unknown scenario {other:?}")),
    }
    Ok(())
}

/// Runs every scenario under one seed.
pub fn run_all(seed: u64) -> Vec<ScenarioReport> {
    scenario_names()
        .iter()
        .map(|n| run_scenario(n, seed).expect("registered scenario"))
        .collect()
}

/// A deterministic document fixture with enough structure for every LOD.
fn fixture() -> (
    mrtweb_docmodel::document::Document,
    StructuralCharacteristic,
    Vec<u8>,
) {
    let doc = SyntheticDocSpec {
        sections: 3,
        subsections_per_section: 2,
        paragraphs_per_subsection: 2,
        target_bytes: 4000,
        ..Default::default()
    }
    .generate(11)
    .document;
    let pipeline = mrtweb_textproc::pipeline::ScPipeline::default();
    let idx = pipeline.run(&doc);
    let sc = StructuralCharacteristic::from_index(&idx, None);
    let (_, payload) = plan_document(&doc, &sc, Lod::Paragraph, Measure::Ic);
    (doc, sc, payload)
}

/// Drives the threaded live transport under a fault schedule.
fn live_layer(
    h: &mut Harness,
    cfg: &FaultConfig,
    seed: u64,
    cache_mode: CacheMode,
    expect_clean: bool,
) {
    let (doc, sc, expected) = fixture();
    let server = match LiveServer::new_auto(&doc, &sc, Lod::Paragraph, Measure::Ic, 64, 1.8) {
        Ok(s) => s,
        Err(e) => {
            h.check(false, || format!("live: server construction failed: {e}"));
            return;
        }
    };
    let n = server.header().n;
    let slice_labels: Vec<String> = server
        .header()
        .plan
        .slices()
        .iter()
        .map(|s| s.label.clone())
        .collect();
    let report = match run_transfer(
        server,
        &TransferConfig {
            alpha: 0.0,
            seed,
            cache_mode,
            stop_at_content: None,
            max_rounds: 512,
            fault: Some(cfg.clone()),
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            h.check(false, || {
                format!("live[{cache_mode:?}]: transfer error: {e}")
            });
            return;
        }
    };
    h.trace.extend(report.fault_events.iter().copied());

    // Invariant 1+2: a completed transfer is byte-identical — any M
    // intact packets reconstruct exactly, and no CRC-passing corrupted
    // frame contaminated the payload.
    if report.completed {
        h.check(report.payload == expected, || {
            format!(
                "live[{cache_mode:?}]: reconstructed payload differs from source \
                 ({} vs {} bytes) — corruption passed CRC or decode is wrong",
                report.payload.len(),
                expected.len()
            )
        });
    } else {
        // 512 rounds at these fault rates is beyond any plausible stall
        // streak; not completing means lost progress, i.e. a cache or
        // repair bug.
        h.check(false, || {
            format!(
                "live[{cache_mode:?}]: transfer failed to complete within {} rounds",
                report.rounds
            )
        });
    }
    h.check(report.rounds <= 512, || {
        format!(
            "live[{cache_mode:?}]: round budget exceeded: {}",
            report.rounds
        )
    });

    // Invariant 5: SliceProgress monotone per slice, in-bounds, and only
    // for planned slices.
    let mut last = std::collections::HashMap::<&str, f64>::new();
    for e in &report.events {
        if let ClientEvent::SliceProgress { label, fraction } = e {
            h.check(slice_labels.iter().any(|l| l == label), || {
                format!("live[{cache_mode:?}]: progress for unplanned slice {label:?}")
            });
            h.check((0.0..=1.0 + 1e-12).contains(fraction), || {
                format!("live[{cache_mode:?}]: fraction {fraction} out of bounds for {label}")
            });
            let prev = last.insert(label.as_str(), *fraction).unwrap_or(0.0);
            h.check(*fraction >= prev, || {
                format!(
                    "live[{cache_mode:?}]: progress went backwards for {label}: \
                     {prev} -> {fraction}"
                )
            });
        }
    }

    // Invariant 3: in Caching mode, request sets shrink monotonically
    // (⊆ the previous request) — an intact packet is never re-requested.
    if cache_mode == CacheMode::Caching {
        for pair in report.requests.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            h.check(next.iter().all(|i| prev.contains(i)), || {
                format!(
                    "live[Caching]: round re-requested a packet outside the previous \
                         missing set: {next:?} ⊄ {prev:?}"
                )
            });
        }
    }
    for req in &report.requests {
        h.check(req.iter().all(|&i| i < n), || {
            format!("live[{cache_mode:?}]: request index out of range (N={n}): {req:?}")
        });
    }

    if expect_clean {
        h.check(report.rounds == 1, || {
            format!("live[clean]: expected 1 round, used {}", report.rounds)
        });
        h.check(report.frames_corrupted == 0, || {
            format!(
                "live[clean]: {} frames corrupted on a clean schedule",
                report.frames_corrupted
            )
        });
        h.check(report.fault_events.is_empty(), || {
            format!(
                "live[clean]: clean schedule logged {} fault events",
                report.fault_events.len()
            )
        });
    }
}

/// Drives `session::download` for both cache modes over the identical
/// schedule and checks the Caching ≤ NoCaching dominance.
fn session_layer(h: &mut Harness, cfg: &FaultConfig, seed: u64) {
    let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
    let run = |mode: CacheMode| {
        let mut link = Link::new(
            Bandwidth::from_kbps(19.2),
            ScheduledLoss::new(cfg.clone(), seed),
            seed,
        );
        let config = SessionConfig {
            cache_mode: mode,
            max_rounds: 4096,
            ..Default::default()
        };
        download(&plan, Relevance::relevant(), &config, &mut link)
    };
    let caching = run(CacheMode::Caching);
    let nocaching = run(CacheMode::NoCaching);

    for (mode, r) in [("Caching", &caching), ("NoCaching", &nocaching)] {
        h.check(r.rounds <= 4096, || {
            format!("session[{mode}]: round budget exceeded: {}", r.rounds)
        });
        if r.outcome == Outcome::Completed {
            h.check(r.packets_sent >= r.m as u64, || {
                format!(
                    "session[{mode}]: completed with only {} packets for M={}",
                    r.packets_sent, r.m
                )
            });
            h.check(r.content >= 1.0 - 1e-9, || {
                format!(
                    "session[{mode}]: completed but content only {:.4}",
                    r.content
                )
            });
        }
    }
    // Caching must always complete within the budget at these fault
    // rates; NoCaching may legitimately fail at high loss (it needs M
    // intact within a single round).
    h.check(caching.outcome == Outcome::Completed, || {
        format!("session[Caching]: did not complete: {:?}", caching.outcome)
    });
    // Per-slot fate schedules are identical (same `(cfg, seed)`), so
    // Caching completes at the M-th intact slot overall — never later
    // than NoCaching, which needs M intact within one round.
    if caching.outcome == Outcome::Completed && nocaching.outcome == Outcome::Completed {
        h.check(caching.packets_sent <= nocaching.packets_sent, || {
            format!(
                "session: Caching sent {} packets > NoCaching's {} on the identical schedule",
                caching.packets_sent, nocaching.packets_sent
            )
        });
        h.check(caching.response_time <= nocaching.response_time + 1e-9, || {
            format!(
                "session: Caching slower ({:.2}s) than NoCaching ({:.2}s) on the identical schedule",
                caching.response_time, nocaching.response_time
            )
        });
    }
    // Record the schedule for replay.
    let mut sched = ScheduledLoss::new(cfg.clone(), seed);
    {
        use mrtweb_channel::loss::LossModel;
        for _ in 0..caching.packets_sent {
            let _ = sched.next_corrupted();
        }
    }
    h.trace.extend(sched.scheduler().trace().iter().copied());
}

/// Drives the selective-repeat ARQ baseline under a fault schedule.
fn arq_layer(h: &mut Harness, cfg: &FaultConfig, seed: u64) {
    let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
    let mut link = Link::new(
        Bandwidth::from_kbps(19.2),
        ScheduledLoss::new(cfg.clone(), seed),
        seed,
    );
    let config = ArqConfig {
        max_rounds: 256,
        ..Default::default()
    };
    let r = download_arq(&plan, &config, &mut link);
    // Invariant 4: ARQ terminates within its round budget, and reports
    // honestly when it could not finish.
    h.check(r.rounds <= 256, || {
        format!("arq: round budget exceeded: {}", r.rounds)
    });
    h.check(r.completed || r.rounds == 256, || {
        format!(
            "arq: gave up after {} rounds without exhausting the budget",
            r.rounds
        )
    });
    if r.completed {
        h.check((r.content - 1.0).abs() < 1e-9, || {
            format!("arq: completed but content {:.4} != 1", r.content)
        });
        h.check(r.packets_sent >= 40, || {
            format!("arq: completed with {} packets for M=40", r.packets_sent)
        });
    }
    // ARQ at these fault rates must finish: every round independently
    // retries the missing packets, and the budget is generous.
    h.check(r.completed, || {
        format!("arq: did not complete in {} rounds", r.rounds)
    });
}

/// Rots packets inside a dispersed blob per the schedule, then checks
/// that decoding either reconstructs byte-identically (≥ M intact per
/// group) or fails cleanly — never panics, never returns wrong bytes.
fn store_layer(h: &mut Harness, cfg: &FaultConfig, seed: u64) {
    let (m, n, packet_size) = (20usize, 30usize, 64usize);
    let payload: Vec<u8> = (0..5000u32)
        .map(|i| (i.wrapping_mul(2654435761).wrapping_add(seed as u32) >> 8) as u8)
        .collect();
    let blob = match encode_dispersed(&payload, m, n, packet_size) {
        Ok(b) => b,
        Err(e) => {
            h.check(false, || format!("store: encode failed: {e}"));
            return;
        }
    };
    // Blob layout: 29-byte header, then per group a 4-byte length plus
    // `n` records of `packet_size + 4` (packet ‖ crc32) bytes.
    let header = 29usize;
    let record = packet_size + 4;
    let group_bytes = 4 + n * record;
    let n_groups = (blob.len() - header) / group_bytes;
    let mut rotted = blob.clone();
    let mut sched = FaultScheduler::new(cfg.clone(), seed ^ 0x5707E);
    let mut min_intact = n;
    for g in 0..n_groups {
        let mut intact = n;
        for p in 0..n {
            let start = header + g * group_bytes + 4 + p * record;
            let kind = sched.next_kind(record);
            // At-rest rot: only byte-damaging faults apply; delivery
            // multiplicity (drop/dup/reorder) has no storage analogue,
            // but an outage window models an unreadable region.
            let kind = match kind {
                FaultKind::Drop | FaultKind::Outage => FaultKind::Garble {
                    seed: seed ^ p as u64,
                },
                FaultKind::Duplicate | FaultKind::Reorder { .. } | FaultKind::Truncate { .. } => {
                    FaultKind::Deliver
                }
                k => k,
            };
            if kind.corrupts() {
                let mut rec = rotted[start..start + record].to_vec();
                apply_fault(kind, &mut rec);
                rotted[start..start + record].copy_from_slice(&rec);
                intact -= 1;
            }
        }
        min_intact = min_intact.min(intact);
    }
    h.trace.extend(sched.trace().iter().copied());

    match decode_dispersed(&rotted) {
        Ok(decoded) => {
            // Invariant 1: whatever decodes must be byte-identical.
            h.check(decoded == payload, || {
                format!(
                    "store: decode returned {} bytes differing from the {}-byte source",
                    decoded.len(),
                    payload.len()
                )
            });
            h.check(min_intact >= m, || {
                format!(
                    "store: decode succeeded with a group at {min_intact} < M={m} intact \
                     packets — CRC-32 passed a corrupted packet"
                )
            });
        }
        Err(e) => {
            h.check(min_intact < m, || {
                format!(
                    "store: decode failed ({e}) although every group kept ≥ M={m} \
                     intact packets (min {min_intact})"
                )
            });
        }
    }
    // The pristine blob must always decode byte-identically.
    match decode_dispersed(&blob) {
        Ok(decoded) => h.check(decoded == payload, || {
            "store: pristine blob decoded to different bytes".to_string()
        }),
        Err(e) => h.check(false, || {
            format!("store: pristine blob failed to decode: {e}")
        }),
    }
}

/// Structural hardening checks: hostile blob inputs fail cleanly.
fn store_hardening(h: &mut Harness, seed: u64) {
    let payload = vec![0xAB; 1000];
    let blob = encode_dispersed(&payload, 5, 8, 32).expect("valid parameters");

    let mut bad_magic = blob.clone();
    bad_magic[0] ^= 0xFF;
    h.check(decode_dispersed(&bad_magic).is_err(), || {
        "store: blob with mangled magic decoded".to_string()
    });

    for cut in [0, 4, 12, 28, blob.len() / 2, blob.len() - 1] {
        h.check(decode_dispersed(&blob[..cut]).is_err(), || {
            format!("store: blob truncated to {cut} bytes decoded")
        });
    }

    let mut grown = blob.clone();
    grown.extend_from_slice(&[(seed & 0xFF) as u8; 7]);
    h.check(decode_dispersed(&grown).is_err(), || {
        "store: blob with trailing garbage decoded".to_string()
    });
}

/// Which broadcast stress the scenario applies.
#[derive(Debug, Clone, Copy)]
enum BroadcastArm {
    Join,
    Outage,
    EarlyStop,
    Corrupt,
}

/// Three documents carved from the planner fixture, dispersal-encoded
/// once each through the store codec and lifted onto the air.
fn broadcast_fixture() -> (Vec<BroadcastDoc>, Vec<Vec<u8>>) {
    let (_, _, payload) = fixture();
    let third = payload.len() / 3;
    let bodies = vec![
        payload[..third].to_vec(),
        payload[third..2 * third].to_vec(),
        payload[2 * third..].to_vec(),
    ];
    let params = [(4usize, 6usize, 64usize), (3, 5, 48), (2, 4, 96)];
    let docs = bodies
        .iter()
        .zip(&params)
        .enumerate()
        .map(|(i, (body, &(m, n, ps)))| {
            let blob = encode_dispersed(body, m, n, ps).expect("valid parameters");
            broadcast_doc_from_blob(i as u16, 1.0 / (i + 1) as f64, &blob, None)
                .expect("store blob lifts to air")
        })
        .collect();
    (docs, bodies)
}

/// Drives a listener over clean frames, with slots in `lost` heard as
/// nothing. Returns the slot it completed at, if it did before `bound`.
fn drive_clean(
    car: &Carousel,
    ch: usize,
    l: &mut BroadcastListener,
    join: u64,
    bound: u64,
    lost: impl Fn(u64) -> bool,
) -> Option<u64> {
    for slot in join..=join + bound {
        let heard = if lost(slot) {
            None
        } else {
            Some(car.frame_at(ch, slot))
        };
        if l.hear(slot, heard) {
            return Some(slot);
        }
    }
    None
}

/// The broadcast carousel under fault: whatever the air does, every
/// completed listener must hold the exact stored bytes, and the
/// scenario's timing promise must hold.
#[allow(clippy::too_many_lines)]
fn broadcast_layer(h: &mut Harness, arm: BroadcastArm, seed: u64) {
    let (docs, bodies) = broadcast_fixture();
    match arm {
        BroadcastArm::Join => {
            // Scattered mid-cycle joins on clean air across two flat
            // channels: completion within two cycles of tune-in.
            let car = Carousel::build(
                &docs,
                &CarouselConfig {
                    channels: 2,
                    skew: Skew::Flat,
                    index_every: 4,
                },
            )
            .expect("valid corpus");
            for (k, doc) in docs.iter().enumerate() {
                let ch = car.channel_of(doc.id).expect("document on air");
                let cycle = car.cycle_len(ch) as u64;
                for probe in 0..4u64 {
                    let join = seed
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(probe.wrapping_mul(7919))
                        % (2 * cycle);
                    let mut l = BroadcastListener::new(probe, doc.id, StopRule::Complete);
                    let done = drive_clean(&car, ch, &mut l, join, 2 * cycle + 2, |_| false);
                    h.check(done.is_some(), || {
                        format!("broadcast: doc {k} join {join} missed the two-cycle bound")
                    });
                    h.check(l.bytes() == Some(&bodies[k][..]), || {
                        format!("broadcast: doc {k} join {join} reconstructed wrong bytes")
                    });
                }
            }
        }
        BroadcastArm::Outage => {
            let car = Carousel::build(
                &docs,
                &CarouselConfig {
                    channels: 1,
                    skew: Skew::Flat,
                    index_every: 3,
                },
            )
            .expect("valid corpus");
            let cycle = car.cycle_len(0) as u64;
            // A deterministic blackout straddling the first cycle
            // boundary: nothing heard in [cycle−2, cycle+3].
            for (k, doc) in docs.iter().enumerate() {
                let mut l = BroadcastListener::new(k as u64, doc.id, StopRule::Complete);
                let window = |s: u64| s >= cycle - 2 && s <= cycle + 3;
                let done = drive_clean(&car, 0, &mut l, seed % cycle, 6 * cycle, window);
                h.check(done.is_some(), || {
                    format!("broadcast: doc {k} never completed around the boundary outage")
                });
                h.check(l.bytes() == Some(&bodies[k][..]), || {
                    format!("broadcast: doc {k} outage run reconstructed wrong bytes")
                });
            }
            // The stochastic arm: outage-heavy shared air, one tap per
            // listener, generous horizon.
            let mut medium = SharedMedium::new(&FaultConfig::outage_heavy(), seed, docs.len());
            let mut listeners: Vec<BroadcastListener> = docs
                .iter()
                .map(|d| BroadcastListener::new(u64::from(d.id), d.id, StopRule::Complete))
                .collect();
            for slot in 0..24 * cycle {
                if listeners.iter().all(BroadcastListener::is_done) {
                    break;
                }
                let frame = car.frame_at(0, slot).to_vec();
                for (tap, l) in listeners.iter_mut().enumerate() {
                    if !l.is_done() {
                        let delivery = medium.transmit_to(tap, &frame);
                        l.hear(slot, delivery.bytes());
                    }
                }
            }
            h.trace
                .extend((0..docs.len()).flat_map(|t| medium.trace(t).to_vec()));
            for (k, l) in listeners.iter().enumerate() {
                h.check(l.is_done(), || {
                    format!("broadcast: listener {k} starved through outage-heavy air")
                });
                h.check(l.bytes() == Some(&bodies[k][..]), || {
                    format!("broadcast: listener {k} outage-heavy bytes differ")
                });
            }
        }
        BroadcastArm::EarlyStop => {
            let car = Carousel::build(
                &docs,
                &CarouselConfig {
                    channels: 1,
                    skew: Skew::Popularity,
                    index_every: 2,
                },
            )
            .expect("valid corpus");
            let cycle = car.cycle_len(0) as u64;
            for (k, doc) in docs.iter().enumerate() {
                let join = seed.wrapping_mul(31).wrapping_add(k as u64) % cycle;
                let mut early = BroadcastListener::new(0, doc.id, StopRule::Complete);
                let mut full = BroadcastListener::new(1, doc.id, StopRule::AllPackets);
                let early_done = drive_clean(&car, 0, &mut early, join, 8 * cycle, |_| false);
                let full_done = drive_clean(&car, 0, &mut full, join, 8 * cycle, |_| false);
                h.check(early_done.is_some() && full_done.is_some(), || {
                    format!("broadcast: doc {k} early/full listeners did not finish")
                });
                h.check(
                    early.bytes() == Some(&bodies[k][..]) && full.bytes() == Some(&bodies[k][..]),
                    || format!("broadcast: doc {k} early-stop bytes differ from full collection"),
                );
                h.check(early.access_slots() <= full.access_slots(), || {
                    format!(
                        "broadcast: doc {k} early stop ({:?}) slower than all-packets ({:?})",
                        early.access_slots(),
                        full.access_slots()
                    )
                });
            }
        }
        BroadcastArm::Corrupt => {
            let car = Carousel::build(
                &docs,
                &CarouselConfig {
                    channels: 1,
                    skew: Skew::Flat,
                    index_every: 4,
                },
            )
            .expect("valid corpus");
            let cycle = car.cycle_len(0) as u64;
            let taps = 5;
            let mut medium = SharedMedium::new(&FaultConfig::corrupting(0.25), seed, taps);
            let mut listeners: Vec<BroadcastListener> = (0..taps as u64)
                .map(|i| {
                    BroadcastListener::new(
                        i,
                        docs[(i as usize) % docs.len()].id,
                        StopRule::Complete,
                    )
                })
                .collect();
            for slot in 0..24 * cycle {
                if listeners.iter().all(BroadcastListener::is_done) {
                    break;
                }
                let frame = car.frame_at(0, slot).to_vec();
                for (tap, l) in listeners.iter_mut().enumerate() {
                    if !l.is_done() {
                        let delivery = medium.transmit_to(tap, &frame);
                        l.hear(slot, delivery.bytes());
                    }
                }
            }
            h.trace
                .extend((0..taps).flat_map(|t| medium.trace(t).to_vec()));
            let mut rejected = 0u64;
            for (i, l) in listeners.iter().enumerate() {
                let k = i % docs.len();
                h.check(l.is_done(), || {
                    format!("broadcast: listener {i} never completed through corruption")
                });
                h.check(l.bytes() == Some(&bodies[k][..]), || {
                    format!("broadcast: listener {i} accepted corrupted bytes")
                });
                rejected += l.corrupt_frames();
            }
            h.check(rejected > 0, || {
                "broadcast: corrupting air produced zero CRC rejections".to_string()
            });
        }
    }
}

/// Which edge-cache stress the scenario applies.
#[derive(Debug, Clone, Copy)]
enum EdgeArm {
    Rot,
    RoamOutage,
}

/// One base-station cell for the edge scenarios: corpus, cache,
/// gateway, and the scratch directory holding the cache's blobs.
struct EdgeCell {
    dir: std::path::PathBuf,
    store: std::sync::Arc<DocumentStore>,
    edge: std::sync::Arc<EdgeCache>,
    gateway: Gateway,
}

/// A seeded two-document corpus behind a gateway with a disk-backed
/// edge cache, in a scratch directory unique to this run. The
/// directory name is wall-clock-salted so concurrent runs never
/// collide; nothing checked downstream depends on it.
fn edge_cell(tag: &str, seed: u64, docs: usize) -> Result<EdgeCell, String> {
    use std::sync::Arc;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_err(|e| format!("{e}"))?
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("mrtweb-faultrun-{tag}-{seed}-{nanos}"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{e}"))?;
    let store = Arc::new(DocumentStore::new(docs.max(4)));
    for i in 0..docs {
        let generated = SyntheticDocSpec {
            sections: 2,
            subsections_per_section: 2,
            paragraphs_per_subsection: 2,
            target_bytes: 1500 + (i % 3) * 400,
            ..Default::default()
        }
        .generate(seed.wrapping_add(i as u64));
        store.put(format!("http://cell/doc{i}"), generated.document);
    }
    let edge = Arc::new(EdgeCache::new(&dir, 1 << 20).map_err(|e| format!("{e}"))?);
    let gateway = Gateway::new(Arc::clone(&store)).with_edge(Arc::clone(&edge));
    Ok(EdgeCell {
        dir,
        store,
        edge,
        gateway,
    })
}

/// The payload the planner would transmit for `req` — the byte-identity
/// ground truth every edge serve must reconstruct to.
fn edge_expected(store: &DocumentStore, req: &Request) -> Option<Vec<u8>> {
    let doc = store.document(&req.url)?;
    let query = Query::parse(&req.query, store.pipeline());
    let sc = store.structural_characteristic(&req.url, &query)?;
    Some(plan_document(&doc, &sc, req.lod, req.measure).1)
}

/// Reconstructs a document from `server`, returning its payload bytes.
fn edge_reconstruct(server: &LiveServer) -> Option<Vec<u8>> {
    let mut client = LiveClient::new(server.header().clone()).ok()?;
    for f in 0..server.header().n {
        if client.document_bytes().is_some() {
            break;
        }
        if let Some(wire) = server.frame_bytes(f) {
            client.on_wire(wire);
        }
    }
    client.document_bytes().map(<[u8]>::to_vec)
}

/// The edge cache under fault: at-rest blob rot at one cell, and a
/// migration record damaged on the backhaul between two cells. Every
/// failure must be detected (never served), every fallback must
/// re-encode from the store, and every completed reconstruction must
/// stay byte-identical.
#[allow(clippy::too_many_lines)]
fn edge_layer(h: &mut Harness, arm: EdgeArm, seed: u64) {
    let docs = 2usize;
    match arm {
        EdgeArm::Rot => {
            let cell = match edge_cell("rot", seed, docs) {
                Ok(cell) => cell,
                Err(e) => {
                    h.check(false, || format!("edge-rot: cell setup failed: {e}"));
                    return;
                }
            };
            let (dir, store, edge, gateway) = (cell.dir, cell.store, cell.edge, cell.gateway);
            for i in 0..docs {
                let req = Request {
                    url: format!("http://cell/doc{i}"),
                    query: String::new(),
                    lod: Lod::Paragraph,
                    measure: Measure::Ic,
                    packet_size: 64,
                    gamma: 1.5,
                };
                let Some(expected) = edge_expected(&store, &req) else {
                    h.check(false, || format!("edge-rot: doc {i} has no plan"));
                    continue;
                };
                // Admit via the miss path, then prove the repeat hits.
                let first = gateway.prepare_edge(&req);
                let repeat = gateway.prepare_edge(&req);
                if let (Ok((_, hit0)), Ok((_, hit1))) = (&first, &repeat) {
                    h.check(!hit0, || {
                        format!("edge-rot: doc {i} first request served from an empty cache")
                    });
                    h.check(*hit1, || {
                        format!("edge-rot: doc {i} repeat request missed a warm cache")
                    });
                } else {
                    h.check(false, || format!("edge-rot: doc {i} prepare failed"));
                    continue;
                }

                // Rot the blob at rest: truncation (structural damage)
                // for even documents, whole-file garble (every byte
                // corrupted, CRC stress) for odd ones.
                let key = EdgeKey::of(&req);
                let path = edge.blob_path(&key);
                let damaged = std::fs::read(&path).map(|mut bytes| {
                    if i % 2 == 0 {
                        bytes.truncate(bytes.len() / 2);
                    } else {
                        for (j, b) in bytes.iter_mut().enumerate() {
                            *b ^= (seed as u8).wrapping_add(j as u8) | 1;
                        }
                    }
                    std::fs::write(&path, &bytes)
                });
                h.check(matches!(damaged, Ok(Ok(()))), || {
                    format!("edge-rot: doc {i} could not damage blob on disk")
                });
                // Force the next serve through the rotted file.
                edge.flush_resident();

                // Invariant 2: the rot is detected, never served. The
                // unservable entry is reported evicted so the gateway's
                // prepared-transmission sync drops any stale handle.
                h.check(edge.serve(&key).is_none(), || {
                    format!("edge-rot: doc {i} served a rotted blob")
                });

                // Fallback: the next request re-encodes from the store
                // and re-admits; the one after hits the refreshed entry.
                // Both reconstruct byte-identically (invariant 1).
                for (label, want_hit) in [("re-encode", false), ("refreshed hit", true)] {
                    match gateway.prepare_edge(&req) {
                        Ok((server, hit)) => {
                            h.check(hit == want_hit, || {
                                format!(
                                    "edge-rot: doc {i} {label} expected hit={want_hit}, got {hit}"
                                )
                            });
                            h.check(
                                edge_reconstruct(&server).as_deref() == Some(&expected[..]),
                                || {
                                    format!(
                                        "edge-rot: doc {i} {label} reconstruction not byte-identical"
                                    )
                                },
                            );
                        }
                        Err(e) => h.check(false, || {
                            format!("edge-rot: doc {i} {label} prepare failed: {e}")
                        }),
                    }
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        EdgeArm::RoamOutage => {
            // Two cells; unlike the clean roam driver, cell B also holds
            // the corpus, because the backhaul outage forces it to fall
            // back to its own store when the migration record is lost.
            let cell_a = match edge_cell("roam-a", seed, docs) {
                Ok(cell) => cell,
                Err(e) => {
                    h.check(false, || {
                        format!("edge-roam-outage: cell A setup failed: {e}")
                    });
                    return;
                }
            };
            let cell_b = match edge_cell("roam-b", seed, docs) {
                Ok(cell) => cell,
                Err(e) => {
                    h.check(false, || {
                        format!("edge-roam-outage: cell B setup failed: {e}")
                    });
                    let _ = std::fs::remove_dir_all(&cell_a.dir);
                    return;
                }
            };
            let (dir_a, store_a, edge_a, gateway_a) =
                (cell_a.dir, cell_a.store, cell_a.edge, cell_a.gateway);
            let (dir_b, edge_b, gateway_b) = (cell_b.dir, cell_b.edge, cell_b.gateway);
            for i in 0..docs {
                let req = Request {
                    url: format!("http://cell/doc{i}"),
                    query: String::new(),
                    lod: Lod::Paragraph,
                    measure: Measure::Ic,
                    packet_size: 64,
                    gamma: 1.5,
                };
                let Some(expected) = edge_expected(&store_a, &req) else {
                    h.check(false, || format!("edge-roam-outage: doc {i} has no plan"));
                    continue;
                };
                // Start the transfer at cell A and bank half the frames.
                let Ok((server_a, _)) = gateway_a.prepare_edge(&req) else {
                    h.check(false, || {
                        format!("edge-roam-outage: doc {i} prepare at cell A failed")
                    });
                    continue;
                };
                let m = server_a.header().m;
                let held = (m / 2).clamp(1, m.saturating_sub(1).max(1));
                let Ok(mut client) = LiveClient::new(server_a.header().clone()) else {
                    h.check(false, || {
                        format!("edge-roam-outage: doc {i} client construction failed")
                    });
                    continue;
                };
                for f in 0..held {
                    if let Some(wire) = server_a.frame_bytes(f) {
                        client.on_wire(wire);
                    }
                }

                // The migration record is damaged in backhaul transit:
                // a seed-picked byte flip. CRC framing must reject it —
                // cleanly, never by panicking (invariant 2).
                let key = EdgeKey::of(&req);
                let Some((header, blob)) = edge_a.export_blob(&key) else {
                    h.check(false, || {
                        format!("edge-roam-outage: doc {i} never admitted at cell A")
                    });
                    continue;
                };
                let record = encode_record(&MigrationRecord { key, header, blob });
                h.check(decode_record(&record).is_ok(), || {
                    format!("edge-roam-outage: doc {i} pristine record failed to decode")
                });
                let mut corrupted = record.clone();
                let pos =
                    (seed as usize).wrapping_mul(2_654_435_761).wrapping_add(i) % corrupted.len();
                corrupted[pos] ^= 0xFF;
                h.check(decode_record(&corrupted).is_err(), || {
                    format!("edge-roam-outage: doc {i} record with byte {pos} flipped decoded")
                });
                // Hostile truncations and growth must also fail cleanly.
                for cut in [0, 1, 7, record.len() / 2, record.len() - 1] {
                    h.check(decode_record(&record[..cut]).is_err(), || {
                        format!("edge-roam-outage: doc {i} record truncated to {cut} decoded")
                    });
                }
                let mut grown = record.clone();
                grown.extend_from_slice(&[(seed & 0xFF) as u8; 5]);
                h.check(decode_record(&grown).is_err(), || {
                    format!("edge-roam-outage: doc {i} record with trailing garbage decoded")
                });

                // The record is lost, so nothing was admitted at cell B:
                // the resume falls back to exactly one re-encode from
                // B's own store, and only missing packets cross the new
                // wireless hop.
                h.check(edge_b.serve(&EdgeKey::of(&req)).is_none(), || {
                    format!("edge-roam-outage: doc {i} appeared at cell B without a migration")
                });
                let Ok((server_b, hit_b)) = gateway_b.prepare_edge(&req) else {
                    h.check(false, || {
                        format!("edge-roam-outage: doc {i} fallback prepare at cell B failed")
                    });
                    continue;
                };
                h.check(!hit_b, || {
                    format!("edge-roam-outage: doc {i} cell B claimed a hit on an empty cache")
                });
                let missing = client.state().missing();
                let mut new_hop_frames = 0usize;
                for idx in missing {
                    if client.document_bytes().is_some() {
                        break;
                    }
                    let Some(wire) = server_b.frame_bytes(idx) else {
                        continue;
                    };
                    client.on_wire(wire);
                    new_hop_frames += 1;
                }
                // Invariant 1: the resume completes byte-identically,
                // and the banked cell-A packets kept their value.
                h.check(client.document_bytes() == Some(&expected[..]), || {
                    format!("edge-roam-outage: doc {i} fallback resume not byte-identical")
                });
                h.check(new_hop_frames < m, || {
                    format!(
                        "edge-roam-outage: doc {i} pushed {new_hop_frames} frames for M={m} — \
                         the roam bought nothing"
                    )
                });
            }
            let _ = std::fs::remove_dir_all(&dir_a);
            let _ = std::fs::remove_dir_all(&dir_b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes_smoke_seeds() {
        for (name, _) in SCENARIOS {
            for seed in [1u64, 2, 3] {
                let r = run_scenario(name, seed).unwrap();
                assert!(
                    r.passed(),
                    "scenario {name} seed {seed} failed:\n{}",
                    r.render()
                );
                assert!(r.checks > 0, "scenario {name} performed no checks");
            }
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let a = run_scenario("mixed", 7).unwrap();
        let b = run_scenario("mixed", 7).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(run_scenario("nope", 1).is_err());
    }

    #[test]
    fn faulted_scenarios_capture_an_observability_timeline() {
        let r = run_scenario("mixed", 1).unwrap();
        assert!(
            r.timeline
                .events
                .iter()
                .any(|e| e.kind == mrtweb_obs::EventKind::FaultInjected),
            "mixed scenario timeline has no fault-injected events ({} total)",
            r.timeline.events.len()
        );
        assert!(
            r.timeline
                .events
                .iter()
                .any(|e| e.kind == mrtweb_obs::EventKind::RoundSpan),
            "mixed scenario timeline has no round spans"
        );
        // Causal order: timestamps never run backwards.
        assert!(r.timeline.events.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn faulted_scenarios_log_nonempty_traces() {
        for name in ["bernoulli", "mixed", "garble", "arq-storm"] {
            let r = run_scenario(name, 1).unwrap();
            assert!(!r.trace.is_empty(), "{name} logged no fault events");
        }
    }
}
