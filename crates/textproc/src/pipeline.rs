//! The pipelined structural-characteristic generator.
//!
//! Runs the paper's five modules in order — recognize, lemmatize,
//! filter, extract, index — producing the [`DocumentIndex`] from which
//! information contents are derived.

use mrtweb_docmodel::document::Document;

use crate::index::{DocumentIndex, UnitEntry};
use crate::keywords::{KeywordPolicy, StemStats};
use crate::lemmatizer::stem;
use crate::recognizer::{recognize, RecognizedUnit};
use crate::stopwords::StopWords;

/// Configuration for the SC-generation pipeline.
///
/// The default configuration stems with Porter, filters the classic
/// stop-word list, and admits every surviving stem as a keyword
/// (emphasized words always qualify).
///
/// # Example
///
/// ```
/// use mrtweb_docmodel::document::Document;
/// use mrtweb_textproc::pipeline::ScPipeline;
/// use mrtweb_textproc::keywords::KeywordPolicy;
/// use mrtweb_textproc::stopwords::StopWords;
///
/// # fn main() -> Result<(), mrtweb_docmodel::xml::ParseError> {
/// let doc = Document::parse_xml(
///     "<document><paragraph>webs web webbing</paragraph></document>")?;
/// let index = ScPipeline::new()
///     .with_stop_words(StopWords::none())
///     .with_policy(KeywordPolicy { min_frequency: 1, always_admit_emphasized: true })
///     .run(&doc);
/// assert_eq!(index.total_count("web"), 3); // all three forms share a stem
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScPipeline {
    stop_words: StopWords,
    policy: KeywordPolicy,
    stemming: bool,
}

impl ScPipeline {
    /// Creates the default pipeline.
    pub fn new() -> Self {
        ScPipeline {
            stop_words: StopWords::default(),
            policy: KeywordPolicy::default(),
            stemming: true,
        }
    }

    /// Replaces the stop-word filter.
    pub fn with_stop_words(mut self, stop_words: StopWords) -> Self {
        self.stop_words = stop_words;
        self
    }

    /// Replaces the keyword admission policy.
    pub fn with_policy(mut self, policy: KeywordPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables lemmatization (useful for ablations).
    pub fn with_stemming(mut self, stemming: bool) -> Self {
        self.stemming = stemming;
        self
    }

    /// Normalizes one query or document word through the same
    /// lemmatize-and-filter stages the pipeline applies, so queries and
    /// documents meet in the same stem space. Returns `None` for stop
    /// words.
    pub fn normalize_word(&self, word: &str) -> Option<String> {
        let lower = word.to_lowercase();
        if self.stop_words.is_stop_word(&lower) {
            return None;
        }
        let stemmed = if self.stemming { stem(&lower) } else { lower };
        if stemmed.is_empty() {
            None
        } else {
            Some(stemmed)
        }
    }

    /// Runs the full pipeline on a document.
    pub fn run(&self, doc: &Document) -> DocumentIndex {
        let recognized = recognize(doc);
        self.run_recognized(&recognized)
    }

    /// Runs the lemmatize/filter/extract/index stages on pre-recognized
    /// units (exposed so callers can reuse recognition output).
    pub fn run_recognized(&self, recognized: &[RecognizedUnit]) -> DocumentIndex {
        // Stage 2+3 (lemmatize, filter) and document-wide stats for the
        // keyword extractor.
        let mut stats = StemStats::new();
        let mut per_unit: Vec<Vec<(String, bool)>> = Vec::with_capacity(recognized.len());
        for ru in recognized {
            let mut stems = Vec::with_capacity(ru.tokens.len());
            for tok in &ru.tokens {
                if self.stop_words.is_stop_word(&tok.word) {
                    continue;
                }
                let s = if self.stemming {
                    stem(&tok.word)
                } else {
                    tok.word.clone()
                };
                if s.is_empty() {
                    continue;
                }
                stats.record(&s, tok.emphasized);
                stems.push((s, tok.emphasized));
            }
            per_unit.push(stems);
        }

        // Stage 4: keyword extraction (frequency analysis + emphasis).
        let admitted = stats.admit(&self.policy);

        // Stage 5: per-unit logical index.
        let entries: Vec<UnitEntry> = recognized
            .iter()
            .zip(per_unit)
            .map(|(ru, stems)| {
                let mut counts = std::collections::BTreeMap::new();
                for (s, _) in stems {
                    if admitted.contains(&s) {
                        *counts.entry(s).or_insert(0u64) += 1;
                    }
                }
                UnitEntry {
                    path: ru.path.clone(),
                    kind: ru.kind,
                    synthetic: ru.synthetic,
                    title: ru.title.clone(),
                    counts,
                    own_bytes: ru.own_bytes,
                }
            })
            .collect();
        DocumentIndex::new(entries)
    }
}

impl Default for ScPipeline {
    fn default() -> Self {
        ScPipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::lod::Lod;

    fn doc(xml: &str) -> Document {
        Document::parse_xml(xml).unwrap()
    }

    #[test]
    fn stems_unify_morphological_variants() {
        let d = doc("<document><paragraph>browse browsing browses browsed</paragraph></document>");
        let idx = ScPipeline::new().run(&d);
        // "browse/browses/browsed" stem to "brows" like "browsing".
        assert_eq!(idx.total_count("brows"), 4);
    }

    #[test]
    fn stop_words_never_indexed() {
        let d = doc("<document><paragraph>the of and mobile</paragraph></document>");
        let idx = ScPipeline::new().run(&d);
        assert_eq!(idx.distinct_keywords(), 1);
        assert_eq!(idx.total_count("mobil"), 1);
    }

    #[test]
    fn counts_attach_to_owning_unit() {
        let d = doc("<document><section><title>alpha</title>\
             <subsection><paragraph>beta beta</paragraph></subsection>\
             </section></document>");
        let idx = ScPipeline::new().run(&d);
        let para = idx
            .entries()
            .iter()
            .find(|e| e.kind == Lod::Paragraph)
            .unwrap();
        assert_eq!(para.count("beta"), 2);
        assert_eq!(para.count("alpha"), 0, "title belongs to the section");
        let section = idx
            .entries()
            .iter()
            .find(|e| e.kind == Lod::Section)
            .unwrap();
        assert_eq!(section.count("alpha"), 1);
    }

    #[test]
    fn frequency_policy_drops_rare_words() {
        let d = doc("<document><paragraph>common common rare</paragraph></document>");
        let idx = ScPipeline::new()
            .with_policy(KeywordPolicy {
                min_frequency: 2,
                always_admit_emphasized: false,
            })
            .run(&d);
        assert_eq!(idx.total_count("common"), 2);
        assert_eq!(idx.total_count("rare"), 0);
    }

    #[test]
    fn emphasized_rare_words_survive_strict_policy() {
        let d = doc("<document><paragraph>common common <b>special</b></paragraph></document>");
        let idx = ScPipeline::new()
            .with_policy(KeywordPolicy {
                min_frequency: 2,
                always_admit_emphasized: true,
            })
            .run(&d);
        assert_eq!(idx.total_count("special"), 1);
    }

    #[test]
    fn stemming_can_be_disabled() {
        let d = doc("<document><paragraph>browsing browses</paragraph></document>");
        let idx = ScPipeline::new().with_stemming(false).run(&d);
        assert_eq!(idx.total_count("browsing"), 1);
        assert_eq!(idx.total_count("browses"), 1);
        assert_eq!(idx.total_count("brows"), 0);
    }

    #[test]
    fn normalize_word_matches_pipeline_space() {
        let p = ScPipeline::new();
        assert_eq!(p.normalize_word("Browsing"), Some("brows".to_owned()));
        assert_eq!(p.normalize_word("the"), None);
        let d = doc("<document><paragraph>browsing</paragraph></document>");
        let idx = p.run(&d);
        assert_eq!(idx.total_count(&p.normalize_word("browses").unwrap()), 1);
    }

    #[test]
    fn empty_document_yields_empty_index() {
        let d = doc("<document></document>");
        let idx = ScPipeline::new().run(&d);
        assert_eq!(idx.distinct_keywords(), 0);
        assert_eq!(idx.entries().len(), 1);
    }
}
