//! The lemmatizer: words → canonical stems.
//!
//! "The lemmatizer converts document words into their lemmatized form"
//! (§3.3). This is a faithful implementation of the Porter stemming
//! algorithm (M.F. Porter, *An algorithm for suffix stripping*, 1980),
//! the standard lemmatization stand-in of classical IR systems like the
//! ones the paper builds on.
//!
//! # Example
//!
//! ```
//! use mrtweb_textproc::lemmatizer::stem;
//!
//! assert_eq!(stem("browsing"), "brows");
//! assert_eq!(stem("browsers"), "browser");
//! assert_eq!(stem("connections"), "connect");
//! assert_eq!(stem("relational"), "relat");
//! ```

/// Stems a single word.
///
/// The input is lowercased first. Possessive `'s` is stripped and any
/// remaining apostrophes removed before stemming. Words shorter than
/// three letters, or containing characters outside `a`–`z` after
/// cleanup, are returned unchanged (lowercased) — stemming rules only
/// make sense for plain English words.
pub fn stem(word: &str) -> String {
    let mut w = word.to_lowercase();
    if w.ends_with("'s") {
        w.truncate(w.len() - 2);
    }
    w.retain(|c| c != '\'');
    if w.len() <= 2 || !w.bytes().all(|b| b.is_ascii_lowercase()) {
        return w;
    }
    let mut s = Stemmer {
        b: w.into_bytes(),
        k: 0,
        j: 0,
    };
    s.k = s.b.len() - 1;
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    s.b.truncate(s.k + 1);
    // The input was verified all-ASCII-lowercase above and the stemmer
    // only truncates, so this never takes the lossy path.
    match String::from_utf8(s.b) {
        Ok(stemmed) => stemmed,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    }
}

/// Porter stemmer state: `b[0..=k]` is the word, `j` is the stem
/// *length* (bytes before the most recently matched suffix).
struct Stemmer {
    b: Vec<u8>,
    k: usize,
    j: usize,
}

impl Stemmer {
    /// Is `b[i]` a consonant?
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Number of consonant–vowel sequences ("measure") in `b[0..j]`.
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip the initial consonant run.
        loop {
            if i >= self.j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            // Skip vowels.
            loop {
                if i >= self.j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            // Skip consonants.
            loop {
                if i >= self.j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Is there a vowel in `b[0..j]`?
    fn vowel_in_stem(&self) -> bool {
        (0..self.j).any(|i| !self.cons(i))
    }

    /// Is `b[i-1..=i]` a double consonant?
    fn doublec(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// Is `b[i-2..=i]` consonant–vowel–consonant, with the final
    /// consonant not `w`, `x` or `y`? (Restores an `e` after e.g.
    /// `hop(p)` → `hope` is *not* wanted, but `fil` → `file` is.)
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// Does the word end with `s`? Sets `j` on success.
    fn ends(&mut self, s: &[u8]) -> bool {
        if s.len() > self.k + 1 {
            return false;
        }
        if &self.b[self.k + 1 - s.len()..=self.k] != s {
            return false;
        }
        self.j = self.k + 1 - s.len();
        true
    }

    /// Replaces the suffix after the stem with `s`.
    fn set_to(&mut self, s: &[u8]) {
        self.b.truncate(self.j);
        self.b.extend_from_slice(s);
        self.k = self.b.len() - 1;
    }

    /// `set_to(s)` if the stem measure is positive.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.set_to(s);
        }
    }

    /// Plurals and -ed / -ing.
    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.set_to(b"i");
            } else if self.k >= 1 && self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.k = self.j - 1; // stem nonempty: it contains a vowel
            self.b.truncate(self.k + 1);
            if self.ends(b"at") {
                self.set_to(b"ate");
            } else if self.ends(b"bl") {
                self.set_to(b"ble");
            } else if self.ends(b"iz") {
                self.set_to(b"ize");
            } else if self.doublec(self.k) {
                self.k -= 1;
                self.b.truncate(self.k + 1);
                if matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k += 1;
                    self.b.push(self.b[self.k - 1]);
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.j = self.k + 1;
                self.set_to(b"e");
            }
        }
        self.b.truncate(self.k + 1);
    }

    /// Turns terminal `y` into `i` when there is another vowel.
    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    /// Double suffixes → single ones, when the measure is positive.
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        let rules: &[(&[u8], &[u8])] = match self.b[self.k - 1] {
            b'a' => &[(b"ational", b"ate"), (b"tional", b"tion")],
            b'c' => &[(b"enci", b"ence"), (b"anci", b"ance")],
            b'e' => &[(b"izer", b"ize")],
            b'l' => &[
                (b"bli", b"ble"),
                (b"alli", b"al"),
                (b"entli", b"ent"),
                (b"eli", b"e"),
                (b"ousli", b"ous"),
            ],
            b'o' => &[(b"ization", b"ize"), (b"ation", b"ate"), (b"ator", b"ate")],
            b's' => &[
                (b"alism", b"al"),
                (b"iveness", b"ive"),
                (b"fulness", b"ful"),
                (b"ousness", b"ous"),
            ],
            b't' => &[(b"aliti", b"al"), (b"iviti", b"ive"), (b"biliti", b"ble")],
            b'g' => &[(b"logi", b"log")],
            _ => return,
        };
        for (suffix, replacement) in rules {
            if self.ends(suffix) {
                self.r(replacement);
                return;
            }
        }
    }

    /// -ic-, -full, -ness and similar.
    fn step3(&mut self) {
        let rules: &[(&[u8], &[u8])] = match self.b[self.k] {
            b'e' => &[(b"icate", b"ic"), (b"ative", b""), (b"alize", b"al")],
            b'i' => &[(b"iciti", b"ic")],
            b'l' => &[(b"ical", b"ic"), (b"ful", b"")],
            b's' => &[(b"ness", b"")],
            _ => return,
        };
        for (suffix, replacement) in rules {
            if self.ends(suffix) {
                self.r(replacement);
                return;
            }
        }
    }

    /// Strips -ant, -ence etc. in context `m() > 1`.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j > 0 && matches!(self.b[self.j - 1], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j - 1; // m() > 1 implies a nonempty stem
            self.b.truncate(self.k + 1);
        }
    }

    /// Removes a final `e` and reduces `ll` in long words.
    fn step5(&mut self) {
        self.j = self.k + 1;
        if self.b[self.k] == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        self.b.truncate(self.k + 1);
        self.j = self.k + 1;
        if self.b[self.k] == b'l' && self.doublec(self.k) && self.m() > 1 {
            self.k -= 1;
        }
        self.b.truncate(self.k + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's published vocabulary.
    #[test]
    fn porter_reference_pairs() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            // Step 1b gives "agree"; step 5a then drops the final e.
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valency", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formality", "formal"),
            ("sensitivity", "sensit"),
            ("sensibility", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electricity", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angularity", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn related_forms_share_a_stem() {
        assert_eq!(stem("connect"), stem("connection"));
        assert_eq!(stem("connect"), stem("connections"));
        assert_eq!(stem("connect"), stem("connected"));
        assert_eq!(stem("connect"), stem("connecting"));
        assert_eq!(stem("transmission"), stem("transmissions"));
        assert_eq!(stem("browse"), stem("browses"));
        assert_eq!(stem("browsing"), stem("browsings"));
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("a"), "a");
    }

    #[test]
    fn case_is_normalized() {
        assert_eq!(stem("Browsing"), stem("browsing"));
        assert_eq!(stem("MOBILE"), stem("mobile"));
    }

    #[test]
    fn possessives_are_stripped() {
        assert_eq!(stem("client's"), stem("client"));
        assert_eq!(stem("don't"), "dont");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(stem("naïve"), "naïve");
        assert_eq!(stem("漢字"), "漢字");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in [
            "mobile",
            "wireless",
            "bandwidth",
            "document",
            "paragraph",
            "transmission",
        ] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stem not idempotent on {w:?}");
        }
    }
}
