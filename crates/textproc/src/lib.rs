//! Text processing for structural-characteristic generation.
//!
//! The paper (§3.3) pre-processes a document through five pipelined
//! modules to build the keyword-based logical index from which
//! information contents are derived:
//!
//! 1. **document recognizer** ([`recognizer`]) — converts a structured
//!    document into per-unit plain text, keeping track of the
//!    hierarchical structure and specially formatted words;
//! 2. **lemmatizer** ([`lemmatizer`]) — reduces words to canonical
//!    stems (a faithful Porter stemmer);
//! 3. **word filter** ([`stopwords`]) — eliminates non-meaning-bearing
//!    "stop" words;
//! 4. **keyword extractor** ([`keywords`]) — frequency analysis plus
//!    automatic keyword status for specially formatted words;
//! 5. **structural characteristic generator** ([`pipeline`]) — emits the
//!    per-unit keyword occurrence index ([`index::DocumentIndex`]) that
//!    the `mrtweb-content` crate turns into information contents.
//!
//! # Example
//!
//! ```
//! use mrtweb_docmodel::document::Document;
//! use mrtweb_textproc::pipeline::ScPipeline;
//!
//! # fn main() -> Result<(), mrtweb_docmodel::xml::ParseError> {
//! let doc = Document::parse_xml(
//!     "<document><section><title>Mobile Browsing</title>\
//!      <paragraph>Browsing the mobile web consumes bandwidth. \
//!      Mobile clients browse documents.</paragraph></section></document>",
//! )?;
//! let index = ScPipeline::default().run(&doc);
//! // "mobile" appears three times (title + body); its Porter stem is "mobil".
//! assert_eq!(index.total_count("mobil"), 3);
//! // "the" is a stop word and never becomes a keyword.
//! assert_eq!(index.total_count("the"), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod index;
pub mod keywords;
pub mod lemmatizer;
pub mod pipeline;
pub mod recognizer;
pub mod stopwords;
pub mod summary;
