//! The document recognizer: structured document → per-unit word stream.
//!
//! "The document recognizer converts an XML document into a plain text
//! document, taking consideration of formatting information including
//! the hierarchical document structure and those specially formatted
//! words" (§3.3). Here that means walking the unit tree and emitting,
//! for every organizational unit, the sequence of raw word tokens the
//! unit *itself* contains (titles included), each tagged with whether it
//! was specially formatted.

use mrtweb_docmodel::document::Document;
use mrtweb_docmodel::lod::Lod;
use mrtweb_docmodel::unit::{Unit, UnitPath};

/// A raw word token before lemmatization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawToken {
    /// The lowercased word.
    pub word: String,
    /// Whether the word was specially formatted (bold/italic) or part of
    /// a title — the signals that later grant automatic keyword status.
    pub emphasized: bool,
}

/// The recognized text of one organizational unit (own text only;
/// descendant units appear as their own entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognizedUnit {
    /// Path from the document root.
    pub path: UnitPath,
    /// The unit's level of detail.
    pub kind: Lod,
    /// Whether the unit is a normalization artifact.
    pub synthetic: bool,
    /// The unit's title, verbatim.
    pub title: Option<String>,
    /// Raw tokens of the unit's own title and text runs.
    pub tokens: Vec<RawToken>,
    /// The unit's own content bytes (title + runs, not descendants).
    pub own_bytes: usize,
}

/// Splits text into lowercase word tokens.
///
/// Tokens are maximal runs of alphanumeric characters (plus internal
/// apostrophes, so `don't` stays one token); tokens without any
/// alphabetic character (pure numbers, stray punctuation) are dropped,
/// matching classical IR practice.
///
/// # Example
///
/// ```
/// use mrtweb_textproc::recognizer::tokenize;
///
/// let words: Vec<String> = tokenize("It's 42 degrees -- browse ON!")
///     .map(|t| t.to_string())
///     .collect();
/// assert_eq!(words, ["it's", "degrees", "browse", "on"]);
/// ```
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !(c.is_alphanumeric() || c == '\''))
        .map(|t| t.trim_matches('\''))
        .filter(|t| !t.is_empty() && t.chars().any(char::is_alphabetic))
        .map(str::to_lowercase)
}

/// Recognizes a whole document: one [`RecognizedUnit`] per
/// organizational unit, in preorder.
pub fn recognize(doc: &Document) -> Vec<RecognizedUnit> {
    let mut out = Vec::new();
    doc.root().walk(&mut UnitPath::root(), &mut |path, unit| {
        out.push(recognize_unit(path.clone(), unit));
    });
    out
}

fn recognize_unit(path: UnitPath, unit: &Unit) -> RecognizedUnit {
    let mut tokens = Vec::new();
    if let Some(title) = unit.title() {
        // Title words are specially formatted by construction.
        for word in tokenize(title) {
            tokens.push(RawToken {
                word,
                emphasized: true,
            });
        }
    }
    for run in unit.runs() {
        for word in tokenize(&run.text) {
            tokens.push(RawToken {
                word,
                emphasized: run.emphasized,
            });
        }
    }
    let own_bytes =
        unit.title().map_or(0, str::len) + unit.runs().iter().map(|r| r.text.len()).sum::<usize>();
    RecognizedUnit {
        path,
        kind: unit.kind(),
        synthetic: unit.is_synthetic(),
        title: unit.title().map(str::to_owned),
        tokens,
        own_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::document::Document;

    fn doc() -> Document {
        Document::parse_xml(
            "<document><title>Top Title</title>\
             <section><title>Sec</title>\
             <paragraph>Plain words and <b>Bold Words</b> here.</paragraph>\
             </section></document>",
        )
        .unwrap()
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        let toks: Vec<String> = tokenize("Hello, World! foo-bar baz_qux").collect();
        assert_eq!(toks, ["hello", "world", "foo", "bar", "baz", "qux"]);
    }

    #[test]
    fn tokenize_keeps_internal_apostrophes() {
        let toks: Vec<String> = tokenize("don't 'quoted' o'clock").collect();
        assert_eq!(toks, ["don't", "quoted", "o'clock"]);
    }

    #[test]
    fn tokenize_drops_pure_numbers() {
        let toks: Vec<String> = tokenize("10 x86 2024 word").collect();
        assert_eq!(toks, ["x86", "word"]);
    }

    #[test]
    fn recognize_walks_all_units_preorder() {
        let units = recognize(&doc());
        // document, section, paragraph (normalization adds no synthetic
        // wrapper here because the section has only paragraphs... it
        // does: sections must contain subsections).
        let kinds: Vec<Lod> = units.iter().map(|u| u.kind).collect();
        assert_eq!(kinds[0], Lod::Document);
        assert!(kinds.contains(&Lod::Paragraph));
    }

    #[test]
    fn title_words_are_emphasized() {
        let units = recognize(&doc());
        let root = &units[0];
        assert_eq!(root.tokens.len(), 2);
        assert!(root.tokens.iter().all(|t| t.emphasized));
        assert_eq!(root.tokens[0].word, "top");
    }

    #[test]
    fn bold_runs_are_emphasized_plain_are_not() {
        let units = recognize(&doc());
        let para = units.iter().find(|u| u.kind == Lod::Paragraph).unwrap();
        let bold: Vec<_> = para
            .tokens
            .iter()
            .filter(|t| t.emphasized)
            .map(|t| t.word.as_str())
            .collect();
        let plain: Vec<_> = para
            .tokens
            .iter()
            .filter(|t| !t.emphasized)
            .map(|t| t.word.as_str())
            .collect();
        assert_eq!(bold, ["bold", "words"]);
        assert_eq!(plain, ["plain", "words", "and", "here"]);
    }

    #[test]
    fn own_bytes_excludes_descendants() {
        let units = recognize(&doc());
        let root = &units[0];
        assert_eq!(root.own_bytes, "Top Title".len());
    }

    #[test]
    fn synthetic_units_are_flagged() {
        let units = recognize(&doc());
        assert!(
            units.iter().any(|u| u.synthetic),
            "normalization should add a virtual unit"
        );
    }
}
