//! Lead-in-sentence summarization — the baseline the paper critiques.
//!
//! Related work (§2): "other researchers have worked on generating
//! summarized information of a web document and presenting the summary
//! before retrieving the whole document … Lead-in sentences are often
//! recognized as a good summary of a paragraph. … However, the whole
//! document is often not a refinement of the summary, thus consuming
//! additional bandwidth when a relevant document is later retrieved."
//!
//! [`lead_in_summary`] implements that classic baseline (first sentence
//! of each paragraph, budgeted), so the simulator can quantify the
//! double-transmission penalty the paper uses to motivate
//! multi-resolution transmission.

use mrtweb_docmodel::document::Document;
use mrtweb_docmodel::lod::Lod;

/// Splits text into sentences on `.`, `!`, `?` boundaries followed by
/// whitespace or end of text. Abbreviation handling is deliberately
/// simple — the 1990s summarizers the paper cites were no smarter.
pub fn split_sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        if matches!(bytes[i], b'.' | b'!' | b'?') {
            let end = i + 1;
            let at_boundary = end >= bytes.len() || bytes[end].is_ascii_whitespace();
            if at_boundary {
                let s = text[start..end].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = end;
            }
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// A generated summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// The selected lead-in sentences, in document order.
    pub sentences: Vec<String>,
}

impl Summary {
    /// Total bytes of the summary text (space-joined).
    pub fn len_bytes(&self) -> usize {
        if self.sentences.is_empty() {
            0
        } else {
            self.sentences.iter().map(String::len).sum::<usize>() + self.sentences.len() - 1
        }
    }

    /// The summary as one string.
    pub fn text(&self) -> String {
        self.sentences.join(" ")
    }
}

/// Builds a lead-in summary: the first sentence of each paragraph, in
/// document order, until `budget_bytes` is exhausted (at least one
/// sentence is always taken from a nonempty document).
///
/// # Example
///
/// ```
/// use mrtweb_docmodel::document::Document;
/// use mrtweb_textproc::summary::lead_in_summary;
///
/// # fn main() -> Result<(), mrtweb_docmodel::xml::ParseError> {
/// let doc = Document::parse_xml(
///     "<document><section>\
///      <paragraph>Mobile links are lossy. They also fade.</paragraph>\
///      <paragraph>Caching helps a lot. Really.</paragraph>\
///      </section></document>")?;
/// let s = lead_in_summary(&doc, 1000);
/// assert_eq!(s.sentences, vec!["Mobile links are lossy.", "Caching helps a lot."]);
/// # Ok(())
/// # }
/// ```
pub fn lead_in_summary(doc: &Document, budget_bytes: usize) -> Summary {
    let mut sentences = Vec::new();
    let mut used = 0usize;
    for para in doc.units_at(Lod::Paragraph) {
        let text = para.unit.own_text();
        if let Some(first) = split_sentences(&text).first() {
            let cost = first.len() + 1;
            if !sentences.is_empty() && used + cost > budget_bytes {
                break;
            }
            used += cost;
            sentences.push((*first).to_owned());
        }
    }
    Summary { sentences }
}

/// The *summary-then-document* transfer cost model the paper argues
/// against: the summary is always transmitted; if the document turns
/// out relevant, the **whole** document is transmitted afterwards
/// because "the whole document is often not a refinement of the
/// summary". Returns `(bytes_if_relevant, bytes_if_irrelevant)`.
pub fn summary_baseline_bytes(doc_bytes: usize, summary_bytes: usize) -> (usize, usize) {
    (summary_bytes + doc_bytes, summary_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_splitting_basics() {
        assert_eq!(
            split_sentences("One. Two! Three? Four"),
            vec!["One.", "Two!", "Three?", "Four"]
        );
        assert_eq!(split_sentences(""), Vec::<&str>::new());
        assert_eq!(split_sentences("No terminator"), vec!["No terminator"]);
    }

    #[test]
    fn dots_inside_tokens_do_not_split() {
        assert_eq!(
            split_sentences("Version 1.5 shipped. Next."),
            vec!["Version 1.5 shipped.", "Next."]
        );
    }

    fn doc() -> Document {
        Document::parse_xml(
            "<document><section>\
             <paragraph>Alpha sentence one. Alpha two.</paragraph>\
             <paragraph>Beta sentence one. Beta two.</paragraph>\
             <paragraph>Gamma sentence one. Gamma two.</paragraph>\
             </section></document>",
        )
        .unwrap()
    }

    #[test]
    fn takes_first_sentence_of_each_paragraph() {
        let s = lead_in_summary(&doc(), 10_000);
        assert_eq!(
            s.sentences,
            vec![
                "Alpha sentence one.",
                "Beta sentence one.",
                "Gamma sentence one."
            ]
        );
        assert!(s.text().starts_with("Alpha"));
    }

    #[test]
    fn budget_truncates_but_keeps_first() {
        let s = lead_in_summary(&doc(), 25);
        assert_eq!(s.sentences.len(), 1);
        // Even with an absurd budget of 1 byte, one sentence survives.
        let s = lead_in_summary(&doc(), 1);
        assert_eq!(s.sentences.len(), 1);
    }

    #[test]
    fn len_bytes_matches_text() {
        let s = lead_in_summary(&doc(), 60);
        assert_eq!(s.len_bytes(), s.text().len());
    }

    #[test]
    fn empty_document_gives_empty_summary() {
        let d = Document::parse_xml("<document></document>").unwrap();
        let s = lead_in_summary(&d, 100);
        assert!(s.sentences.is_empty());
        assert_eq!(s.len_bytes(), 0);
    }

    #[test]
    fn baseline_double_transmits_relevant_documents() {
        let (relevant, irrelevant) = summary_baseline_bytes(10_000, 800);
        assert_eq!(
            relevant, 10_800,
            "the summary bytes are pure overhead when relevant"
        );
        assert_eq!(irrelevant, 800);
    }
}
