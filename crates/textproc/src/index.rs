//! The keyword-based logical index of a document.
//!
//! "A keyword-based logical index is established for each organizational
//! unit. The SC is created by deriving the information content of each
//! organizational unit from the logical index" (§3.3). The index stores
//! per-unit keyword occurrence counts (*own* text only — interior units
//! aggregate their descendants through the additive rule downstream in
//! `mrtweb-content`).

use std::collections::BTreeMap;

use mrtweb_docmodel::lod::Lod;
use mrtweb_docmodel::unit::UnitPath;
use serde::{Deserialize, Serialize};

/// Index entry for one organizational unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitEntry {
    /// Path from the document root.
    pub path: UnitPath,
    /// The unit's level of detail.
    pub kind: Lod,
    /// Whether the unit was synthesized during normalization.
    pub synthetic: bool,
    /// The unit's title, if any.
    pub title: Option<String>,
    /// Keyword stem → occurrences in the unit's own text.
    pub counts: BTreeMap<String, u64>,
    /// The unit's own content bytes (for packetization budgeting).
    pub own_bytes: usize,
}

impl UnitEntry {
    /// Occurrences of `stem` in this unit's own text.
    pub fn count(&self, stem: &str) -> u64 {
        self.counts.get(stem).copied().unwrap_or(0)
    }

    /// Total keyword occurrences in this unit's own text.
    pub fn total_occurrences(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// The logical index of a whole document.
///
/// Entries appear in preorder; entry 0 is the document root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocumentIndex {
    entries: Vec<UnitEntry>,
    totals: BTreeMap<String, u64>,
}

impl DocumentIndex {
    /// Assembles an index from per-unit entries.
    ///
    /// Document-wide totals are derived by summation.
    pub fn new(entries: Vec<UnitEntry>) -> Self {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for e in &entries {
            for (stem, n) in &e.counts {
                *totals.entry(stem.clone()).or_insert(0) += n;
            }
        }
        DocumentIndex { entries, totals }
    }

    /// Per-unit entries in preorder.
    pub fn entries(&self) -> &[UnitEntry] {
        &self.entries
    }

    /// The entry for an exact path, if present.
    pub fn entry_at(&self, path: &UnitPath) -> Option<&UnitEntry> {
        self.entries.iter().find(|e| &e.path == path)
    }

    /// Document-wide occurrence counts (the vector `V_D`).
    pub fn totals(&self) -> &BTreeMap<String, u64> {
        &self.totals
    }

    /// Occurrences of `stem` in the whole document (`|a_D|`).
    pub fn total_count(&self, stem: &str) -> u64 {
        self.totals.get(stem).copied().unwrap_or(0)
    }

    /// The largest whole-document occurrence count — the infinity norm
    /// `‖V_D‖∞` used by the keyword weight formula.
    pub fn max_count(&self) -> u64 {
        self.totals.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct keywords (`|A_D|`).
    pub fn distinct_keywords(&self) -> usize {
        self.totals.len()
    }

    /// Sum of all keyword occurrences in the document.
    pub fn total_occurrences(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Aggregated counts over a unit *subtree*: the unit's own counts
    /// plus all descendants (entries whose path has `path` as prefix).
    pub fn subtree_counts(&self, path: &UnitPath) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            if path.is_prefix_of(&e.path) {
                for (stem, n) in &e.counts {
                    *out.entry(stem.clone()).or_insert(0) += n;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &[usize], kind: Lod, counts: &[(&str, u64)]) -> UnitEntry {
        UnitEntry {
            path: UnitPath::from_indices(path.iter().copied()),
            kind,
            synthetic: false,
            title: None,
            counts: counts.iter().map(|(s, n)| (s.to_string(), *n)).collect(),
            own_bytes: 0,
        }
    }

    fn index() -> DocumentIndex {
        DocumentIndex::new(vec![
            entry(&[], Lod::Document, &[]),
            entry(&[0], Lod::Section, &[("alpha", 2)]),
            entry(&[0, 0], Lod::Paragraph, &[("alpha", 1), ("beta", 3)]),
            entry(&[1], Lod::Section, &[("beta", 1)]),
        ])
    }

    #[test]
    fn totals_sum_entries() {
        let idx = index();
        assert_eq!(idx.total_count("alpha"), 3);
        assert_eq!(idx.total_count("beta"), 4);
        assert_eq!(idx.total_count("gamma"), 0);
        assert_eq!(idx.max_count(), 4);
        assert_eq!(idx.distinct_keywords(), 2);
        assert_eq!(idx.total_occurrences(), 7);
    }

    #[test]
    fn subtree_counts_aggregate_prefix() {
        let idx = index();
        let sec0 = idx.subtree_counts(&UnitPath::from_indices([0]));
        assert_eq!(sec0.get("alpha"), Some(&3));
        assert_eq!(sec0.get("beta"), Some(&3));
        let root = idx.subtree_counts(&UnitPath::root());
        assert_eq!(root.get("beta"), Some(&4));
    }

    #[test]
    fn entry_lookup() {
        let idx = index();
        let e = idx.entry_at(&UnitPath::from_indices([0, 0])).unwrap();
        assert_eq!(e.count("beta"), 3);
        assert_eq!(e.total_occurrences(), 4);
        assert!(idx.entry_at(&UnitPath::from_indices([9])).is_none());
    }

    #[test]
    fn empty_index() {
        let idx = DocumentIndex::new(Vec::new());
        assert_eq!(idx.max_count(), 0);
        assert_eq!(idx.distinct_keywords(), 0);
    }
}
