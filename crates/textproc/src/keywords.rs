//! The keyword extractor: which stems count as keywords.
//!
//! "The keyword extractor performs a frequency analysis on the potential
//! keywords. In addition, certain specially formatted words, such as
//! boldfaced and italized, also qualify as keywords" (§3.3). A *potential*
//! keyword is any stem that survived the stop-word filter; the policy
//! here decides which potential keywords enter the logical index.

use std::collections::{BTreeMap, BTreeSet};

/// Keyword admission policy.
///
/// # Example
///
/// ```
/// use mrtweb_textproc::keywords::KeywordPolicy;
///
/// // Default: every surviving stem is a keyword (min_frequency = 1).
/// let p = KeywordPolicy::default();
/// assert_eq!(p.min_frequency, 1);
///
/// // Frequency analysis at threshold 3, emphasized words always in.
/// let strict = KeywordPolicy { min_frequency: 3, always_admit_emphasized: true };
/// assert!(strict.always_admit_emphasized);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordPolicy {
    /// Minimum whole-document occurrence count for a stem to qualify.
    pub min_frequency: u64,
    /// Whether specially formatted (bold/italic/title) words qualify
    /// regardless of frequency, per the paper.
    pub always_admit_emphasized: bool,
}

impl Default for KeywordPolicy {
    fn default() -> Self {
        KeywordPolicy {
            min_frequency: 1,
            always_admit_emphasized: true,
        }
    }
}

/// Document-wide stem statistics accumulated before admission.
#[derive(Debug, Clone, Default)]
pub struct StemStats {
    counts: BTreeMap<String, u64>,
    emphasized: BTreeSet<String>,
}

impl StemStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `stem`.
    pub fn record(&mut self, stem: &str, emphasized: bool) {
        *self.counts.entry(stem.to_owned()).or_insert(0) += 1;
        if emphasized {
            self.emphasized.insert(stem.to_owned());
        }
    }

    /// Total occurrences of `stem` in the document.
    pub fn count(&self, stem: &str) -> u64 {
        self.counts.get(stem).copied().unwrap_or(0)
    }

    /// Whether `stem` ever appeared specially formatted.
    pub fn was_emphasized(&self, stem: &str) -> bool {
        self.emphasized.contains(stem)
    }

    /// Number of distinct stems recorded.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Applies the policy, returning the admitted keyword set.
    pub fn admit(&self, policy: &KeywordPolicy) -> BTreeSet<String> {
        self.counts
            .iter()
            .filter(|(stem, count)| {
                **count >= policy.min_frequency
                    || (policy.always_admit_emphasized && self.emphasized.contains(*stem))
            })
            .map(|(stem, _)| stem.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> StemStats {
        let mut s = StemStats::new();
        for _ in 0..5 {
            s.record("mobil", false);
        }
        for _ in 0..2 {
            s.record("web", false);
        }
        s.record("rare", false);
        s.record("bold", true);
        s
    }

    #[test]
    fn default_policy_admits_everything() {
        let admitted = stats().admit(&KeywordPolicy::default());
        assert_eq!(admitted.len(), 4);
    }

    #[test]
    fn frequency_threshold_filters() {
        let p = KeywordPolicy {
            min_frequency: 2,
            always_admit_emphasized: false,
        };
        let admitted = stats().admit(&p);
        assert!(admitted.contains("mobil"));
        assert!(admitted.contains("web"));
        assert!(!admitted.contains("rare"));
        assert!(!admitted.contains("bold"));
    }

    #[test]
    fn emphasized_words_bypass_frequency() {
        let p = KeywordPolicy {
            min_frequency: 2,
            always_admit_emphasized: true,
        };
        let admitted = stats().admit(&p);
        assert!(
            admitted.contains("bold"),
            "emphasized singleton must qualify"
        );
        assert!(!admitted.contains("rare"), "plain singleton must not");
    }

    #[test]
    fn counts_accumulate() {
        let s = stats();
        assert_eq!(s.count("mobil"), 5);
        assert_eq!(s.count("absent"), 0);
        assert_eq!(s.distinct(), 4);
        assert!(s.was_emphasized("bold"));
        assert!(!s.was_emphasized("web"));
    }
}
