//! The word filter: eliminating non-meaning-bearing "stop" words.
//!
//! "The word filter eliminates non-meaning-bearing words, usually
//! referred to as 'stop' words" (§3.3). The default list is the classic
//! closed-class English vocabulary (articles, prepositions, pronouns,
//! auxiliaries) used by IR engines of the paper's era.

use std::collections::HashSet;

/// The default stop-word list.
pub const DEFAULT_STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "either",
    "etc",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "its",
    "itself",
    "let's",
    "may",
    "me",
    "might",
    "more",
    "most",
    "must",
    "mustn't",
    "my",
    "myself",
    "neither",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "per",
    "quite",
    "rather",
    "same",
    "shall",
    "shan't",
    "she",
    "should",
    "shouldn't",
    "since",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "thus",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "us",
    "very",
    "via",
    "was",
    "wasn't",
    "we",
    "were",
    "weren't",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "whose",
    "why",
    "will",
    "with",
    "won't",
    "would",
    "wouldn't",
    "yet",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// A stop-word filter.
///
/// # Example
///
/// ```
/// use mrtweb_textproc::stopwords::StopWords;
///
/// let sw = StopWords::default();
/// assert!(sw.is_stop_word("the"));
/// assert!(sw.is_stop_word("The"));
/// assert!(!sw.is_stop_word("bandwidth"));
/// ```
#[derive(Debug, Clone)]
pub struct StopWords {
    words: HashSet<String>,
}

impl StopWords {
    /// Builds a filter from an explicit word list.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        StopWords {
            words: words
                .into_iter()
                .map(|w| w.as_ref().to_lowercase())
                .collect(),
        }
    }

    /// An empty filter that passes every word.
    pub fn none() -> Self {
        StopWords {
            words: HashSet::new(),
        }
    }

    /// Whether `word` (case-insensitive) is a stop word.
    pub fn is_stop_word(&self, word: &str) -> bool {
        if word.chars().any(|c| c.is_ascii_uppercase()) {
            self.words.contains(&word.to_lowercase())
        } else {
            self.words.contains(word)
        }
    }

    /// Adds a word to the filter.
    pub fn insert(&mut self, word: &str) {
        self.words.insert(word.to_lowercase());
    }

    /// Number of words in the list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl Default for StopWords {
    fn default() -> Self {
        StopWords::from_words(DEFAULT_STOP_WORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_list_contains_closed_class_words() {
        let sw = StopWords::default();
        for w in ["the", "of", "and", "is", "was", "with", "we", "that"] {
            assert!(sw.is_stop_word(w), "{w:?} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        let sw = StopWords::default();
        for w in ["mobile", "wireless", "document", "transmission", "web"] {
            assert!(!sw.is_stop_word(w), "{w:?} should not be a stop word");
        }
    }

    #[test]
    fn case_insensitive() {
        let sw = StopWords::default();
        assert!(sw.is_stop_word("THE"));
        assert!(sw.is_stop_word("The"));
    }

    #[test]
    fn custom_lists_and_insert() {
        let mut sw = StopWords::from_words(["foo"]);
        assert!(sw.is_stop_word("foo"));
        assert!(!sw.is_stop_word("bar"));
        sw.insert("Bar");
        assert!(sw.is_stop_word("bar"));
        assert_eq!(sw.len(), 2);
    }

    #[test]
    fn none_passes_everything() {
        let sw = StopWords::none();
        assert!(sw.is_empty());
        assert!(!sw.is_stop_word("the"));
    }

    #[test]
    fn no_duplicates_in_default_list() {
        let mut seen = std::collections::HashSet::new();
        for w in DEFAULT_STOP_WORDS {
            assert!(seen.insert(*w), "duplicate stop word {w:?}");
        }
    }
}
