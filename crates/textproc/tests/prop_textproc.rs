//! Property-based tests for the text-processing pipeline.

use proptest::prelude::*;

use mrtweb_docmodel::document::Document;
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_textproc::lemmatizer::stem;
use mrtweb_textproc::pipeline::ScPipeline;
use mrtweb_textproc::recognizer::tokenize;

proptest! {
    /// Porter is *not* idempotent in general (e.g. "ebee" → "ebe" →
    /// "eb"), but it is deterministic and stabilizes: repeated
    /// application reaches a fixed point within a few rounds.
    #[test]
    fn stemming_stabilizes(word in "[a-z]{1,20}") {
        let mut cur = stem(&word);
        for _ in 0..24 {
            let next = stem(&cur);
            if next == cur {
                return Ok(());
            }
            cur = next;
        }
        prop_assert!(false, "stemming of {word:?} never stabilized (ended at {cur:?})");
    }

    /// Constructed -ing forms over a vowel-bearing stem always lose the
    /// suffix.
    #[test]
    fn ing_suffix_is_stripped(prefix in "[bcdfglmnprt]{0,2}[aeou][bcdfglmnprt]{1,3}") {
        let word = format!("{prefix}ing");
        let s = stem(&word);
        prop_assert!(!s.ends_with("ing"), "{word:?} stemmed to {s:?}");
    }

    /// Stems never grow longer than the input and are never empty for
    /// nonempty alphabetic input.
    #[test]
    fn stems_shrink_and_stay_nonempty(word in "[a-z]{1,24}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len());
    }

    /// Common plural forms share a stem with their singular.
    #[test]
    fn plural_unifies_with_singular(word in "[a-z]{3,12}") {
        // Exclude words already ending in s/e/y where pluralization
        // rules interact nontrivially.
        prop_assume!(!word.ends_with('s') && !word.ends_with('e') && !word.ends_with('y'));
        let plural = format!("{word}s");
        prop_assert_eq!(stem(&word), stem(&plural), "{} vs {}", word, plural);
    }

    /// Tokenization output contains only lowercase tokens with at least
    /// one alphabetic character, and tokens cover no whitespace.
    #[test]
    fn tokens_are_clean(text in "\\PC{0,200}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().any(char::is_alphabetic));
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    /// Document totals always equal the sum of per-unit counts.
    ///
    /// (Note: the index *can* contain stems that textually equal a stop
    /// word — "one" stems to "on" — because filtering applies to the
    /// surface form before stemming, exactly as the paper's pipeline
    /// order prescribes.)
    #[test]
    fn index_totals_are_consistent(seed in any::<u64>(), sections in 1usize..4) {
        let spec = SyntheticDocSpec {
            sections,
            target_bytes: 1200,
            keyword_budget: 40,
            ..Default::default()
        };
        let doc = spec.generate(seed).document;
        let pipeline = ScPipeline::default();
        let index = pipeline.run(&doc);
        let mut summed = std::collections::BTreeMap::<String, u64>::new();
        for e in index.entries() {
            for (stem, n) in &e.counts {
                *summed.entry(stem.clone()).or_insert(0) += n;
            }
        }
        prop_assert_eq!(&summed, index.totals());
        prop_assert_eq!(
            index.max_count(),
            index.totals().values().copied().max().unwrap_or(0)
        );
    }

    /// The pipeline is insensitive to XML serialization: running on a
    /// document and on its parse(to_xml()) round trip gives the same
    /// index.
    #[test]
    fn pipeline_stable_under_round_trip(seed in any::<u64>()) {
        let spec = SyntheticDocSpec {
            sections: 2,
            target_bytes: 800,
            keyword_budget: 30,
            ..Default::default()
        };
        let doc = spec.generate(seed).document;
        let again = Document::parse_xml(&doc.to_xml()).unwrap();
        let pipeline = ScPipeline::default();
        prop_assert_eq!(pipeline.run(&doc), pipeline.run(&again));
    }
}
