//! Property-based tests for the content measures.

use proptest::prelude::*;

use mrtweb_content::ic::InformationContent;
use mrtweb_content::mqic::ModifiedQueryContent;
use mrtweb_content::qic::QueryContent;
use mrtweb_content::query::Query;
use mrtweb_content::weights::keyword_weight;
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_docmodel::unit::UnitPath;
use mrtweb_textproc::pipeline::ScPipeline;

fn doc_and_index(
    seed: u64,
) -> (
    mrtweb_docmodel::document::Document,
    mrtweb_textproc::index::DocumentIndex,
) {
    let spec = SyntheticDocSpec {
        sections: 3,
        target_bytes: 1500,
        keyword_budget: 60,
        ..Default::default()
    };
    let doc = spec.generate(seed).document;
    let index = ScPipeline::default().run(&doc);
    (doc, index)
}

proptest! {
    /// Weight formula: monotone decreasing in count, equals 1 at the
    /// norm, and halving the count adds exactly one.
    #[test]
    fn weight_formula_properties(max in 1u64..10_000, frac in 1u64..100) {
        let count = (max * frac / 100).max(1);
        let w = keyword_weight(count, max);
        prop_assert!(w >= 1.0 - 1e-12);
        prop_assert_eq!(keyword_weight(max, max), 1.0);
        if count * 2 <= max {
            let w2 = keyword_weight(count * 2, max);
            prop_assert!((w - w2 - 1.0).abs() < 1e-9);
        }
    }

    /// IC always normalizes to 1 on keyword-bearing documents, every
    /// unit score is within [0, 1], and the root subtree equals the sum.
    #[test]
    fn ic_normalization_and_bounds(seed in any::<u64>()) {
        let (_, index) = doc_and_index(seed);
        let ic = InformationContent::from_index(&index);
        prop_assert!((ic.total() - 1.0).abs() < 1e-9);
        for s in ic.scores().scores() {
            prop_assert!(s.own >= -1e-12 && s.own <= 1.0 + 1e-12);
        }
        prop_assert!((ic.scores().subtree_at(&UnitPath::root()) - 1.0).abs() < 1e-9);
    }

    /// QIC is bounded by: zero for units without query words, total
    /// either 0 (no match) or 1 (match); MQIC always totals 1.
    #[test]
    fn qic_mqic_normalization(seed in any::<u64>(), pick in 0usize..20) {
        let (_, index) = doc_and_index(seed);
        // Build a query from an actual document stem (guaranteed match)
        // plus a nonsense word (guaranteed non-match).
        let stems: Vec<&String> = index.totals().keys().collect();
        prop_assume!(!stems.is_empty());
        let stem = stems[pick % stems.len()].clone();
        let q = Query::from_stems([(stem, 1u64), ("zzzzzz".to_owned(), 1)]);
        let qic = QueryContent::from_index(&index, &q);
        prop_assert!((qic.total() - 1.0).abs() < 1e-9);
        let mqic = ModifiedQueryContent::from_index(&index, &q);
        prop_assert!((mqic.total() - 1.0).abs() < 1e-9);
        // MQIC dominates QIC's zero-units: any unit with IC > 0 has
        // MQIC > 0.
        let ic = InformationContent::from_index(&index);
        for (i, s) in ic.scores().scores().iter().enumerate() {
            if s.own > 1e-9 {
                prop_assert!(
                    mqic.scores().scores()[i].own > 0.0,
                    "unit {} has IC but zero MQIC", s.path
                );
            }
        }
    }

    /// A query that matches nothing zeroes QIC everywhere while MQIC
    /// degenerates toward IC (λ scales a zero contribution).
    #[test]
    fn unmatched_query_behaviour(seed in any::<u64>()) {
        let (_, index) = doc_and_index(seed);
        let q = Query::from_stems([("qqqqqqq".to_owned(), 3u64)]);
        let qic = QueryContent::from_index(&index, &q);
        prop_assert_eq!(qic.total(), 0.0);
        let mqic = ModifiedQueryContent::from_index(&index, &q);
        let ic = InformationContent::from_index(&index);
        for (m, i) in mqic.scores().scores().iter().zip(ic.scores().scores()) {
            prop_assert!((m.own - i.own).abs() < 1e-9);
        }
    }

    /// Query parsing is insensitive to word order and casing.
    #[test]
    fn query_parse_canonical(words in proptest::collection::vec("[a-z]{3,10}", 1..6)) {
        let pipeline = ScPipeline::default();
        let forward = words.join(" ");
        let mut rev = words.clone();
        rev.reverse();
        let backward = rev.join(" ").to_uppercase();
        let qa = Query::parse(&forward, &pipeline);
        let qb = Query::parse(&backward, &pipeline);
        prop_assert_eq!(qa, qb);
    }
}
