//! Per-unit score containers with additive subtree aggregation.
//!
//! IC, QIC and MQIC all share the same shape: every organizational unit
//! has an *own* score (from its own text), and a unit's total score is
//! the sum over its subtree — the paper's additive rule
//! `p_j = Σ_k p_{j,k}`. [`ContentScores`] stores the own scores aligned
//! with a [`DocumentIndex`](mrtweb_textproc::index::DocumentIndex)'s
//! entries and aggregates on demand.

use mrtweb_docmodel::lod::Lod;
use mrtweb_docmodel::unit::UnitPath;
use serde::{Deserialize, Serialize};

/// The score of one unit (own text only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitScore {
    /// Path from the document root.
    pub path: UnitPath,
    /// The unit's level of detail.
    pub kind: Lod,
    /// Whether the unit is a normalization artifact.
    pub synthetic: bool,
    /// Score contributed by the unit's own text.
    pub own: f64,
}

/// Own-scores for every unit of a document, in preorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentScores {
    scores: Vec<UnitScore>,
}

impl ContentScores {
    /// Wraps per-unit own scores.
    pub fn new(scores: Vec<UnitScore>) -> Self {
        ContentScores { scores }
    }

    /// The per-unit own scores in preorder.
    pub fn scores(&self) -> &[UnitScore] {
        &self.scores
    }

    /// The own score at an exact path (0 if the path is unknown).
    pub fn own_at(&self, path: &UnitPath) -> f64 {
        self.scores
            .iter()
            .find(|s| &s.path == path)
            .map_or(0.0, |s| s.own)
    }

    /// The additive subtree score at `path`: own score plus all
    /// descendants. The root path returns [`ContentScores::total`].
    pub fn subtree_at(&self, path: &UnitPath) -> f64 {
        self.scores
            .iter()
            .filter(|s| path.is_prefix_of(&s.path))
            .map(|s| s.own)
            .sum()
    }

    /// Sum of every own score — 1.0 for a normalized measure over a
    /// document with any keyword mass.
    pub fn total(&self) -> f64 {
        self.scores.iter().map(|s| s.own).sum()
    }

    /// Paths of units at exactly `lod`, with their subtree scores.
    pub fn at_lod(&self, lod: Lod) -> Vec<(UnitPath, f64)> {
        self.scores
            .iter()
            .filter(|s| s.kind == lod)
            .map(|s| (s.path.clone(), self.subtree_at(&s.path)))
            .collect()
    }

    /// Ranks the given paths by descending subtree score; ties keep the
    /// input (document) order, making the sort stable and deterministic.
    pub fn rank(&self, paths: &[UnitPath]) -> Vec<UnitPath> {
        let mut scored: Vec<(UnitPath, f64)> = paths
            .iter()
            .map(|p| (p.clone(), self.subtree_at(p)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.into_iter().map(|(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> ContentScores {
        let mk = |idx: &[usize], kind, own| UnitScore {
            path: UnitPath::from_indices(idx.iter().copied()),
            kind,
            synthetic: false,
            own,
        };
        ContentScores::new(vec![
            mk(&[], Lod::Document, 0.0),
            mk(&[0], Lod::Section, 0.1),
            mk(&[0, 0], Lod::Paragraph, 0.2),
            mk(&[1], Lod::Section, 0.3),
            mk(&[1, 0], Lod::Paragraph, 0.4),
        ])
    }

    #[test]
    fn subtree_is_additive() {
        let s = scores();
        assert!((s.subtree_at(&UnitPath::from_indices([0])) - 0.3).abs() < 1e-12);
        assert!((s.subtree_at(&UnitPath::from_indices([1])) - 0.7).abs() < 1e-12);
        assert!((s.subtree_at(&UnitPath::root()) - 1.0).abs() < 1e-12);
        assert!((s.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn own_at_exact_path() {
        let s = scores();
        assert_eq!(s.own_at(&UnitPath::from_indices([1, 0])), 0.4);
        assert_eq!(s.own_at(&UnitPath::from_indices([9])), 0.0);
    }

    #[test]
    fn at_lod_returns_subtree_scores() {
        let s = scores();
        let sections = s.at_lod(Lod::Section);
        assert_eq!(sections.len(), 2);
        assert!((sections[0].1 - 0.3).abs() < 1e-12);
        assert!((sections[1].1 - 0.7).abs() < 1e-12);
    }

    #[test]
    fn rank_sorts_descending_stable() {
        let s = scores();
        let paths: Vec<UnitPath> = vec![UnitPath::from_indices([0]), UnitPath::from_indices([1])];
        let ranked = s.rank(&paths);
        assert_eq!(ranked[0], UnitPath::from_indices([1]));
        assert_eq!(ranked[1], UnitPath::from_indices([0]));
    }

    #[test]
    fn rank_preserves_order_on_ties() {
        let mk = |idx: &[usize]| UnitPath::from_indices(idx.iter().copied());
        let s = ContentScores::new(vec![
            UnitScore {
                path: mk(&[0]),
                kind: Lod::Section,
                synthetic: false,
                own: 0.5,
            },
            UnitScore {
                path: mk(&[1]),
                kind: Lod::Section,
                synthetic: false,
                own: 0.5,
            },
        ]);
        let ranked = s.rank(&[mk(&[0]), mk(&[1])]);
        assert_eq!(ranked, vec![mk(&[0]), mk(&[1])]);
    }
}
