//! Query-based information content (QIC), product form.
//!
//! "The QIC `q^Q_i` of an organizational unit `n_i` in `D` with respect
//! to `Q` is the combined weighted sum of the keywords in the unit,
//! normalized with respect to `D` and `Q`:
//! `q^Q_i = Σ_{a∈n_i∩Q} |a_{n_i}| ω_a ω^Q_a / Σ_{d∈D∩Q} |d_D| ω_d ω^Q_d`"
//! (§3.2). Only keywords shared by the unit and the query contribute;
//! units without any querying word get QIC 0 (the motivation for
//! [`crate::mqic`]).

use mrtweb_textproc::index::DocumentIndex;

use crate::query::Query;
use crate::scores::{ContentScores, UnitScore};
use crate::weights::keyword_weight;

/// The query-based information content of every unit of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryContent {
    scores: ContentScores,
}

impl QueryContent {
    /// Computes QIC from a document's logical index and a query.
    ///
    /// If no querying word occurs in the document (denominator 0), every
    /// unit's QIC is 0.
    pub fn from_index(index: &DocumentIndex, query: &Query) -> Self {
        let max = index.max_count().max(1);
        let denom: f64 = index
            .totals()
            .iter()
            .map(|(stem, &n)| n as f64 * keyword_weight(n, max) * query.weight(stem))
            .sum();
        let scores = index
            .entries()
            .iter()
            .map(|e| {
                let num: f64 = e
                    .counts
                    .iter()
                    .map(|(stem, &n)| {
                        n as f64 * keyword_weight(index.total_count(stem), max) * query.weight(stem)
                    })
                    .sum();
                UnitScore {
                    path: e.path.clone(),
                    kind: e.kind,
                    synthetic: e.synthetic,
                    own: if denom > 0.0 { num / denom } else { 0.0 },
                }
            })
            .collect();
        QueryContent {
            scores: ContentScores::new(scores),
        }
    }

    /// The underlying score container.
    pub fn scores(&self) -> &ContentScores {
        &self.scores
    }

    /// Total QIC of the document: 1.0 when any querying word occurs in
    /// the document, 0.0 otherwise.
    pub fn total(&self) -> f64 {
        self.scores.total()
    }
}

impl From<QueryContent> for ContentScores {
    fn from(q: QueryContent) -> ContentScores {
        q.scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::document::Document;
    use mrtweb_docmodel::unit::UnitPath;
    use mrtweb_textproc::pipeline::ScPipeline;

    fn setup(xml: &str, query: &str) -> QueryContent {
        let doc = Document::parse_xml(xml).unwrap();
        let pipeline = ScPipeline::default();
        let idx = pipeline.run(&doc);
        let q = Query::parse(query, &pipeline);
        QueryContent::from_index(&idx, &q)
    }

    const TWO_SECTIONS: &str = "<document>\
        <section><paragraph>mobile web browsing today</paragraph></section>\
        <section><paragraph>database storage engines</paragraph></section>\
        </document>";

    #[test]
    fn matching_section_takes_all_content() {
        let qic = setup(TWO_SECTIONS, "mobile web");
        let s = qic.scores();
        let first = s.subtree_at(&UnitPath::from_indices([0]));
        let second = s.subtree_at(&UnitPath::from_indices([1]));
        assert!(
            (first - 1.0).abs() < 1e-9,
            "all QIC should be in the matching section"
        );
        assert_eq!(second, 0.0);
    }

    #[test]
    fn qic_normalizes_to_one_when_query_matches() {
        let qic = setup(TWO_SECTIONS, "mobile database");
        assert!((qic.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_match_means_all_zero() {
        let qic = setup(TWO_SECTIONS, "astronomy telescopes");
        assert_eq!(qic.total(), 0.0);
    }

    #[test]
    fn empty_query_means_all_zero() {
        let qic = setup(TWO_SECTIONS, "");
        assert_eq!(qic.total(), 0.0);
    }

    #[test]
    fn additive_rule_holds_for_qic() {
        let qic = setup(
            "<document><section>\
             <paragraph>mobile one</paragraph><paragraph>mobile two</paragraph>\
             </section></document>",
            "mobile",
        );
        let s = qic.scores();
        let section = s.subtree_at(&UnitPath::from_indices([0]));
        assert!((section - 1.0).abs() < 1e-9);
        // Both paragraphs contribute; each own value is positive. The
        // paragraphs sit inside a virtual subsection, hence depth 3.
        let p0 = s.subtree_at(&UnitPath::from_indices([0, 0, 0]));
        assert!(p0 > 0.0 && p0 < 1.0);
    }

    #[test]
    fn repeated_query_word_shifts_mass() {
        // Section 0 matches "mobile", section 1 matches "web".
        //
        // Note: the paper motivates repetition as *emphasis*, but its
        // weight formula `ω^Q_a = 1 − log₂(|a_Q|/‖V_Q‖∞)` assigns the
        // most frequent querying word weight exactly 1 and *rarer* words
        // more — so repeating "mobile" lowers its relative weight. We
        // reproduce the formula as published; this test pins down its
        // actual behaviour.
        let xml = "<document>\
            <section><paragraph>mobile systems</paragraph></section>\
            <section><paragraph>web pages</paragraph></section>\
            </document>";
        let balanced = setup(xml, "mobile web");
        let biased = setup(xml, "mobile mobile mobile web");
        let p = UnitPath::from_indices([0]);
        assert!(
            biased.scores().subtree_at(&p) < balanced.scores().subtree_at(&p),
            "under the published formula, repetition lowers the repeated word's share"
        );
    }
}
