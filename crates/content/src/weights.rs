//! Keyword weights.
//!
//! "A weight is associated with each keyword which indicates its
//! relative importance in a document. We use a logarithmic function of
//! keyword occurrences to define this weight:
//! `ω_a = 1 − log₂(|a_D| / ‖V_D‖)` where `‖V_D‖` is the norm of the
//! occurrence vector. We choose the infinity norm `‖V_D‖∞ = max(v_i)`"
//! (§3.1). The same formula (with the query's own occurrence vector)
//! weights querying words.
//!
//! Properties: the most frequent keyword gets weight exactly 1; rarer
//! keywords get larger weights (`1 + log₂(max/count)`), so a keyword
//! occurring half as often weighs 2. Weights are always ≥ 1 for
//! occurring keywords.

/// The weight `ω_a = 1 − log₂(count / max)` of a keyword occurring
/// `count` times when the most frequent keyword occurs `max` times.
///
/// Returns 0 when `count` is 0, matching the paper's convention for
/// querying words (`ω^Q_a = 0` if `|a_Q| = 0`).
///
/// # Panics
///
/// Panics if `count > max` or if `count > 0` while `max == 0` — the
/// infinity norm must dominate every component.
///
/// # Example
///
/// ```
/// use mrtweb_content::weights::keyword_weight;
///
/// assert_eq!(keyword_weight(8, 8), 1.0);   // the most frequent keyword
/// assert_eq!(keyword_weight(4, 8), 2.0);   // half as frequent → weight 2
/// assert_eq!(keyword_weight(1, 8), 4.0);   // 1 − log2(1/8)
/// assert_eq!(keyword_weight(0, 8), 0.0);   // absent
/// ```
pub fn keyword_weight(count: u64, max: u64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    assert!(count <= max, "count {count} exceeds the vector norm {max}");
    1.0 - (count as f64 / max as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_frequent_weighs_one() {
        for max in [1u64, 2, 7, 1000] {
            assert_eq!(keyword_weight(max, max), 1.0);
        }
    }

    #[test]
    fn rarer_keywords_weigh_more() {
        let mut prev = keyword_weight(16, 16);
        for count in (1..16).rev() {
            let w = keyword_weight(count, 16);
            assert!(w > prev, "weight should grow as count falls");
            prev = w;
        }
    }

    #[test]
    fn halving_adds_one() {
        assert!((keyword_weight(4, 16) - keyword_weight(8, 16) - 1.0).abs() < 1e-12);
        assert!((keyword_weight(1, 16) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_count_is_zero_weight() {
        assert_eq!(keyword_weight(0, 5), 0.0);
        assert_eq!(keyword_weight(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the vector norm")]
    fn count_above_norm_panics() {
        let _ = keyword_weight(9, 8);
    }
}
