//! The structural characteristic (SC).
//!
//! "The structural organization of a document could be modeled by a
//! tree-like indexing structure, called a structural characteristic"
//! (§3). The SC couples every organizational unit with its information
//! contents — static IC plus, when a query is given, QIC and MQIC — and
//! is what the server consults to order units for transmission and what
//! the paper's Table 1 prints.

use std::fmt;
use std::fmt::Write as _;

use mrtweb_docmodel::lod::Lod;
use mrtweb_docmodel::unit::UnitPath;
use mrtweb_textproc::index::DocumentIndex;
use serde::{Deserialize, Serialize};

use crate::ic::InformationContent;
use crate::mqic::ModifiedQueryContent;
use crate::qic::QueryContent;
use crate::query::Query;
use crate::scores::ContentScores;

/// Which content measure orders the transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Measure {
    /// Static information content (no query context).
    #[default]
    Ic,
    /// Query-based information content (product form).
    Qic,
    /// Modified query-based information content (sum form).
    Mqic,
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Measure::Ic => "IC",
            Measure::Qic => "QIC",
            Measure::Mqic => "MQIC",
        })
    }
}

/// A string did not name a content measure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMeasureError(String);

impl fmt::Display for ParseMeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown content measure: {:?} (ic, qic, or mqic)",
            self.0
        )
    }
}

impl std::error::Error for ParseMeasureError {}

impl std::str::FromStr for Measure {
    type Err = ParseMeasureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ic" => Ok(Measure::Ic),
            "qic" => Ok(Measure::Qic),
            "mqic" => Ok(Measure::Mqic),
            other => Err(ParseMeasureError(other.to_owned())),
        }
    }
}

/// One row of the structural characteristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScEntry {
    /// Path from the document root.
    pub path: UnitPath,
    /// The unit's level of detail.
    pub kind: Lod,
    /// Whether the unit is a normalization artifact.
    pub synthetic: bool,
    /// The unit's title, if any.
    pub title: Option<String>,
    /// Subtree information content `p_i`.
    pub ic: f64,
    /// Subtree QIC `q^Q_i` (0 without a query).
    pub qic: f64,
    /// Subtree MQIC `q̃^Q_i` (equals IC without a query).
    pub mqic: f64,
    /// Content bytes of the unit subtree.
    pub bytes: usize,
}

/// The structural characteristic of a document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralCharacteristic {
    entries: Vec<ScEntry>,
}

impl StructuralCharacteristic {
    /// Builds the SC from a logical index, with an optional query for
    /// the QIC/MQIC columns.
    pub fn from_index(index: &DocumentIndex, query: Option<&Query>) -> Self {
        let ic: ContentScores = InformationContent::from_index(index).into();
        let (qic, mqic): (ContentScores, ContentScores) = match query {
            Some(q) => (
                QueryContent::from_index(index, q).into(),
                ModifiedQueryContent::from_index(index, q).into(),
            ),
            None => (
                ContentScores::new(
                    ic.scores()
                        .iter()
                        .map(|s| crate::scores::UnitScore {
                            own: 0.0,
                            ..s.clone()
                        })
                        .collect(),
                ),
                ic.clone(),
            ),
        };
        // Subtree bytes per entry.
        let entries = index
            .entries()
            .iter()
            .map(|e| {
                let bytes: usize = index
                    .entries()
                    .iter()
                    .filter(|d| e.path.is_prefix_of(&d.path))
                    .map(|d| d.own_bytes)
                    .sum();
                ScEntry {
                    path: e.path.clone(),
                    kind: e.kind,
                    synthetic: e.synthetic,
                    title: e.title.clone(),
                    ic: ic.subtree_at(&e.path),
                    qic: qic.subtree_at(&e.path),
                    mqic: mqic.subtree_at(&e.path),
                    bytes,
                }
            })
            .collect();
        StructuralCharacteristic { entries }
    }

    /// All rows in preorder (the root first).
    pub fn entries(&self) -> &[ScEntry] {
        &self.entries
    }

    /// The row for an exact path.
    pub fn entry_at(&self, path: &UnitPath) -> Option<&ScEntry> {
        self.entries.iter().find(|e| &e.path == path)
    }

    /// The chosen measure of a row.
    pub fn value(entry: &ScEntry, measure: Measure) -> f64 {
        match measure {
            Measure::Ic => entry.ic,
            Measure::Qic => entry.qic,
            Measure::Mqic => entry.mqic,
        }
    }

    /// Ranks the given unit paths in descending order of the measure
    /// (ties keep document order) — the transmission order of §4.2.
    pub fn rank(&self, paths: &[UnitPath], measure: Measure) -> Vec<UnitPath> {
        let mut scored: Vec<(UnitPath, f64)> = paths
            .iter()
            .map(|p| {
                let v = self.entry_at(p).map_or(0.0, |e| Self::value(e, measure));
                (p.clone(), v)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.into_iter().map(|(p, _)| p).collect()
    }

    /// Renders the Table 1 layout: one row per non-root unit with its
    /// label and the three content columns.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Sect./Subsect./Para.      IC p       QIC q^Q    MQIC q~Q\n");
        for e in &self.entries {
            if e.path.is_root() {
                continue;
            }
            let indent = "  ".repeat(e.path.depth().saturating_sub(1));
            let label = format!("{indent}{}", e.path);
            let _ = writeln!(
                out,
                "{label:<25} {ic:.5}    {qic:.5}    {mqic:.5}",
                ic = e.ic,
                qic = e.qic,
                mqic = e.mqic,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::document::Document;
    use mrtweb_textproc::pipeline::ScPipeline;

    fn sc(xml: &str, query: Option<&str>) -> StructuralCharacteristic {
        let doc = Document::parse_xml(xml).unwrap();
        let pipeline = ScPipeline::default();
        let idx = pipeline.run(&doc);
        let q = query.map(|q| Query::parse(q, &pipeline));
        StructuralCharacteristic::from_index(&idx, q.as_ref())
    }

    const DOC: &str = "<document>\
        <section><title>Mobile</title><paragraph>mobile web browsing</paragraph></section>\
        <section><title>Other</title><paragraph>database storage engines</paragraph></section>\
        </document>";

    #[test]
    fn measure_parses_case_insensitively_and_round_trips() {
        for (s, m) in [
            ("ic", Measure::Ic),
            ("IC", Measure::Ic),
            ("qic", Measure::Qic),
            ("QIC", Measure::Qic),
            ("MqIc", Measure::Mqic),
        ] {
            assert_eq!(s.parse::<Measure>().unwrap(), m);
        }
        for m in [Measure::Ic, Measure::Qic, Measure::Mqic] {
            assert_eq!(m.to_string().parse::<Measure>().unwrap(), m);
        }
        assert!("quality".parse::<Measure>().is_err());
        assert!("".parse::<Measure>().is_err());
    }

    #[test]
    fn root_row_sums_to_one() {
        let sc = sc(DOC, Some("mobile"));
        let root = sc.entry_at(&UnitPath::root()).unwrap();
        assert!((root.ic - 1.0).abs() < 1e-9);
        assert!((root.qic - 1.0).abs() < 1e-9);
        assert!((root.mqic - 1.0).abs() < 1e-9);
    }

    #[test]
    fn without_query_qic_is_zero_and_mqic_equals_ic() {
        let sc = sc(DOC, None);
        for e in sc.entries() {
            assert_eq!(e.qic, 0.0);
            assert!((e.mqic - e.ic).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_by_qic_puts_matching_section_first() {
        let sc = sc(DOC, Some("database storage"));
        let paths: Vec<UnitPath> = vec![UnitPath::from_indices([0]), UnitPath::from_indices([1])];
        let ranked = sc.rank(&paths, Measure::Qic);
        assert_eq!(ranked[0], UnitPath::from_indices([1]));
    }

    #[test]
    fn rank_by_ic_vs_qic_can_differ() {
        // IC ranks by static mass; QIC by query match.
        let sc = sc(DOC, Some("database"));
        let paths: Vec<UnitPath> = vec![UnitPath::from_indices([0]), UnitPath::from_indices([1])];
        let by_qic = sc.rank(&paths, Measure::Qic);
        assert_eq!(by_qic[0], UnitPath::from_indices([1]));
    }

    #[test]
    fn bytes_aggregate_subtrees() {
        let sc = sc(DOC, None);
        let root = sc.entry_at(&UnitPath::root()).unwrap();
        let s0 = sc.entry_at(&UnitPath::from_indices([0])).unwrap();
        let s1 = sc.entry_at(&UnitPath::from_indices([1])).unwrap();
        assert_eq!(root.bytes, s0.bytes + s1.bytes);
        assert!(s0.bytes > 0);
    }

    #[test]
    fn table_renders_every_non_root_unit() {
        let sc = sc(DOC, Some("mobile web browsing"));
        let table = sc.render_table();
        let rows = table.lines().count() - 1; // header
        assert_eq!(rows, sc.entries().len() - 1);
        assert!(table.contains("IC p"));
        assert!(table.contains("QIC"));
    }

    #[test]
    fn measure_display() {
        assert_eq!(Measure::Ic.to_string(), "IC");
        assert_eq!(Measure::Qic.to_string(), "QIC");
        assert_eq!(Measure::Mqic.to_string(), "MQIC");
    }
}
