//! Keyword queries.
//!
//! A query `Q` is treated symmetrically to a document (§3.2): its words
//! form an occurrence vector `V_Q`, and "a user might want to emphasize
//! a particular keyword by repeating it in order to give it a higher
//! weight". Querying words pass through the *same* lemmatize-and-filter
//! stages as document words so the two meet in one stem space.

use std::collections::BTreeMap;

use mrtweb_textproc::pipeline::ScPipeline;
use mrtweb_textproc::recognizer::tokenize;
use serde::{Deserialize, Serialize};

use crate::weights::keyword_weight;

/// A keyword-based search query.
///
/// # Example
///
/// ```
/// use mrtweb_content::query::Query;
/// use mrtweb_textproc::pipeline::ScPipeline;
///
/// let pipeline = ScPipeline::default();
/// // Repeating "mobile" emphasizes it; "the" is filtered as a stop word.
/// let q = Query::parse("mobile mobile the web", &pipeline);
/// assert_eq!(q.count("mobil"), 2);
/// assert_eq!(q.count("web"), 1);
/// assert_eq!(q.count("the"), 0);
/// // The most frequent querying word weighs 1; rarer ones more.
/// assert_eq!(q.weight("mobil"), 1.0);
/// assert_eq!(q.weight("web"), 2.0);
/// assert_eq!(q.weight("absent"), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Query {
    counts: BTreeMap<String, u64>,
}

impl Query {
    /// An empty query (matches nothing; all QIC become 0).
    pub fn new() -> Self {
        Query::default()
    }

    /// Parses free text through the pipeline's normalization: stop words
    /// are dropped and the rest stemmed, exactly as document words are.
    pub fn parse(text: &str, pipeline: &ScPipeline) -> Self {
        let mut counts = BTreeMap::new();
        for word in tokenize(text) {
            if let Some(stem) = pipeline.normalize_word(&word) {
                *counts.entry(stem).or_insert(0u64) += 1;
            }
        }
        Query { counts }
    }

    /// Builds a query directly from `(stem, occurrences)` pairs —
    /// useful when the caller already normalized the words.
    pub fn from_stems<I, S>(stems: I) -> Self
    where
        I: IntoIterator<Item = (S, u64)>,
        S: Into<String>,
    {
        let mut counts = BTreeMap::new();
        for (s, n) in stems {
            if n > 0 {
                *counts.entry(s.into()).or_insert(0u64) += n;
            }
        }
        Query { counts }
    }

    /// Occurrences `|a_Q|` of a stem in the query.
    pub fn count(&self, stem: &str) -> u64 {
        self.counts.get(stem).copied().unwrap_or(0)
    }

    /// The infinity norm `‖V_Q‖∞` of the query occurrence vector.
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Total occurrences `Σ_a |a_Q|` across the query.
    pub fn total_occurrences(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The querying-word weight `ω^Q_a`: the document weight formula
    /// applied to the query vector, and 0 for absent words.
    pub fn weight(&self, stem: &str) -> f64 {
        keyword_weight(self.count(stem), self.max_count().max(1))
    }

    /// Whether the query has no words.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The distinct querying stems.
    pub fn stems(&self) -> impl Iterator<Item = &str> {
        self.counts.keys().map(String::as_str)
    }

    /// Iterates `(stem, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(s, n)| (s.as_str(), *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> ScPipeline {
        ScPipeline::default()
    }

    #[test]
    fn parse_normalizes_like_documents() {
        let q = Query::parse("Browsing browsed the WEB", &pipeline());
        assert_eq!(q.count("brows"), 2);
        assert_eq!(q.count("web"), 1);
        assert!(q.count("the") == 0);
    }

    #[test]
    fn repetition_emphasizes() {
        let q = Query::parse("cache cache cache network", &pipeline());
        assert_eq!(q.max_count(), 3);
        assert_eq!(q.weight("cach"), 1.0);
        assert!(q.weight("network") > 1.0);
    }

    #[test]
    fn empty_query_weights_are_zero() {
        let q = Query::new();
        assert!(q.is_empty());
        assert_eq!(q.weight("anything"), 0.0);
        assert_eq!(q.max_count(), 0);
    }

    #[test]
    fn from_stems_skips_zero_counts() {
        let q = Query::from_stems([("a", 2u64), ("b", 0), ("c", 1)]);
        assert_eq!(q.stems().count(), 2);
        assert_eq!(q.total_occurrences(), 3);
    }

    #[test]
    fn paper_table1_query_shape() {
        // Q = {browsing, mobile, web}: all distinct, so all weigh 1.
        let q = Query::parse("browsing mobile web", &pipeline());
        assert_eq!(q.stems().count(), 3);
        for (stem, _) in q.iter() {
            assert_eq!(q.weight(stem), 1.0);
        }
    }
}
