//! Static information content (IC).
//!
//! "The information content `p_i` of an organizational unit `n_i` is
//! the weighted sum of the keywords in the unit, normalized with respect
//! to that of the document:
//! `p_i = Σ_{a∈n_i} |a_{n_i}| ω_a / Σ_{d∈D} |d_D| ω_d`" (§3.1).
//!
//! Under this definition the additive rule holds — a unit's content is
//! the sum of its sub-units' — and the whole document's content is 1.

use mrtweb_textproc::index::DocumentIndex;

use crate::scores::{ContentScores, UnitScore};
use crate::weights::keyword_weight;

/// The static information content of every unit of a document.
///
/// This is a thin, semantically named wrapper around [`ContentScores`];
/// see the crate example for end-to-end usage.
#[derive(Debug, Clone, PartialEq)]
pub struct InformationContent {
    scores: ContentScores,
}

impl InformationContent {
    /// Computes IC from a document's logical index.
    ///
    /// A document with no keywords at all yields all-zero contents
    /// (rather than NaN).
    pub fn from_index(index: &DocumentIndex) -> Self {
        let max = index.max_count().max(1);
        // Denominator: Σ_d |d_D| ω_d over the whole document.
        let denom: f64 = index
            .totals()
            .iter()
            .map(|(_, &n)| n as f64 * keyword_weight(n, max))
            .sum();
        let scores = index
            .entries()
            .iter()
            .map(|e| {
                let num: f64 = e
                    .counts
                    .iter()
                    .map(|(stem, &n)| n as f64 * keyword_weight(index.total_count(stem), max))
                    .sum();
                UnitScore {
                    path: e.path.clone(),
                    kind: e.kind,
                    synthetic: e.synthetic,
                    own: if denom > 0.0 { num / denom } else { 0.0 },
                }
            })
            .collect();
        InformationContent {
            scores: ContentScores::new(scores),
        }
    }

    /// The underlying score container.
    pub fn scores(&self) -> &ContentScores {
        &self.scores
    }

    /// Total content of the document (1.0 unless the document has no
    /// keywords).
    pub fn total(&self) -> f64 {
        self.scores.total()
    }
}

impl From<InformationContent> for ContentScores {
    fn from(ic: InformationContent) -> ContentScores {
        ic.scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::document::Document;
    use mrtweb_docmodel::lod::Lod;
    use mrtweb_docmodel::unit::UnitPath;
    use mrtweb_textproc::pipeline::ScPipeline;

    fn ic_for(xml: &str) -> (InformationContent, DocumentIndex) {
        let doc = Document::parse_xml(xml).unwrap();
        let idx = ScPipeline::default().run(&doc);
        (InformationContent::from_index(&idx), idx)
    }

    #[test]
    fn document_content_is_one() {
        let (ic, _) = ic_for(
            "<document><section><paragraph>alpha beta</paragraph></section>\
             <section><paragraph>gamma delta epsilon</paragraph></section></document>",
        );
        assert!((ic.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn additive_rule_holds() {
        let (ic, _) = ic_for(
            "<document><section><paragraph>alpha beta</paragraph>\
             <paragraph>gamma</paragraph></section>\
             <section><paragraph>delta</paragraph></section></document>",
        );
        // Each section's subtree content equals the sum of its
        // paragraphs' subtree contents (sections have no own text here).
        let s = ic.scores();
        let sec0 = s.subtree_at(&UnitPath::from_indices([0]));
        let sec1 = s.subtree_at(&UnitPath::from_indices([1]));
        assert!((sec0 + sec1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unit_with_more_rare_keywords_scores_higher() {
        let (ic, _) = ic_for(
            "<document>\
             <section><paragraph>unique distinct special notions</paragraph></section>\
             <section><paragraph>common common common common</paragraph></section>\
             </document>",
        );
        let s = ic.scores();
        let first = s.subtree_at(&UnitPath::from_indices([0]));
        let second = s.subtree_at(&UnitPath::from_indices([1]));
        // Four distinct rare words (weight 3 each) outweigh four
        // occurrences of the most common word (weight 1 each).
        assert!(
            first > second,
            "rare-keyword section should carry more content"
        );
    }

    #[test]
    fn empty_document_has_zero_content() {
        let (ic, _) = ic_for("<document></document>");
        assert_eq!(ic.total(), 0.0);
    }

    #[test]
    fn hand_computed_example() {
        // Document: "web web mobile" in one paragraph, "web" in another.
        // Totals: web=3 (max), mobile=1.
        // ω_web = 1 − log2(3/3) = 1;  ω_mobile = 1 − log2(1/3) ≈ 2.585.
        // Denominator = 3·1 + 1·2.585 = 5.585.
        // p(para1) = (2·1 + 1·2.585)/5.585 ≈ 0.8209
        // p(para2) = 1/5.585 ≈ 0.1791
        let (ic, idx) = ic_for(
            "<document><section><paragraph>web web mobile</paragraph>\
             <paragraph>web</paragraph></section></document>",
        );
        assert_eq!(idx.total_count("web"), 3);
        let paras: Vec<f64> = ic
            .scores()
            .scores()
            .iter()
            .filter(|u| u.kind == Lod::Paragraph)
            .map(|u| u.own)
            .collect();
        let w_mobile = 1.0 - (1.0f64 / 3.0).log2();
        let denom = 3.0 + w_mobile;
        assert!((paras[0] - (2.0 + w_mobile) / denom).abs() < 1e-12);
        assert!((paras[1] - 1.0 / denom).abs() < 1e-12);
    }
}
