//! Information content measures for organizational units.
//!
//! Implements §3.1–3.2 of Leong et al. (ICDCS 2000):
//!
//! * [`weights`] — the keyword weight `ω_a = 1 − log₂(|a_D| / ‖V_D‖∞)`,
//!   computable "without human intervention";
//! * [`ic`] — the static **information content** `p_i` of a unit: the
//!   weighted keyword mass of the unit normalized by the document's, so
//!   contents are additive and the document sums to 1;
//! * [`query`] — keyword queries with per-word emphasis by repetition;
//! * [`qic`] — **query-based information content** (product form): units
//!   re-scored by how much of their keyword mass matches the query;
//! * [`mqic`] — **modified QIC** (scaled sum form): avoids zeroing units
//!   that contain no querying word;
//! * [`sc`] — the **structural characteristic**: the per-unit content
//!   table (the paper's Table 1) and the QIC-descending transmission
//!   ranking used by the fault-tolerant transmitter;
//! * [`scores`] — the shared per-unit score container with additive
//!   subtree aggregation.
//!
//! # Example
//!
//! ```
//! use mrtweb_docmodel::document::Document;
//! use mrtweb_textproc::pipeline::ScPipeline;
//! use mrtweb_content::{ic::InformationContent, query::Query, sc::StructuralCharacteristic};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let doc = Document::parse_xml(
//!     "<document>\
//!      <section><title>Mobile</title><paragraph>mobile web browsing</paragraph></section>\
//!      <section><title>Other</title><paragraph>databases and storage</paragraph></section>\
//!      </document>")?;
//! let pipeline = ScPipeline::default();
//! let index = pipeline.run(&doc);
//!
//! // Static IC sums to 1 across the document.
//! let ic = InformationContent::from_index(&index);
//! assert!((ic.total() - 1.0).abs() < 1e-9);
//!
//! // A query biases content toward matching sections.
//! let query = Query::parse("mobile web", &pipeline);
//! let sc = StructuralCharacteristic::from_index(&index, Some(&query));
//! # let _ = sc;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod ic;
pub mod mqic;
pub mod profile;
pub mod qic;
pub mod query;
pub mod sc;
pub mod scores;
pub mod weights;
