//! Modified query-based information content (MQIC), sum form.
//!
//! QIC zeroes every unit that contains no querying word. The paper
//! therefore offers a "more general definition … by replacing the
//! product between the weights from document keyword and querying word
//! with their sum. To ensure that individual weights are in comparable
//! scale, we associate a scaling factor λ with ω^Q_a":
//!
//! ```text
//! q̃^Q_i = Σ_{a∈n_i} |a_{n_i}| (ω_a + λ·ω^Q_a)
//!         ───────────────────────────────────── ,
//!         Σ_{d∈D}  |d_D|  (ω_d + λ·ω^Q_d)
//!
//! λ = Σ_{a∈D} |a_D| / Σ_{a∈Q} |a_Q|
//! ```
//!
//! Every keyword of the unit contributes (the query term adds 0 for
//! non-querying words), so no unit collapses to zero, and the additive
//! rule still holds.

use mrtweb_textproc::index::DocumentIndex;

use crate::query::Query;
use crate::scores::{ContentScores, UnitScore};
use crate::weights::keyword_weight;

/// The modified query-based information content of every unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ModifiedQueryContent {
    scores: ContentScores,
    lambda: f64,
}

impl ModifiedQueryContent {
    /// Computes MQIC from a document's logical index and a query.
    ///
    /// With an empty query, λ is taken as 0 and MQIC degenerates to the
    /// static information content.
    pub fn from_index(index: &DocumentIndex, query: &Query) -> Self {
        let max = index.max_count().max(1);
        let lambda = if query.total_occurrences() > 0 {
            index.total_occurrences() as f64 / query.total_occurrences() as f64
        } else {
            0.0
        };
        let combined = |stem: &str, doc_count: u64| {
            keyword_weight(doc_count, max) + lambda * query.weight(stem)
        };
        let denom: f64 = index
            .totals()
            .iter()
            .map(|(stem, &n)| n as f64 * combined(stem, n))
            .sum();
        let scores = index
            .entries()
            .iter()
            .map(|e| {
                let num: f64 = e
                    .counts
                    .iter()
                    .map(|(stem, &n)| n as f64 * combined(stem, index.total_count(stem)))
                    .sum();
                UnitScore {
                    path: e.path.clone(),
                    kind: e.kind,
                    synthetic: e.synthetic,
                    own: if denom > 0.0 { num / denom } else { 0.0 },
                }
            })
            .collect();
        ModifiedQueryContent {
            scores: ContentScores::new(scores),
            lambda,
        }
    }

    /// The scaling factor λ that was applied to querying-word weights.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The underlying score container.
    pub fn scores(&self) -> &ContentScores {
        &self.scores
    }

    /// Total MQIC of the document (1.0 for any document with keywords).
    pub fn total(&self) -> f64 {
        self.scores.total()
    }
}

impl From<ModifiedQueryContent> for ContentScores {
    fn from(m: ModifiedQueryContent) -> ContentScores {
        m.scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::InformationContent;
    use crate::qic::QueryContent;
    use mrtweb_docmodel::document::Document;
    use mrtweb_docmodel::unit::UnitPath;
    use mrtweb_textproc::pipeline::ScPipeline;

    const TWO_SECTIONS: &str = "<document>\
        <section><paragraph>mobile web browsing today</paragraph></section>\
        <section><paragraph>database storage engines</paragraph></section>\
        </document>";

    fn setup(xml: &str, query: &str) -> (DocumentIndex, Query) {
        let doc = Document::parse_xml(xml).unwrap();
        let pipeline = ScPipeline::default();
        let idx = pipeline.run(&doc);
        let q = Query::parse(query, &pipeline);
        (idx, q)
    }

    #[test]
    fn normalizes_to_one() {
        let (idx, q) = setup(TWO_SECTIONS, "mobile web");
        let mqic = ModifiedQueryContent::from_index(&idx, &q);
        assert!((mqic.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_matching_units_stay_positive() {
        let (idx, q) = setup(TWO_SECTIONS, "mobile web");
        let mqic = ModifiedQueryContent::from_index(&idx, &q);
        let qic = QueryContent::from_index(&idx, &q);
        let second = UnitPath::from_indices([1]);
        assert_eq!(
            qic.scores().subtree_at(&second),
            0.0,
            "QIC zeroes the non-matching section"
        );
        assert!(
            mqic.scores().subtree_at(&second) > 0.0,
            "MQIC must keep the non-matching section positive"
        );
    }

    #[test]
    fn query_still_biases_matching_units() {
        let (idx, q) = setup(TWO_SECTIONS, "mobile web browsing");
        let mqic = ModifiedQueryContent::from_index(&idx, &q);
        let ic = InformationContent::from_index(&idx);
        let first = UnitPath::from_indices([0]);
        assert!(
            mqic.scores().subtree_at(&first) > ic.scores().subtree_at(&first),
            "MQIC should lift the matching section above its static IC"
        );
    }

    #[test]
    fn empty_query_degenerates_to_ic() {
        let (idx, _) = setup(TWO_SECTIONS, "");
        let mqic = ModifiedQueryContent::from_index(&idx, &Query::new());
        let ic = InformationContent::from_index(&idx);
        assert_eq!(mqic.lambda(), 0.0);
        for (m, i) in mqic.scores().scores().iter().zip(ic.scores().scores()) {
            assert!((m.own - i.own).abs() < 1e-12);
        }
    }

    #[test]
    fn lambda_is_occurrence_ratio() {
        let (idx, q) = setup(TWO_SECTIONS, "mobile web");
        let mqic = ModifiedQueryContent::from_index(&idx, &q);
        let expect = idx.total_occurrences() as f64 / 2.0;
        assert!((mqic.lambda() - expect).abs() < 1e-12);
    }

    #[test]
    fn additive_rule_holds() {
        let (idx, q) = setup(TWO_SECTIONS, "mobile");
        let mqic = ModifiedQueryContent::from_index(&idx, &q);
        let s = mqic.scores();
        let sum =
            s.subtree_at(&UnitPath::from_indices([0])) + s.subtree_at(&UnitPath::from_indices([1]));
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
