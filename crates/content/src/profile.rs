//! User profiles with relevance feedback.
//!
//! The paper surveys profile-based filtering (§2: profiles "capture
//! individual users' interests", updated through relevance feedback)
//! and proposes "intelligent prefetching based on information content
//! and user-profiling" as future work (§6). [`UserProfile`] is that
//! component: a weighted stem vector that
//!
//! * accumulates the keyword statistics of documents the user accepted
//!   (positive feedback) and discards those of rejected ones (negative
//!   feedback),
//! * decays exponentially so stale interests fade, and
//! * exports a standing [`Query`] so the whole QIC machinery — unit
//!   ranking, prefetch priorities — can run against the profile when
//!   the user has typed no explicit query.

use std::collections::BTreeMap;

use mrtweb_textproc::index::DocumentIndex;
use serde::{Deserialize, Serialize};

use crate::query::Query;

/// A weighted interest vector over keyword stems.
///
/// # Example
///
/// ```
/// use mrtweb_content::profile::UserProfile;
/// use mrtweb_docmodel::document::Document;
/// use mrtweb_textproc::pipeline::ScPipeline;
///
/// # fn main() -> Result<(), mrtweb_docmodel::xml::ParseError> {
/// let pipeline = ScPipeline::default();
/// let read = Document::parse_xml(
///     "<document><paragraph>mobile wireless bandwidth mobile</paragraph></document>")?;
/// let mut profile = UserProfile::new(0.9, 1.0);
/// profile.accept(&pipeline.run(&read));
/// assert!(profile.interest("mobil") > profile.interest("bandwidth"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// stem → interest weight (may not go below zero).
    interests: BTreeMap<String, f64>,
    /// Multiplicative decay applied to every weight per feedback event.
    decay: f64,
    /// Learning rate for new evidence.
    rate: f64,
    /// Feedback events recorded.
    events: u64,
}

impl UserProfile {
    /// Creates an empty profile.
    ///
    /// `decay ∈ (0, 1]` fades old interests at every feedback event;
    /// `rate > 0` scales how strongly one document shifts the profile.
    ///
    /// # Panics
    ///
    /// Panics on parameters outside those ranges.
    pub fn new(decay: f64, rate: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        assert!(rate > 0.0, "learning rate must be positive");
        UserProfile {
            interests: BTreeMap::new(),
            decay,
            rate,
            events: 0,
        }
    }

    /// Positive feedback: the user read/kept this document.
    pub fn accept(&mut self, index: &DocumentIndex) {
        self.feedback(index, 1.0);
    }

    /// Negative feedback: the user discarded this document early.
    pub fn reject(&mut self, index: &DocumentIndex) {
        self.feedback(index, -0.5);
    }

    fn feedback(&mut self, index: &DocumentIndex, sign: f64) {
        // Normalize by document mass so long documents don't dominate.
        let total = index.total_occurrences().max(1) as f64;
        for w in self.interests.values_mut() {
            *w *= self.decay;
        }
        for (stem, &count) in index.totals() {
            let delta = sign * self.rate * count as f64 / total;
            let entry = self.interests.entry(stem.clone()).or_insert(0.0);
            *entry = (*entry + delta).max(0.0);
        }
        self.interests.retain(|_, w| *w > 1e-9);
        self.events += 1;
    }

    /// Current interest weight of a stem (0 if unknown).
    pub fn interest(&self, stem: &str) -> f64 {
        self.interests.get(stem).copied().unwrap_or(0.0)
    }

    /// Number of feedback events absorbed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of stems with positive interest.
    pub fn len(&self) -> usize {
        self.interests.len()
    }

    /// Whether the profile has learned nothing yet.
    pub fn is_empty(&self) -> bool {
        self.interests.is_empty()
    }

    /// The `top` most-interesting stems, strongest first.
    pub fn top_stems(&self, top: usize) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self
            .interests
            .iter()
            .map(|(s, &w)| (s.as_str(), w))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.truncate(top);
        v
    }

    /// Exports a standing query from the `top` strongest interests.
    ///
    /// Weights are quantized to occurrence counts (the strongest stem
    /// maps to its proportional share of `granularity` occurrences), so
    /// the result plugs into the exact QIC formulas.
    pub fn to_query(&self, top: usize, granularity: u64) -> Query {
        let stems = self.top_stems(top);
        let max = stems.first().map_or(0.0, |&(_, w)| w);
        if max <= 0.0 {
            return Query::new();
        }
        Query::from_stems(stems.into_iter().map(|(s, w)| {
            let count = ((w / max) * granularity as f64).round() as u64;
            (s.to_owned(), count.max(1))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::document::Document;
    use mrtweb_textproc::pipeline::ScPipeline;

    fn index(text: &str) -> DocumentIndex {
        let doc = Document::parse_xml(&format!(
            "<document><paragraph>{text}</paragraph></document>"
        ))
        .unwrap();
        ScPipeline::default().run(&doc)
    }

    #[test]
    fn accept_raises_interest() {
        let mut p = UserProfile::new(0.95, 1.0);
        p.accept(&index("mobile wireless mobile"));
        assert!(p.interest("mobil") > 0.0);
        assert!(p.interest("mobil") > p.interest("wireless"));
        assert_eq!(p.events(), 1);
    }

    #[test]
    fn reject_lowers_interest_but_not_below_zero() {
        let mut p = UserProfile::new(0.95, 1.0);
        p.accept(&index("database storage"));
        let before = p.interest("databas");
        p.reject(&index("database storage"));
        let after = p.interest("databas");
        assert!(after < before);
        p.reject(&index("database storage"));
        p.reject(&index("database storage"));
        assert!(p.interest("databas") >= 0.0);
    }

    #[test]
    fn decay_fades_stale_interests() {
        let mut p = UserProfile::new(0.5, 1.0);
        p.accept(&index("vintage topic"));
        let early = p.interest("vintag");
        for _ in 0..6 {
            p.accept(&index("fresh subject"));
        }
        assert!(
            p.interest("vintag") < early * 0.1,
            "old interest should fade"
        );
        assert!(p.interest("fresh") > p.interest("vintag"));
    }

    #[test]
    fn standing_query_reflects_top_interests() {
        let mut p = UserProfile::new(1.0, 1.0);
        for _ in 0..3 {
            p.accept(&index("mobile web mobile web mobile"));
        }
        p.accept(&index("gardening"));
        let q = p.to_query(2, 4);
        assert!(q.count("mobil") >= q.count("web"));
        assert_eq!(q.count("garden"), 0, "only the top-2 stems export");
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_profile_exports_empty_query() {
        let p = UserProfile::new(0.9, 1.0);
        assert!(p.is_empty());
        assert!(p.to_query(5, 4).is_empty());
        assert!(p.top_stems(3).is_empty());
    }

    #[test]
    fn long_documents_do_not_dominate() {
        let mut p = UserProfile::new(1.0, 1.0);
        p.accept(&index(&"niche ".repeat(3)));
        p.accept(&index(&"verbose ".repeat(300)));
        // Both normalized: equal single-stem documents get equal weight.
        assert!((p.interest("nich") - p.interest("verbos")).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn bad_decay_panics() {
        let _ = UserProfile::new(0.0, 1.0);
    }
}
