//! EWMA estimation of the channel corruption probability.
//!
//! The paper suggests choosing the redundancy ratio γ "as an adaptive
//! function of the observed summarized value of α, using perhaps a kind
//! of EWMA measure" (§4.2, citing the authors' cache-management work).
//! [`EwmaEstimator`] maintains that summarized value from per-packet
//! intact/corrupted observations.

use serde::{Deserialize, Serialize};

/// Exponentially-weighted moving average of a 0/1 corruption stream.
///
/// `estimate ← (1 − β)·estimate + β·observation`, where `β` is the gain
/// (weight of the newest observation).
///
/// # Example
///
/// ```
/// use mrtweb_channel::ewma::EwmaEstimator;
///
/// let mut est = EwmaEstimator::new(0.1, 0.0);
/// for _ in 0..200 {
///     est.observe(true); // persistent corruption
/// }
/// assert!(est.estimate() > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaEstimator {
    gain: f64,
    estimate: f64,
    observations: u64,
}

impl EwmaEstimator {
    /// Creates an estimator with the given gain and initial estimate.
    ///
    /// # Panics
    ///
    /// Panics unless `gain ∈ (0, 1]` and `initial ∈ [0, 1]`.
    pub fn new(gain: f64, initial: f64) -> Self {
        assert!(
            gain > 0.0 && gain <= 1.0,
            "gain must be in (0, 1], got {gain}"
        );
        assert!(
            (0.0..=1.0).contains(&initial),
            "initial estimate must be in [0, 1]"
        );
        EwmaEstimator {
            gain,
            estimate: initial,
            observations: 0,
        }
    }

    /// Records one packet observation (`true` = corrupted).
    pub fn observe(&mut self, corrupted: bool) {
        let x = if corrupted { 1.0 } else { 0.0 };
        self.estimate = (1.0 - self.gain) * self.estimate + self.gain * x;
        self.observations += 1;
    }

    /// Records a whole batch: `corrupted` out of `total` packets, in
    /// unspecified order (applies the batch mean once per packet).
    ///
    /// # Panics
    ///
    /// Panics if `corrupted > total`.
    pub fn observe_batch(&mut self, corrupted: usize, total: usize) {
        assert!(corrupted <= total, "corrupted count exceeds total");
        if total == 0 {
            return;
        }
        let mean = corrupted as f64 / total as f64;
        for _ in 0..total {
            self.estimate = (1.0 - self.gain) * self.estimate + self.gain * mean;
        }
        self.observations += total as u64;
    }

    /// The current estimate of α.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// The gain β.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Total observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Default for EwmaEstimator {
    /// Gain 0.05 starting from the paper's default α = 0.1.
    fn default() -> Self {
        EwmaEstimator::new(0.05, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_true_rate() {
        let mut est = EwmaEstimator::new(0.02, 0.5);
        // Deterministic stream at 30% corruption.
        for i in 0..10_000 {
            est.observe(i % 10 < 3);
        }
        assert!(
            (est.estimate() - 0.3).abs() < 0.05,
            "estimate {}",
            est.estimate()
        );
    }

    #[test]
    fn estimate_stays_in_unit_interval() {
        let mut est = EwmaEstimator::new(1.0, 0.0);
        est.observe(true);
        assert_eq!(est.estimate(), 1.0);
        est.observe(false);
        assert_eq!(est.estimate(), 0.0);
    }

    #[test]
    fn tracks_regime_changes() {
        let mut est = EwmaEstimator::new(0.1, 0.1);
        for _ in 0..200 {
            est.observe(false);
        }
        let low = est.estimate();
        for _ in 0..200 {
            est.observe(true);
        }
        assert!(est.estimate() > 0.9 && low < 0.01);
    }

    #[test]
    fn batch_equals_repeated_mean() {
        let mut a = EwmaEstimator::new(0.1, 0.2);
        let mut b = a;
        a.observe_batch(5, 10);
        for _ in 0..10 {
            b.observe(false);
            // direct comparison not possible per-packet; emulate mean 0.5
        }
        // Instead verify observation counting and range.
        assert_eq!(a.observations(), 10);
        assert!(a.estimate() > 0.2 && a.estimate() < 0.5);
        let _ = b;
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut est = EwmaEstimator::default();
        let before = est.estimate();
        est.observe_batch(0, 0);
        assert_eq!(est.estimate(), before);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "gain must be in")]
    fn zero_gain_panics() {
        let _ = EwmaEstimator::new(0.0, 0.1);
    }
}
