//! A deterministic simulated clock.

use std::fmt;

/// Virtual time in seconds, advanced explicitly by the simulation.
///
/// # Example
///
/// ```
/// use mrtweb_channel::clock::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance(0.108);
/// clock.advance(0.108);
/// assert!((clock.now() - 0.216).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock { now: 0.0 }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or NaN — simulated time only
    /// moves forward.
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "time cannot move backwards (got {seconds})");
        self.now += seconds;
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = SimClock::new();
        c.advance(9.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time cannot move backwards")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    fn zero_advance_is_fine() {
        let mut c = SimClock::new();
        c.advance(0.0);
        assert_eq!(c.now(), 0.0);
    }
}
