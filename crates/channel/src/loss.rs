//! The per-packet corruption abstraction.

/// A model deciding, packet by packet, whether transmission corrupts it.
///
/// The channel is FIFO: packets are never reordered, only corrupted (a
/// lost packet manifests as a corrupted/absent frame detectable through
/// the sequence numbers of later frames).
pub trait LossModel {
    /// Draws the fate of the next packet: `true` means corrupted.
    fn next_corrupted(&mut self) -> bool;

    /// The long-run fraction of corrupted packets this model converges
    /// to — the effective `α` seen by redundancy planning.
    fn long_run_rate(&self) -> f64;
}

/// A deterministic loss model replaying a fixed corruption mask —
/// useful for failure-injection tests (e.g. "exactly the clear-text
/// packets are lost").
///
/// # Example
///
/// ```
/// use mrtweb_channel::loss::{LossModel, MaskLoss};
///
/// let mut mask = MaskLoss::new(vec![true, false, false]);
/// assert!(mask.next_corrupted());      // packet 0 corrupted
/// assert!(!mask.next_corrupted());     // packet 1 intact
/// assert!(!mask.next_corrupted());     // packet 2 intact
/// assert!(!mask.next_corrupted());     // beyond the mask: intact
/// ```
#[derive(Debug, Clone)]
pub struct MaskLoss {
    mask: Vec<bool>,
    pos: usize,
}

impl MaskLoss {
    /// Creates a model that corrupts exactly the `true` positions of
    /// `mask`; packets beyond the mask are intact.
    pub fn new(mask: Vec<bool>) -> Self {
        MaskLoss { mask, pos: 0 }
    }

    /// A model that never corrupts anything.
    pub fn perfect() -> Self {
        MaskLoss::new(Vec::new())
    }

    /// Number of packets consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl LossModel for MaskLoss {
    fn next_corrupted(&mut self) -> bool {
        let fate = self.mask.get(self.pos).copied().unwrap_or(false);
        self.pos += 1;
        fate
    }

    fn long_run_rate(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|&&c| c).count() as f64 / self.mask.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_replays_exactly() {
        let mut m = MaskLoss::new(vec![false, true, true, false]);
        let fates: Vec<bool> = (0..6).map(|_| m.next_corrupted()).collect();
        assert_eq!(fates, [false, true, true, false, false, false]);
        assert_eq!(m.position(), 6);
    }

    #[test]
    fn perfect_never_corrupts() {
        let mut m = MaskLoss::perfect();
        assert!((0..100).all(|_| !m.next_corrupted()));
        assert_eq!(m.long_run_rate(), 0.0);
    }

    #[test]
    fn long_run_rate_is_mask_density() {
        let m = MaskLoss::new(vec![true, false, true, false]);
        assert_eq!(m.long_run_rate(), 0.5);
    }
}
