//! The paper's i.i.d. corruption model.
//!
//! "Assuming that the probability a packet will be corrupted is α and
//! that the corruption events of individual packets are independent"
//! (§4.1) — each packet is corrupted with fixed probability α,
//! independently of all others.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::LossModel;

/// Independent per-packet corruption with probability `α`.
///
/// # Example
///
/// ```
/// use mrtweb_channel::bernoulli::BernoulliChannel;
/// use mrtweb_channel::loss::LossModel;
///
/// let mut ch = BernoulliChannel::new(0.0, 1);
/// assert!(!ch.next_corrupted()); // α = 0 never corrupts
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliChannel {
    alpha: f64,
    rng: StdRng,
}

impl BernoulliChannel {
    /// Creates the model with corruption probability `alpha` and a
    /// deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha ∈ [0, 1]`.
    pub fn new(alpha: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        BernoulliChannel {
            alpha,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured corruption probability.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Changes the corruption probability mid-stream (e.g. to model a
    /// client walking into a tunnel).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha ∈ [0, 1]`.
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        self.alpha = alpha;
    }
}

impl LossModel for BernoulliChannel {
    fn next_corrupted(&mut self) -> bool {
        self.rng.random_bool(self.alpha)
    }

    fn long_run_rate(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rate_matches_alpha() {
        for &alpha in &[0.1, 0.3, 0.5] {
            let mut ch = BernoulliChannel::new(alpha, 7);
            let n = 50_000;
            let corrupted = (0..n).filter(|_| ch.next_corrupted()).count();
            let rate = corrupted as f64 / n as f64;
            assert!(
                (rate - alpha).abs() < 0.01,
                "rate {rate} far from alpha {alpha}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut ch = BernoulliChannel::new(0.4, seed);
            (0..64).map(|_| ch.next_corrupted()).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn extremes() {
        let mut never = BernoulliChannel::new(0.0, 1);
        let mut always = BernoulliChannel::new(1.0, 1);
        for _ in 0..100 {
            assert!(!never.next_corrupted());
            assert!(always.next_corrupted());
        }
    }

    #[test]
    fn set_alpha_changes_behaviour() {
        let mut ch = BernoulliChannel::new(0.0, 1);
        ch.set_alpha(1.0);
        assert!(ch.next_corrupted());
        assert_eq!(ch.long_run_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        let _ = BernoulliChannel::new(1.5, 0);
    }
}
