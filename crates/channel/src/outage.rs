//! Disconnection (outage) modelling.
//!
//! The paper's title phenomenon — *weak connectivity* — is more than
//! per-packet corruption: mobile clients suffer whole disconnection
//! windows ("occasional disconnection during transmission of web
//! information is common", §4). [`OutageChannel`] wraps any base loss
//! model with an on/off outage process: during an outage every packet
//! is lost; between outages the base model applies. Sojourn times are
//! geometric, so the composite is still a simple Markov-modulated
//! channel whose long-run rate has a closed form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::LossModel;

/// A loss model with geometric connected/disconnected periods layered
/// over a base model.
///
/// # Example
///
/// ```
/// use mrtweb_channel::bernoulli::BernoulliChannel;
/// use mrtweb_channel::loss::LossModel;
/// use mrtweb_channel::outage::OutageChannel;
///
/// // 10% base corruption, outages hitting 1% of packets and lasting
/// // ~50 packets on average.
/// let ch = OutageChannel::new(BernoulliChannel::new(0.1, 1), 0.01, 0.02, 2);
/// let rate = ch.long_run_rate();
/// assert!(rate > 0.1 && rate < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct OutageChannel<L> {
    base: L,
    /// P(connected → disconnected) per packet.
    p_drop: f64,
    /// P(disconnected → connected) per packet.
    p_recover: f64,
    disconnected: bool,
    rng: StdRng,
}

impl<L: LossModel> OutageChannel<L> {
    /// Wraps `base` with an outage process.
    ///
    /// # Panics
    ///
    /// Panics unless both transition probabilities are in `[0, 1]` and
    /// at least one is positive.
    pub fn new(base: L, p_drop: f64, p_recover: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_drop), "p_drop must be in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&p_recover),
            "p_recover must be in [0, 1]"
        );
        assert!(
            p_drop + p_recover > 0.0,
            "the outage chain must be able to move"
        );
        OutageChannel {
            base,
            p_drop,
            p_recover,
            disconnected: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether the channel is currently in an outage.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }

    /// Stationary probability of being disconnected.
    pub fn stationary_outage(&self) -> f64 {
        self.p_drop / (self.p_drop + self.p_recover)
    }

    /// The wrapped base model.
    pub fn base(&self) -> &L {
        &self.base
    }
}

impl<L: LossModel> LossModel for OutageChannel<L> {
    fn next_corrupted(&mut self) -> bool {
        let flip = if self.disconnected {
            self.rng.random_bool(self.p_recover)
        } else {
            self.rng.random_bool(self.p_drop)
        };
        if flip {
            self.disconnected = !self.disconnected;
        }
        if self.disconnected {
            // Every packet in an outage is lost. The base model still
            // advances so reconnection resumes an uncorrelated stream.
            let _ = self.base.next_corrupted();
            true
        } else {
            self.base.next_corrupted()
        }
    }

    fn long_run_rate(&self) -> f64 {
        let p_out = self.stationary_outage();
        p_out + (1.0 - p_out) * self.base.long_run_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::BernoulliChannel;
    use crate::loss::MaskLoss;

    #[test]
    fn empirical_rate_matches_long_run() {
        let mut ch = OutageChannel::new(BernoulliChannel::new(0.1, 3), 0.02, 0.1, 7);
        let expect = ch.long_run_rate();
        let n = 300_000;
        let corrupted = (0..n).filter(|_| ch.next_corrupted()).count();
        let rate = corrupted as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn outages_produce_long_loss_runs() {
        let mut ch = OutageChannel::new(MaskLoss::perfect(), 0.01, 0.02, 5);
        let fates: Vec<bool> = (0..200_000).map(|_| ch.next_corrupted()).collect();
        let mut longest = 0usize;
        let mut cur = 0usize;
        for f in fates {
            if f {
                cur += 1;
                longest = longest.max(cur);
            } else {
                cur = 0;
            }
        }
        // Mean outage is ~50 packets; the longest should far exceed
        // anything a 0-corruption base could produce.
        assert!(longest > 50, "longest outage run {longest}");
    }

    #[test]
    fn no_outage_degenerates_to_base() {
        let mut ch = OutageChannel::new(BernoulliChannel::new(0.2, 9), 0.0, 1.0, 1);
        assert_eq!(ch.long_run_rate(), 0.2);
        let n = 50_000;
        let rate = (0..n).filter(|_| ch.next_corrupted()).count() as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01);
    }

    #[test]
    fn stationary_outage_formula() {
        let ch = OutageChannel::new(MaskLoss::perfect(), 0.01, 0.03, 0);
        assert!((ch.stationary_outage() - 0.25).abs() < 1e-12);
        assert!(!ch.is_disconnected());
    }

    #[test]
    #[should_panic(expected = "must be able to move")]
    fn frozen_chain_panics() {
        let _ = OutageChannel::new(MaskLoss::perfect(), 0.0, 0.0, 0);
    }
}
