//! A lossy FIFO link: bandwidth + loss model + clock, with real byte
//! corruption for end-to-end wire tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bandwidth::Bandwidth;
use crate::clock::SimClock;
use crate::loss::LossModel;

/// Fate of one transmitted packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Virtual time at which the last byte arrived.
    pub arrival_time: f64,
    /// Whether the packet was corrupted in flight.
    pub corrupted: bool,
}

/// A simulated weakly-connected link.
///
/// Packets are pushed through in FIFO order; each consumes wire time
/// according to the bandwidth and is corrupted according to the loss
/// model. [`Link::send_bytes`] additionally *applies* corruption to a
/// real byte buffer (flipping bits) so CRC-based detection can be
/// exercised end to end.
///
/// # Example
///
/// ```
/// use mrtweb_channel::link::Link;
/// use mrtweb_channel::bandwidth::Bandwidth;
/// use mrtweb_channel::loss::MaskLoss;
///
/// let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
/// let d1 = link.send(260);
/// let d2 = link.send(260);
/// assert!(!d1.corrupted && !d2.corrupted);
/// assert!(d2.arrival_time > d1.arrival_time); // FIFO, serialized
/// ```
#[derive(Debug)]
pub struct Link<L> {
    bandwidth: Bandwidth,
    loss: L,
    clock: SimClock,
    rng: StdRng,
    sent: u64,
    corrupted: u64,
}

impl<L: LossModel> Link<L> {
    /// Creates a link over the given bandwidth and loss model.
    pub fn new(bandwidth: Bandwidth, loss: L, seed: u64) -> Self {
        Link {
            bandwidth,
            loss,
            clock: SimClock::new(),
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
            corrupted: 0,
        }
    }

    /// Transmits a packet of `bytes` bytes; advances virtual time.
    pub fn send(&mut self, bytes: usize) -> Delivery {
        self.clock.advance(self.bandwidth.seconds_for(bytes));
        let corrupted = self.loss.next_corrupted();
        self.sent += 1;
        if corrupted {
            self.corrupted += 1;
        }
        Delivery {
            arrival_time: self.clock.now(),
            corrupted,
        }
    }

    /// Transmits a real buffer: on corruption, flips 1–4 random bits in
    /// place so that a CRC check downstream fails.
    pub fn send_bytes(&mut self, data: &mut [u8]) -> Delivery {
        let delivery = self.send(data.len());
        if delivery.corrupted && !data.is_empty() {
            let flips = self.rng.random_range(1..=4usize);
            for _ in 0..flips {
                let byte = self.rng.random_range(0..data.len());
                let bit = self.rng.random_range(0..8u32);
                data[byte] ^= 1 << bit;
            }
        }
        delivery
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Total packets sent.
    pub fn packets_sent(&self) -> u64 {
        self.sent
    }

    /// Total packets corrupted.
    pub fn packets_corrupted(&self) -> u64 {
        self.corrupted
    }

    /// The underlying loss model.
    pub fn loss(&self) -> &L {
        &self.loss
    }

    /// Mutable access to the loss model (e.g. to re-tune α mid-run).
    pub fn loss_mut(&mut self) -> &mut L {
        &mut self.loss
    }

    /// Resets clock and counters, keeping the loss model state.
    pub fn reset(&mut self) {
        self.clock.reset();
        self.sent = 0;
        self.corrupted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::BernoulliChannel;
    use crate::loss::MaskLoss;

    #[test]
    fn time_accumulates_per_packet() {
        let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
        for i in 1..=10 {
            let d = link.send(260);
            assert!((d.arrival_time - i as f64 * 260.0 / 2400.0).abs() < 1e-9);
        }
        assert_eq!(link.packets_sent(), 10);
        assert_eq!(link.packets_corrupted(), 0);
    }

    #[test]
    fn mask_controls_fates() {
        let mut link = Link::new(
            Bandwidth::default(),
            MaskLoss::new(vec![true, false, true]),
            0,
        );
        assert!(link.send(10).corrupted);
        assert!(!link.send(10).corrupted);
        assert!(link.send(10).corrupted);
        assert_eq!(link.packets_corrupted(), 2);
    }

    #[test]
    fn send_bytes_corrupts_buffer_only_when_marked() {
        let mut link = Link::new(Bandwidth::default(), MaskLoss::new(vec![true, false]), 42);
        let original = vec![0u8; 64];
        let mut first = original.clone();
        let d = link.send_bytes(&mut first);
        assert!(d.corrupted);
        assert_ne!(first, original, "corrupted packet must differ");
        let mut second = original.clone();
        let d = link.send_bytes(&mut second);
        assert!(!d.corrupted);
        assert_eq!(second, original, "intact packet must be unchanged");
    }

    #[test]
    fn reset_clears_counters_and_time() {
        let mut link = Link::new(Bandwidth::default(), BernoulliChannel::new(0.5, 1), 0);
        for _ in 0..10 {
            link.send(100);
        }
        link.reset();
        assert_eq!(link.now(), 0.0);
        assert_eq!(link.packets_sent(), 0);
    }

    #[test]
    fn loss_mut_allows_retuning() {
        let mut link = Link::new(Bandwidth::default(), BernoulliChannel::new(0.0, 1), 0);
        link.loss_mut().set_alpha(1.0);
        assert!(link.send(10).corrupted);
    }
}
