//! Shared broadcast medium: one transmission, many independent taps.
//!
//! Unicast links ([`crate::link`]) pair one sender with one receiver.
//! A broadcast carousel inverts that: the base station transmits each
//! frame *once* and every tuned-in listener hears its own copy through
//! its own radio conditions. [`SharedMedium`] models exactly that — a
//! single `transmit` fans one frame out to `L` taps, each tap drawing
//! its fate from a private deterministic [`FaultScheduler`], so two
//! listeners standing in different fade patterns see different losses
//! of the *same* on-air schedule.
//!
//! Broadcast semantics restrict the fault vocabulary: there is no
//! per-listener retransmission stream, so multiplicity faults
//! (duplicate, reorder) degrade to clean delivery, while drop and
//! outage both mean "the frame never reached this tap". Byte-damaging
//! faults (bit flips, bursts, garbles, truncation) corrupt the tap's
//! private copy — the frame CRC is the listener's only defense, exactly
//! as on the unicast path.

use crate::fault::{apply_fault, FaultConfig, FaultEvent, FaultKind, FaultScheduler};

/// What one tap heard for one transmitted frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Nothing arrived (drop or disconnection window).
    Lost,
    /// These bytes arrived — possibly damaged; the receiver's CRC
    /// discipline decides whether to trust them.
    Heard(Vec<u8>),
}

impl Delivery {
    /// The received bytes, when anything arrived at all.
    #[must_use]
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            Delivery::Lost => None,
            Delivery::Heard(b) => Some(b),
        }
    }
}

/// One listener's radio: a private fault schedule over the shared air.
#[derive(Debug)]
struct Tap {
    scheduler: FaultScheduler,
}

/// A broadcast channel carrying one frame per slot to many taps.
#[derive(Debug)]
pub struct SharedMedium {
    taps: Vec<Tap>,
    transmitted: u64,
}

impl SharedMedium {
    /// A medium with `listeners` taps, each seeded from `base_seed`
    /// and its tap index so runs replay deterministically while taps
    /// stay mutually independent.
    #[must_use]
    pub fn new(cfg: &FaultConfig, base_seed: u64, listeners: usize) -> Self {
        let taps = (0..listeners)
            .map(|i| Tap {
                scheduler: FaultScheduler::new(
                    cfg.clone(),
                    base_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                ),
            })
            .collect();
        SharedMedium {
            taps,
            transmitted: 0,
        }
    }

    /// Number of taps on the medium.
    #[must_use]
    pub fn listeners(&self) -> usize {
        self.taps.len()
    }

    /// Frames transmitted so far.
    #[must_use]
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Transmits one frame to every tap; element `i` of the result is
    /// what tap `i` heard.
    pub fn transmit(&mut self, frame: &[u8]) -> Vec<Delivery> {
        self.transmitted += 1;
        self.taps
            .iter_mut()
            .map(|tap| Self::receive(tap, frame))
            .collect()
    }

    /// Transmits one frame to a single tap (listeners tuned to the
    /// same channel but joining at different times consume different
    /// prefixes of their fault schedules).
    ///
    /// # Panics
    ///
    /// Panics if `tap` is out of range.
    pub fn transmit_to(&mut self, tap: usize, frame: &[u8]) -> Delivery {
        assert!(tap < self.taps.len(), "tap {tap} out of range");
        Self::receive(&mut self.taps[tap], frame)
    }

    fn receive(tap: &mut Tap, frame: &[u8]) -> Delivery {
        let kind = match tap.scheduler.next_kind(frame.len()) {
            // No per-listener stream to duplicate or reorder within:
            // the carousel itself is the retransmission.
            FaultKind::Duplicate | FaultKind::Reorder { .. } => FaultKind::Deliver,
            k => k,
        };
        match kind {
            FaultKind::Drop | FaultKind::Outage => Delivery::Lost,
            FaultKind::Deliver => Delivery::Heard(frame.to_vec()),
            damaging => {
                let mut copy = frame.to_vec();
                apply_fault(damaging, &mut copy);
                Delivery::Heard(copy)
            }
        }
    }

    /// The fault trace of tap `i` (for replay and reporting).
    #[must_use]
    pub fn trace(&self, tap: usize) -> &[FaultEvent] {
        self.taps.get(tap).map_or(&[], |t| t.scheduler.trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_medium_delivers_every_frame_verbatim() {
        let mut medium = SharedMedium::new(&FaultConfig::clean(), 1, 4);
        for slot in 0..16u8 {
            let frame = vec![slot; 32];
            for d in medium.transmit(&frame) {
                assert_eq!(d, Delivery::Heard(frame.clone()));
            }
        }
        assert_eq!(medium.transmitted(), 16);
        assert_eq!(medium.listeners(), 4);
    }

    #[test]
    fn taps_fail_independently() {
        let mut medium = SharedMedium::new(&FaultConfig::dropping(0.5), 7, 2);
        let mut fates = [Vec::new(), Vec::new()];
        for _ in 0..64 {
            let out = medium.transmit(&[0xAB; 16]);
            for (tap, d) in out.into_iter().enumerate() {
                fates[tap].push(d == Delivery::Lost);
            }
        }
        assert_ne!(fates[0], fates[1], "taps shared one fault stream");
        assert!(fates.iter().all(|f| f.iter().any(|&lost| lost)));
        assert!(fates.iter().all(|f| f.iter().any(|&lost| !lost)));
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = |(): ()| {
            let mut medium = SharedMedium::new(&FaultConfig::mixed(), 99, 3);
            (0..48)
                .map(|slot| medium.transmit(&[slot as u8; 24]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    fn multiplicity_faults_degrade_to_delivery() {
        // A config that only duplicates/reorders must behave cleanly.
        let cfg = FaultConfig {
            p_duplicate: 0.5,
            p_reorder: 0.5,
            ..FaultConfig::clean()
        };
        let mut medium = SharedMedium::new(&cfg, 3, 1);
        for _ in 0..32 {
            let out = medium.transmit(&[1, 2, 3, 4]);
            assert_eq!(out, vec![Delivery::Heard(vec![1, 2, 3, 4])]);
        }
    }

    #[test]
    fn damaging_faults_change_bytes_not_count() {
        let mut medium = SharedMedium::new(&FaultConfig::corrupting(0.9), 5, 1);
        let frame = vec![0u8; 64];
        let mut damaged = 0;
        for _ in 0..64 {
            match medium.transmit_to(0, &frame) {
                Delivery::Lost => {}
                Delivery::Heard(b) => {
                    assert!(b.len() <= frame.len());
                    if b != frame {
                        damaged += 1;
                    }
                }
            }
        }
        assert!(damaged > 0, "corrupting config never damaged a frame");
        assert!(!medium.trace(0).is_empty());
    }
}
