//! Weakly-connected wireless channel models.
//!
//! The paper characterizes the mobile environment by "low communication
//! bandwidth and poor connectivity": packets sent over the FIFO wireless
//! channel arrive either intact or detectably corrupted, independently
//! with probability `α`, over a typical 19.2 kbps link (§4.1, Table 2).
//! This crate provides:
//!
//! * [`clock`] — a deterministic simulated clock;
//! * [`bandwidth`] — transmission-time accounting for a fixed-rate link;
//! * [`loss`] — the [`loss::LossModel`] trait for per-packet corruption
//!   decisions;
//! * [`bernoulli`] — the paper's i.i.d. corruption model;
//! * [`gilbert`] — a Gilbert–Elliott bursty channel (ablation of the
//!   independence assumption);
//! * [`ewma`] — an exponentially-weighted moving-average estimator of
//!   the corruption probability, the paper's suggested driver for
//!   adaptive redundancy (§4.2, citing the authors' cache-management work);
//! * [`link`] — a lossy FIFO link combining bandwidth, loss model and
//!   clock, with real byte-corruption for end-to-end wire tests;
//! * [`medium`] — a shared broadcast medium: one transmitted frame
//!   fans out to many taps, each with an independent fault schedule.
//!
//! # Example
//!
//! ```
//! use mrtweb_channel::bernoulli::BernoulliChannel;
//! use mrtweb_channel::loss::LossModel;
//! use mrtweb_channel::bandwidth::Bandwidth;
//!
//! let mut ch = BernoulliChannel::new(0.1, 42);
//! let corrupted = (0..10_000).filter(|_| ch.next_corrupted()).count();
//! assert!((corrupted as f64 / 10_000.0 - 0.1).abs() < 0.02);
//!
//! // A 260-byte cooked packet takes ~108 ms at 19.2 kbps.
//! let bw = Bandwidth::from_kbps(19.2);
//! assert!((bw.seconds_for(260) - 0.10833).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod bernoulli;
pub mod clock;
pub mod ewma;
pub mod fault;
pub mod gilbert;
pub mod link;
pub mod loss;
pub mod medium;
pub mod outage;
