//! A Gilbert–Elliott bursty channel.
//!
//! The paper assumes independent per-packet corruption; real wireless
//! links fade in *bursts*. The classic two-state Gilbert–Elliott chain —
//! a Good state with low corruption and a Bad state with high
//! corruption, with geometric sojourn times — lets the benchmarks ablate
//! the independence assumption while keeping the same long-run
//! corruption rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::LossModel;

/// The channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Low-corruption state.
    Good,
    /// High-corruption (fading) state.
    Bad,
}

/// A two-state Markov-modulated corruption model.
///
/// # Example
///
/// ```
/// use mrtweb_channel::gilbert::GilbertElliott;
/// use mrtweb_channel::loss::LossModel;
///
/// // Matched to a long-run rate: p(bad) = 0.25, so
/// // rate = 0.75·0.02 + 0.25·0.6 = 0.165.
/// let ch = GilbertElliott::new(0.05, 0.15, 0.02, 0.6, 9);
/// assert!((ch.long_run_rate() - 0.165).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(Good → Bad).
    p_gb: f64,
    /// P(Bad → Good).
    p_bg: f64,
    /// Corruption probability in Good.
    alpha_good: f64,
    /// Corruption probability in Bad.
    alpha_bad: f64,
    state: State,
    rng: StdRng,
}

impl GilbertElliott {
    /// Creates the chain starting in the Good state.
    ///
    /// # Panics
    ///
    /// Panics unless all four probabilities are in `[0, 1]` and at
    /// least one transition probability is positive (the chain must be
    /// able to move).
    pub fn new(p_gb: f64, p_bg: f64, alpha_good: f64, alpha_bad: f64, seed: u64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("alpha_good", alpha_good),
            ("alpha_bad", alpha_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        assert!(
            p_gb + p_bg > 0.0,
            "the chain must have a positive transition probability"
        );
        GilbertElliott {
            p_gb,
            p_bg,
            alpha_good,
            alpha_bad,
            state: State::Good,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Builds a bursty channel with the same long-run corruption rate as
    /// a Bernoulli channel of probability `alpha`, with mean burst
    /// length `burst_len` packets. In the Bad state every packet is
    /// corrupted; the Good state is clean.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha ∈ (0, 1)` and `burst_len ≥ 1`, or if the
    /// requested combination is infeasible (`alpha · burst_len` too
    /// large for a valid Good→Bad probability).
    pub fn matched(alpha: f64, burst_len: f64, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(burst_len >= 1.0, "mean burst length must be at least 1");
        // Stationary P(Bad) must equal alpha: p_gb/(p_gb+p_bg) = alpha,
        // with p_bg = 1/burst_len.
        let p_bg = 1.0 / burst_len;
        let p_gb = alpha * p_bg / (1.0 - alpha);
        assert!(p_gb <= 1.0, "infeasible alpha/burst_len combination");
        GilbertElliott::new(p_gb, p_bg, 0.0, 1.0, seed)
    }

    /// The current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Stationary probability of the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }
}

impl LossModel for GilbertElliott {
    fn next_corrupted(&mut self) -> bool {
        // Transition first, then draw the packet fate in the new state.
        let flip = match self.state {
            State::Good => self.rng.random_bool(self.p_gb),
            State::Bad => self.rng.random_bool(self.p_bg),
        };
        if flip {
            self.state = match self.state {
                State::Good => State::Bad,
                State::Bad => State::Good,
            };
        }
        let alpha = match self.state {
            State::Good => self.alpha_good,
            State::Bad => self.alpha_bad,
        };
        self.rng.random_bool(alpha)
    }

    fn long_run_rate(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.alpha_good + pb * self.alpha_bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rate_matches_long_run() {
        let mut ch = GilbertElliott::new(0.05, 0.2, 0.01, 0.7, 11);
        let expect = ch.long_run_rate();
        let n = 200_000;
        let corrupted = (0..n).filter(|_| ch.next_corrupted()).count();
        let rate = corrupted as f64 / n as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn matched_has_requested_rate() {
        for &alpha in &[0.1, 0.3] {
            let mut ch = GilbertElliott::matched(alpha, 8.0, 5);
            assert!((ch.long_run_rate() - alpha).abs() < 1e-12);
            let n = 200_000;
            let corrupted = (0..n).filter(|_| ch.next_corrupted()).count();
            let rate = corrupted as f64 / n as f64;
            assert!(
                (rate - alpha).abs() < 0.015,
                "matched rate {rate} vs alpha {alpha}"
            );
        }
    }

    #[test]
    fn corruption_is_bursty() {
        // Mean run length of corrupted packets should be near burst_len
        // (geometric with mean 1/p_bg) and far above the Bernoulli value
        // 1/(1-alpha) ≈ 1.11 for alpha = 0.1.
        let mut ch = GilbertElliott::matched(0.1, 10.0, 3);
        let fates: Vec<bool> = (0..300_000).map(|_| ch.next_corrupted()).collect();
        let mut runs = Vec::new();
        let mut cur = 0usize;
        for f in fates {
            if f {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        let mean = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean > 4.0, "burst mean {mean} too short for burst_len=10");
    }

    #[test]
    fn starts_good() {
        let ch = GilbertElliott::new(0.1, 0.1, 0.0, 1.0, 0);
        assert_eq!(ch.state(), State::Good);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = GilbertElliott::new(1.2, 0.1, 0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_matched_panics() {
        // alpha=0.9, burst=1 -> p_gb = 0.9/0.1 = 9 > 1.
        let _ = GilbertElliott::matched(0.95, 1.0, 0);
    }
}
