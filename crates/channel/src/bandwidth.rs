//! Transmission-time accounting for a fixed-rate link.

use serde::{Deserialize, Serialize};

/// A link bandwidth.
///
/// # Example
///
/// ```
/// use mrtweb_channel::bandwidth::Bandwidth;
///
/// let bw = Bandwidth::from_kbps(19.2); // the paper's Table 2 value
/// assert_eq!(bw.bytes_per_second(), 2400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bandwidth {
    bits_per_second: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics unless `bits_per_second` is positive and finite.
    pub fn from_bps(bits_per_second: f64) -> Self {
        assert!(
            bits_per_second > 0.0 && bits_per_second.is_finite(),
            "bandwidth must be positive and finite"
        );
        Bandwidth { bits_per_second }
    }

    /// Creates a bandwidth from kilobits per second.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn from_kbps(kbps: f64) -> Self {
        Bandwidth::from_bps(kbps * 1000.0)
    }

    /// Bits per second.
    pub fn bits_per_second(&self) -> f64 {
        self.bits_per_second
    }

    /// Bytes per second.
    pub fn bytes_per_second(&self) -> f64 {
        self.bits_per_second / 8.0
    }

    /// Seconds needed to push `bytes` onto the wire.
    pub fn seconds_for(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bytes_per_second()
    }
}

impl Default for Bandwidth {
    /// The paper's default channel: 19.2 kbps.
    fn default() -> Self {
        Bandwidth::from_kbps(19.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_time() {
        // 260-byte cooked packet at 19.2 kbps: 260/2400 s ≈ 108.33 ms.
        let bw = Bandwidth::default();
        assert!((bw.seconds_for(260) - 260.0 / 2400.0).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        let bw = Bandwidth::from_kbps(8.0);
        assert_eq!(bw.bits_per_second(), 8000.0);
        assert_eq!(bw.bytes_per_second(), 1000.0);
        assert_eq!(bw.seconds_for(500), 0.5);
    }

    #[test]
    fn zero_bytes_take_no_time() {
        assert_eq!(Bandwidth::default().seconds_for(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::from_bps(0.0);
    }
}
