//! Deterministic fault injection for the transport stack.
//!
//! The paper's channel model (§4.1) reduces weak connectivity to
//! independent per-packet corruption; the systems it motivates must
//! survive much uglier behaviour — bit flips, burst damage, whole-frame
//! garbling, silent drops, duplication, reordering, truncation, and
//! timed outage windows. This module provides a *seed-driven fault
//! scheduler* that draws one [`FaultKind`] per transmitted packet from
//! a [`FaultConfig`] mix, logs every decision to a replayable trace,
//! and applies the fault to real wire bytes via [`FaultyLink`] (or
//! abstractly, as a [`LossModel`], via [`ScheduledLoss`]).
//!
//! Determinism is the whole point: `(config, seed)` fixes the complete
//! fault schedule, so any failure a randomized sweep finds reproduces
//! with one command (`mrtweb faultrun --seed <s> --scenario <name>`),
//! and a recorded trace replays exactly via
//! [`FaultScheduler::from_events`].

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::Link;
use crate::loss::LossModel;

/// The fate drawn for one transmitted packet.
///
/// Variants carry the concrete parameters drawn at decision time, so a
/// logged trace contains everything needed to replay the exact same
/// mutation on the exact same bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The packet goes through untouched.
    Deliver,
    /// A single bit at absolute offset `bit` is flipped.
    FlipBit {
        /// Bit offset within the frame (`byte * 8 + bit_in_byte`).
        bit: usize,
    },
    /// A contiguous burst of bytes is XOR-damaged.
    Burst {
        /// First damaged byte.
        offset: usize,
        /// Number of damaged bytes.
        len: usize,
    },
    /// The whole frame is rewritten with pseudo-random bytes.
    Garble {
        /// Seed of the garbling stream (so replay regenerates the same
        /// garbage).
        seed: u64,
    },
    /// The frame is cut short.
    Truncate {
        /// Bytes that survive.
        len: usize,
    },
    /// The frame never arrives.
    Drop,
    /// The frame arrives twice.
    Duplicate,
    /// The frame is held back and delivered after `delay` later frames.
    Reorder {
        /// Packets that overtake this one.
        delay: usize,
    },
    /// The frame was swallowed by a disconnection window.
    Outage,
}

impl FaultKind {
    /// Whether this fault damages or destroys the packet (as opposed to
    /// merely delaying or repeating it).
    pub fn corrupts(&self) -> bool {
        !matches!(
            self,
            FaultKind::Deliver | FaultKind::Duplicate | FaultKind::Reorder { .. }
        )
    }

    /// Stable small integer for observability payloads (0 = deliver;
    /// the numbering matches the `fault-injected` trace event schema).
    pub fn code(&self) -> u8 {
        match self {
            FaultKind::Deliver => 0,
            FaultKind::FlipBit { .. } => 1,
            FaultKind::Burst { .. } => 2,
            FaultKind::Garble { .. } => 3,
            FaultKind::Truncate { .. } => 4,
            FaultKind::Drop => 5,
            FaultKind::Duplicate => 6,
            FaultKind::Reorder { .. } => 7,
            FaultKind::Outage => 8,
        }
    }

    /// Short stable name for traces and scenario output.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Deliver => "deliver",
            FaultKind::FlipBit { .. } => "flip-bit",
            FaultKind::Burst { .. } => "burst",
            FaultKind::Garble { .. } => "garble",
            FaultKind::Truncate { .. } => "truncate",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder { .. } => "reorder",
            FaultKind::Outage => "outage",
        }
    }
}

/// One logged scheduler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based index of the packet on the wire.
    pub packet: u64,
    /// The fate that was drawn.
    pub kind: FaultKind,
}

/// The fault mix: per-packet probabilities of each fault family plus
/// the outage process.
///
/// Probabilities are evaluated in a fixed order (flip, burst, garble,
/// truncate, drop, duplicate, reorder) against one uniform draw, so
/// their sum must stay ≤ 1; the remainder is a clean delivery. An
/// active outage window overrides the mix: every packet inside one is
/// [`FaultKind::Outage`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// P(single-bit flip).
    pub p_flip: f64,
    /// P(multi-byte burst damage).
    pub p_burst: f64,
    /// P(whole-frame garble).
    pub p_garble: f64,
    /// P(truncation).
    pub p_truncate: f64,
    /// P(silent drop).
    pub p_drop: f64,
    /// P(duplication).
    pub p_duplicate: f64,
    /// P(reordering).
    pub p_reorder: f64,
    /// Longest burst in bytes (clamped to the frame).
    pub max_burst_bytes: usize,
    /// Longest reorder delay in packets.
    pub max_reorder_delay: usize,
    /// P(connected → outage) per packet.
    pub p_outage_start: f64,
    /// P(outage → connected) per packet.
    pub p_outage_end: f64,
}

impl FaultConfig {
    /// No faults at all (the control arm).
    pub fn clean() -> Self {
        FaultConfig {
            p_flip: 0.0,
            p_burst: 0.0,
            p_garble: 0.0,
            p_truncate: 0.0,
            p_drop: 0.0,
            p_duplicate: 0.0,
            p_reorder: 0.0,
            max_burst_bytes: 8,
            max_reorder_delay: 4,
            p_outage_start: 0.0,
            p_outage_end: 1.0,
        }
    }

    /// Pure detectable corruption (bit flips) at rate `p` — the
    /// fault-schedule analogue of the paper's Bernoulli channel.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn corrupting(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        FaultConfig {
            p_flip: p,
            ..FaultConfig::clean()
        }
    }

    /// Burst-heavy damage: frequent multi-byte bursts plus occasional
    /// garbles, the wire-level picture of a fading channel.
    pub fn bursty() -> Self {
        FaultConfig {
            p_burst: 0.2,
            p_garble: 0.05,
            max_burst_bytes: 48,
            ..FaultConfig::clean()
        }
    }

    /// Light background corruption plus outage windows averaging
    /// `1 / p_outage_end` packets — the paper's "occasional
    /// disconnection during transmission".
    pub fn outage_heavy() -> Self {
        FaultConfig {
            p_flip: 0.05,
            p_outage_start: 0.02,
            p_outage_end: 0.08,
            ..FaultConfig::clean()
        }
    }

    /// Everything at once at moderate rates: the adversarial mix for
    /// robustness sweeps.
    pub fn mixed() -> Self {
        FaultConfig {
            p_flip: 0.08,
            p_burst: 0.05,
            p_garble: 0.03,
            p_truncate: 0.04,
            p_drop: 0.08,
            p_duplicate: 0.05,
            p_reorder: 0.05,
            max_burst_bytes: 32,
            max_reorder_delay: 6,
            p_outage_start: 0.004,
            p_outage_end: 0.2,
        }
    }

    /// Garble/truncate-heavy: stress for CRC detection and framing.
    pub fn garbling() -> Self {
        FaultConfig {
            p_garble: 0.2,
            p_truncate: 0.1,
            ..FaultConfig::clean()
        }
    }

    /// Drop-storm: heavy silent loss, the worst case for ARQ repair.
    pub fn dropping(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        FaultConfig {
            p_drop: p,
            ..FaultConfig::clean()
        }
    }

    /// Sum of the per-packet fault probabilities (outside outages).
    pub fn fault_mass(&self) -> f64 {
        self.p_flip
            + self.p_burst
            + self.p_garble
            + self.p_truncate
            + self.p_drop
            + self.p_duplicate
            + self.p_reorder
    }

    /// Validates the mix.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, the fault mass
    /// exceeds 1, or an outage can start but never end.
    pub fn validate(&self) {
        for (name, p) in [
            ("p_flip", self.p_flip),
            ("p_burst", self.p_burst),
            ("p_garble", self.p_garble),
            ("p_truncate", self.p_truncate),
            ("p_drop", self.p_drop),
            ("p_duplicate", self.p_duplicate),
            ("p_reorder", self.p_reorder),
            ("p_outage_start", self.p_outage_start),
            ("p_outage_end", self.p_outage_end),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        assert!(
            self.fault_mass() <= 1.0 + 1e-12,
            "fault probabilities sum to {} > 1",
            self.fault_mass()
        );
        assert!(
            self.p_outage_start == 0.0 || self.p_outage_end > 0.0,
            "an outage that can start must be able to end"
        );
    }

    /// Long-run fraction of packets that are corrupted or lost — the
    /// effective `α` this schedule presents to redundancy planning.
    pub fn long_run_rate(&self) -> f64 {
        let p_out = if self.p_outage_start == 0.0 {
            0.0
        } else {
            self.p_outage_start / (self.p_outage_start + self.p_outage_end)
        };
        let damaging = self.p_flip + self.p_burst + self.p_garble + self.p_truncate + self.p_drop;
        p_out + (1.0 - p_out) * damaging
    }
}

/// Seed-driven per-packet fault scheduler with a replayable trace.
///
/// # Example
///
/// ```
/// use mrtweb_channel::fault::{FaultConfig, FaultKind, FaultScheduler};
///
/// let mut sched = FaultScheduler::new(FaultConfig::mixed(), 7);
/// let fates: Vec<FaultKind> = (0..100).map(|_| sched.next_kind(260)).collect();
///
/// // The trace replays the identical schedule.
/// let mut replay = FaultScheduler::from_events(sched.trace());
/// let again: Vec<FaultKind> = (0..100).map(|_| replay.next_kind(260)).collect();
/// assert_eq!(fates, again);
/// ```
#[derive(Debug, Clone)]
pub struct FaultScheduler {
    cfg: FaultConfig,
    rng: StdRng,
    in_outage: bool,
    next_packet: u64,
    trace: Vec<FaultEvent>,
    /// When replaying, the scripted fates (sparse: packet → kind).
    script: Option<Vec<FaultEvent>>,
}

impl FaultScheduler {
    /// Creates a scheduler drawing from `cfg` with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FaultConfig::validate`].
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        cfg.validate();
        FaultScheduler {
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0xFA01_7FA0_17FA_017F),
            in_outage: false,
            next_packet: 0,
            trace: Vec::new(),
            script: None,
        }
    }

    /// Creates a scheduler that replays a recorded trace verbatim:
    /// packets present in `events` get the logged fate, all others are
    /// delivered clean.
    pub fn from_events(events: &[FaultEvent]) -> Self {
        let mut script: Vec<FaultEvent> = events
            .iter()
            .copied()
            .filter(|e| e.kind != FaultKind::Deliver)
            .collect();
        script.sort_by_key(|e| e.packet);
        FaultScheduler {
            cfg: FaultConfig::clean(),
            rng: StdRng::seed_from_u64(0),
            in_outage: false,
            next_packet: 0,
            trace: Vec::new(),
            script: Some(script),
        }
    }

    /// The configured mix.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Packets scheduled so far.
    pub fn packets_scheduled(&self) -> u64 {
        self.next_packet
    }

    /// The log of every non-clean decision, in packet order.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Consumes the scheduler, returning its trace.
    pub fn into_trace(self) -> Vec<FaultEvent> {
        self.trace
    }

    /// Draws the fate of the next packet of `frame_len` bytes, logging
    /// any non-clean decision.
    pub fn next_kind(&mut self, frame_len: usize) -> FaultKind {
        let packet = self.next_packet;
        self.next_packet += 1;
        let kind = if let Some(script) = &self.script {
            match script.binary_search_by_key(&packet, |e| e.packet) {
                Ok(i) => script[i].kind,
                Err(_) => FaultKind::Deliver,
            }
        } else {
            self.draw_kind(frame_len)
        };
        if kind != FaultKind::Deliver {
            self.trace.push(FaultEvent { packet, kind });
        }
        kind
    }

    fn draw_kind(&mut self, frame_len: usize) -> FaultKind {
        // Outage state machine first: inside a window every packet dies.
        if self.cfg.p_outage_start > 0.0 {
            let flip = if self.in_outage {
                self.rng.random_bool(self.cfg.p_outage_end)
            } else {
                self.rng.random_bool(self.cfg.p_outage_start)
            };
            if flip {
                self.in_outage = !self.in_outage;
            }
            if self.in_outage {
                return FaultKind::Outage;
            }
        }
        if self.cfg.fault_mass() == 0.0 {
            return FaultKind::Deliver;
        }
        let u: f64 = self.rng.random_range(0.0..1.0);
        let mut edge = self.cfg.p_flip;
        if u < edge {
            let bits = (frame_len * 8).max(1);
            return FaultKind::FlipBit {
                bit: self.rng.random_range(0..bits),
            };
        }
        edge += self.cfg.p_burst;
        if u < edge {
            let max_len = self.cfg.max_burst_bytes.clamp(1, frame_len.max(1));
            let len = self.rng.random_range(1..=max_len);
            let offset = self
                .rng
                .random_range(0..frame_len.max(1).saturating_sub(len - 1));
            return FaultKind::Burst { offset, len };
        }
        edge += self.cfg.p_garble;
        if u < edge {
            return FaultKind::Garble {
                seed: self.rng.random_range(0..u64::MAX),
            };
        }
        edge += self.cfg.p_truncate;
        if u < edge {
            return FaultKind::Truncate {
                len: self.rng.random_range(0..frame_len.max(1)),
            };
        }
        edge += self.cfg.p_drop;
        if u < edge {
            return FaultKind::Drop;
        }
        edge += self.cfg.p_duplicate;
        if u < edge {
            return FaultKind::Duplicate;
        }
        edge += self.cfg.p_reorder;
        if u < edge {
            return FaultKind::Reorder {
                delay: self.rng.random_range(1..=self.cfg.max_reorder_delay.max(1)),
            };
        }
        FaultKind::Deliver
    }
}

/// Applies a drawn fault to a wire buffer in place.
///
/// [`FaultKind::Drop`], [`FaultKind::Outage`], [`FaultKind::Duplicate`]
/// and [`FaultKind::Reorder`] do not change bytes (the caller handles
/// delivery multiplicity); the corrupting kinds mutate deterministically
/// from the parameters recorded in the kind itself.
pub fn apply_fault(kind: FaultKind, data: &mut Vec<u8>) {
    match kind {
        FaultKind::Deliver
        | FaultKind::Drop
        | FaultKind::Outage
        | FaultKind::Duplicate
        | FaultKind::Reorder { .. } => {}
        FaultKind::FlipBit { bit } => {
            if !data.is_empty() {
                let byte = (bit / 8) % data.len();
                data[byte] ^= 1u8 << (bit % 8);
            }
        }
        FaultKind::Burst { offset, len } => {
            if !data.is_empty() {
                let start = offset.min(data.len() - 1);
                let end = (start + len.max(1)).min(data.len());
                // XOR with a fixed pattern: guaranteed to change every
                // byte in the burst (0x5A has no zero byte).
                for b in &mut data[start..end] {
                    *b ^= 0x5A;
                }
            }
        }
        FaultKind::Garble { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for b in data.iter_mut() {
                *b = rng.random_range(0..=255u32) as u8;
            }
        }
        FaultKind::Truncate { len } => {
            data.truncate(len.min(data.len()));
        }
    }
}

/// Renders a trace for humans: one line per fault plus a summary.
pub fn render_trace(events: &[FaultEvent]) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for e in events {
        *counts.entry(e.kind.label()).or_insert(0) += 1;
        let _ = writeln!(out, "  packet {:>6}: {:?}", e.packet, e.kind);
    }
    let _ = write!(out, "  total {} fault(s):", events.len());
    for (label, n) in counts {
        let _ = write!(out, " {label}={n}");
    }
    out.push('\n');
    out
}

/// A [`LossModel`] view of a fault schedule, for the abstract
/// (packet-count) simulation layers.
///
/// Every corrupting fate (flip, burst, garble, truncate, drop, outage)
/// is reported as a corrupted packet; duplication and reordering do not
/// exist at this abstraction level and count as clean deliveries. Two
/// models built from the same `(config, seed)` replay the identical
/// schedule — exactly what comparative experiments (Caching vs
/// NoCaching over the *same* channel) need.
///
/// # Example
///
/// ```
/// use mrtweb_channel::fault::{FaultConfig, ScheduledLoss};
/// use mrtweb_channel::loss::LossModel;
///
/// let mut a = ScheduledLoss::new(FaultConfig::mixed(), 3);
/// let mut b = ScheduledLoss::new(FaultConfig::mixed(), 3);
/// for _ in 0..500 {
///     assert_eq!(a.next_corrupted(), b.next_corrupted());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ScheduledLoss {
    sched: FaultScheduler,
    nominal_frame: usize,
}

impl ScheduledLoss {
    /// Builds the model over a fresh scheduler; fault parameters are
    /// drawn for a nominal 260-byte frame (the paper's wire size).
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        ScheduledLoss {
            sched: FaultScheduler::new(cfg, seed),
            nominal_frame: 260,
        }
    }

    /// The underlying scheduler (for trace extraction).
    pub fn scheduler(&self) -> &FaultScheduler {
        &self.sched
    }
}

impl LossModel for ScheduledLoss {
    fn next_corrupted(&mut self) -> bool {
        self.sched.next_kind(self.nominal_frame).corrupts()
    }

    fn long_run_rate(&self) -> f64 {
        self.sched.config().long_run_rate()
    }
}

/// One buffer delivered by [`FaultyLink::transmit`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedDelivery {
    /// The (possibly mutated, possibly truncated) wire bytes.
    pub bytes: Vec<u8>,
    /// Virtual arrival time.
    pub arrival_time: f64,
    /// Whether the scheduler tampered with this buffer.
    pub tampered: bool,
}

/// A [`Link`] wrapped with a fault scheduler, delivering zero, one or
/// two buffers per send and re-emitting held (reordered) frames.
///
/// The base link's own loss model still applies first (its corruption
/// composes with scheduled faults), then the scheduler decides the
/// frame's structural fate.
///
/// # Example
///
/// ```
/// use mrtweb_channel::bandwidth::Bandwidth;
/// use mrtweb_channel::fault::{FaultConfig, FaultyLink};
/// use mrtweb_channel::link::Link;
/// use mrtweb_channel::loss::MaskLoss;
///
/// let link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
/// let mut faulty = FaultyLink::new(link, FaultConfig::clean(), 1);
/// let out = faulty.transmit(&[1, 2, 3, 4]);
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].bytes, vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct FaultyLink<L> {
    link: Link<L>,
    sched: FaultScheduler,
    /// Held-back frames: `(packets still to overtake, bytes)`.
    held: VecDeque<(usize, Vec<u8>)>,
}

impl<L: LossModel> FaultyLink<L> {
    /// Wraps `link` with a scheduler drawing from `cfg` under `seed`.
    pub fn new(link: Link<L>, cfg: FaultConfig, seed: u64) -> Self {
        FaultyLink {
            link,
            sched: FaultScheduler::new(cfg, seed),
            held: VecDeque::new(),
        }
    }

    /// Wraps `link` with a replaying scheduler (see
    /// [`FaultScheduler::from_events`]).
    pub fn replaying(link: Link<L>, events: &[FaultEvent]) -> Self {
        FaultyLink {
            link,
            sched: FaultScheduler::from_events(events),
            held: VecDeque::new(),
        }
    }

    /// Sends one frame; returns everything delivered as a consequence,
    /// in arrival order (current frame first unless reordered, then any
    /// held frames whose delay expired).
    pub fn transmit(&mut self, data: &[u8]) -> Vec<FaultedDelivery> {
        let mut bytes = data.to_vec();
        let delivery = self.link.send_bytes(&mut bytes);
        let base_tampered = delivery.corrupted;
        let kind = self.sched.next_kind(bytes.len());
        // Age pre-existing held frames first, so a frame held with
        // delay `d` lets exactly `d` subsequent frames overtake it.
        for slot in &mut self.held {
            slot.0 = slot.0.saturating_sub(1);
        }
        let mut out = Vec::new();
        match kind {
            FaultKind::Drop | FaultKind::Outage => {}
            FaultKind::Duplicate => {
                out.push(FaultedDelivery {
                    bytes: bytes.clone(),
                    arrival_time: delivery.arrival_time,
                    tampered: base_tampered,
                });
                out.push(FaultedDelivery {
                    bytes,
                    arrival_time: delivery.arrival_time,
                    tampered: base_tampered,
                });
            }
            FaultKind::Reorder { delay } => {
                self.held.push_back((delay, bytes));
            }
            kind => {
                let tampered = base_tampered || kind != FaultKind::Deliver;
                apply_fault(kind, &mut bytes);
                out.push(FaultedDelivery {
                    bytes,
                    arrival_time: delivery.arrival_time,
                    tampered,
                });
            }
        }
        // Release everything whose delay expired.
        let now = self.link.now();
        while let Some((0, bytes)) = self.held.front().cloned() {
            self.held.pop_front();
            out.push(FaultedDelivery {
                bytes,
                arrival_time: now,
                tampered: false,
            });
        }
        out
    }

    /// Delivers every held frame immediately (end of a round: nothing
    /// left on the wire to overtake them).
    pub fn flush(&mut self) -> Vec<FaultedDelivery> {
        let now = self.link.now();
        self.held
            .drain(..)
            .map(|(_, bytes)| FaultedDelivery {
                bytes,
                arrival_time: now,
                tampered: false,
            })
            .collect()
    }

    /// The wrapped link.
    pub fn link(&self) -> &Link<L> {
        &self.link
    }

    /// Mutable access to the wrapped link.
    pub fn link_mut(&mut self) -> &mut Link<L> {
        &mut self.link
    }

    /// The fault scheduler.
    pub fn scheduler(&self) -> &FaultScheduler {
        &self.sched
    }

    /// Consumes the wrapper, returning the recorded trace.
    pub fn into_trace(self) -> Vec<FaultEvent> {
        self.sched.into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::loss::MaskLoss;

    fn clean_link() -> Link<MaskLoss> {
        Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0)
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultScheduler::new(FaultConfig::mixed(), 99);
        let mut b = FaultScheduler::new(FaultConfig::mixed(), 99);
        for _ in 0..2000 {
            assert_eq!(a.next_kind(260), b.next_kind(260));
        }
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultScheduler::new(FaultConfig::mixed(), 1);
        let mut b = FaultScheduler::new(FaultConfig::mixed(), 2);
        let fa: Vec<_> = (0..500).map(|_| a.next_kind(260)).collect();
        let fb: Vec<_> = (0..500).map(|_| b.next_kind(260)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn trace_replay_is_exact() {
        let mut orig = FaultScheduler::new(FaultConfig::mixed(), 12345);
        let fates: Vec<_> = (0..1000).map(|_| orig.next_kind(260)).collect();
        let mut replay = FaultScheduler::from_events(orig.trace());
        let again: Vec<_> = (0..1000).map(|_| replay.next_kind(260)).collect();
        assert_eq!(fates, again);
    }

    #[test]
    fn clean_config_never_faults() {
        let mut s = FaultScheduler::new(FaultConfig::clean(), 7);
        assert!((0..1000).all(|_| s.next_kind(260) == FaultKind::Deliver));
        assert!(s.trace().is_empty());
    }

    #[test]
    fn empirical_rate_tracks_long_run() {
        for cfg in [
            FaultConfig::corrupting(0.3),
            FaultConfig::mixed(),
            FaultConfig::outage_heavy(),
        ] {
            let expect = cfg.long_run_rate();
            let mut m = ScheduledLoss::new(cfg, 5);
            let n = 100_000;
            let rate = (0..n).filter(|_| m.next_corrupted()).count() as f64 / n as f64;
            assert!(
                (rate - expect).abs() < 0.02,
                "rate {rate} vs long-run {expect}"
            );
        }
    }

    #[test]
    fn outage_windows_are_contiguous() {
        let cfg = FaultConfig {
            p_outage_start: 0.01,
            p_outage_end: 0.05,
            ..FaultConfig::clean()
        };
        let mut s = FaultScheduler::new(cfg, 3);
        let fates: Vec<_> = (0..50_000).map(|_| s.next_kind(260)).collect();
        let mut longest = 0usize;
        let mut cur = 0usize;
        for f in &fates {
            if *f == FaultKind::Outage {
                cur += 1;
                longest = longest.max(cur);
            } else {
                assert_eq!(*f, FaultKind::Deliver);
                cur = 0;
            }
        }
        assert!(
            longest > 20,
            "longest outage {longest} too short for mean 20"
        );
    }

    #[test]
    fn apply_fault_mutations() {
        let base: Vec<u8> = (0..64).collect();

        let mut flipped = base.clone();
        apply_fault(FaultKind::FlipBit { bit: 77 }, &mut flipped);
        assert_ne!(flipped, base);
        assert_eq!(flipped.len(), base.len());
        assert_eq!(
            flipped.iter().zip(&base).filter(|(a, b)| a != b).count(),
            1,
            "single-bit flip must change exactly one byte"
        );

        let mut burst = base.clone();
        apply_fault(FaultKind::Burst { offset: 10, len: 5 }, &mut burst);
        assert_eq!(&burst[..10], &base[..10]);
        assert_eq!(&burst[15..], &base[15..]);
        assert!(burst[10..15].iter().zip(&base[10..15]).all(|(a, b)| a != b));

        let mut garbled = base.clone();
        apply_fault(FaultKind::Garble { seed: 9 }, &mut garbled);
        assert_eq!(garbled.len(), base.len());
        assert_ne!(garbled, base);
        let mut garbled2 = base.clone();
        apply_fault(FaultKind::Garble { seed: 9 }, &mut garbled2);
        assert_eq!(garbled, garbled2, "garble must replay from its seed");

        let mut cut = base.clone();
        apply_fault(FaultKind::Truncate { len: 10 }, &mut cut);
        assert_eq!(cut, &base[..10]);

        let mut same = base.clone();
        apply_fault(FaultKind::Deliver, &mut same);
        apply_fault(FaultKind::Drop, &mut same);
        apply_fault(FaultKind::Duplicate, &mut same);
        assert_eq!(same, base);
    }

    #[test]
    fn faulty_link_drop_and_duplicate() {
        // Script: packet 0 dropped, packet 1 duplicated, packet 2 clean.
        let script = [
            FaultEvent {
                packet: 0,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                packet: 1,
                kind: FaultKind::Duplicate,
            },
        ];
        let mut faulty = FaultyLink::replaying(clean_link(), &script);
        assert!(faulty.transmit(&[1]).is_empty());
        assert_eq!(faulty.transmit(&[2]).len(), 2);
        assert_eq!(faulty.transmit(&[3]).len(), 1);
    }

    #[test]
    fn faulty_link_reorder_releases_after_delay() {
        let script = [FaultEvent {
            packet: 0,
            kind: FaultKind::Reorder { delay: 2 },
        }];
        let mut faulty = FaultyLink::replaying(clean_link(), &script);
        assert!(faulty.transmit(&[10]).is_empty(), "held back");
        let second = faulty.transmit(&[20]);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].bytes, vec![20]);
        // Delay expires with the second following packet: 10 arrives after 30.
        let third = faulty.transmit(&[30]);
        assert_eq!(third.len(), 2);
        assert_eq!(third[0].bytes, vec![30]);
        assert_eq!(third[1].bytes, vec![10]);
    }

    #[test]
    fn faulty_link_flush_empties_holdback() {
        let script = [FaultEvent {
            packet: 0,
            kind: FaultKind::Reorder { delay: 100 },
        }];
        let mut faulty = FaultyLink::replaying(clean_link(), &script);
        assert!(faulty.transmit(&[1, 2]).is_empty());
        let flushed = faulty.flush();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].bytes, vec![1, 2]);
        assert!(faulty.flush().is_empty());
    }

    #[test]
    fn faulty_link_tampered_flag_and_bytes() {
        let script = [FaultEvent {
            packet: 0,
            kind: FaultKind::Garble { seed: 4 },
        }];
        let mut faulty = FaultyLink::replaying(clean_link(), &script);
        let out = faulty.transmit(&[7; 32]);
        assert_eq!(out.len(), 1);
        assert!(out[0].tampered);
        assert_ne!(out[0].bytes, vec![7; 32]);
        let clean = faulty.transmit(&[7; 32]);
        assert!(!clean[0].tampered);
        assert_eq!(clean[0].bytes, vec![7; 32]);
    }

    #[test]
    fn render_trace_summarizes() {
        let mut s = FaultScheduler::new(FaultConfig::garbling(), 2);
        for _ in 0..200 {
            s.next_kind(64);
        }
        let text = render_trace(s.trace());
        assert!(text.contains("garble="));
        assert!(text.contains("total"));
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn overfull_mix_panics() {
        let cfg = FaultConfig {
            p_flip: 0.6,
            p_drop: 0.6,
            ..FaultConfig::clean()
        };
        let _ = FaultScheduler::new(cfg, 0);
    }
}
