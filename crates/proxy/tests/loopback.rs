//! Loopback integration tests: a real server on an ephemeral port,
//! real client sockets, end-to-end reconstruction.
//!
//! Every scenario runs against **both engines** — the blocking
//! thread-pool [`Server`] and (on Linux with the `event` feature) the
//! epoll readiness loop — so the two paths stay behaviourally
//! interchangeable: same typed refusals, same counters, same session
//! end accounting.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mrtweb_channel::fault::FaultConfig;
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_obs::RegistrySnapshot;
use mrtweb_proxy::client::{fetch, fetch_stats, FetchError, FetchOptions};
use mrtweb_proxy::server::{bind_engine, Engine, ProxyServer, ServerConfig};
use mrtweb_proxy::stats::{self, ACTIVE, COMPLETED, REQUEST_LATENCY_NS, TIMEOUTS};
use mrtweb_proxy::wire::{ErrorCode, Hello, Message};
use mrtweb_store::gateway::{Gateway, Request};
use mrtweb_store::store::DocumentStore;
use mrtweb_transport::live::{run_transfer, ClientEvent, TransferConfig};

const URL: &str = "doc/loopback";

/// Every engine this build can bind. The fallback build (or a
/// non-Linux host) tests only the blocking path.
fn engines() -> Vec<Engine> {
    let mut all = vec![Engine::Blocking];
    if cfg!(all(target_os = "linux", feature = "event")) {
        all.push(Engine::Event);
    }
    all
}

fn test_store(target_bytes: usize) -> Arc<DocumentStore> {
    let spec = SyntheticDocSpec {
        target_bytes,
        ..SyntheticDocSpec::default()
    };
    let store = Arc::new(DocumentStore::new(16));
    store.put(URL, spec.generate(7).document);
    store
}

fn start(engine: Engine, config: ServerConfig, target_bytes: usize) -> Box<dyn ProxyServer> {
    let gateway = Gateway::new(test_store(target_bytes));
    bind_engine("127.0.0.1:0", gateway, config, engine).expect("bind loopback")
}

fn options() -> FetchOptions {
    let mut o = FetchOptions::new(URL);
    o.io_timeout = Duration::from_secs(20);
    o
}

/// Polls the live stats until `pred` holds. The event engine finishes
/// sessions asynchronously to the client's last byte, so tests that
/// assert on counters after a client-side action must wait for the
/// worker loop to catch up rather than race it.
fn wait_for(server: &dyn ProxyServer, what: &str, pred: impl Fn(&RegistrySnapshot) -> bool) {
    for _ in 0..800 {
        if pred(&server.stats()) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}: {}", server.stats().to_json());
}

/// What the transport reconstructs in-process for the identical
/// request — the ground truth payload a socket fetch must match.
fn reference_payload() -> Vec<u8> {
    let gateway = Gateway::new(test_store(10_240));
    let o = options();
    let request = Request::from_options(
        &o.url,
        &o.query,
        &o.lod,
        &o.measure,
        o.packet_size as usize,
        o.gamma,
    )
    .expect("reference request");
    let live = gateway.prepare(&request).expect("reference prepare");
    let report = run_transfer(
        live,
        &TransferConfig {
            alpha: 0.0,
            ..TransferConfig::default()
        },
    )
    .expect("reference transfer");
    assert!(report.completed, "reference transfer must complete");
    report.payload
}

#[test]
fn eight_concurrent_fetches_reconstruct_byte_identically() {
    let expected = reference_payload();
    assert!(!expected.is_empty());
    for engine in engines() {
        let server = start(engine, ServerConfig::default(), 10_240);
        let addr = server.local_addr();

        let reports: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || fetch(addr, &options()).expect("concurrent fetch")))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });

        for report in &reports {
            assert!(report.completed, "all eight sessions reconstruct");
            assert_eq!(
                report.payload, expected,
                "socket reconstruction is byte-identical to the in-process transport"
            );
            // Progressive rendering never goes backwards: per-slice
            // fractions are monotone non-decreasing in arrival order.
            let mut last: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
            for event in &report.events {
                if let ClientEvent::SliceProgress { label, fraction } = event {
                    let prev = last.insert(label.as_str(), *fraction).unwrap_or(0.0);
                    assert!(
                        *fraction >= prev - 1e-12,
                        "slice {label} regressed: {prev} -> {fraction}"
                    );
                }
            }
        }

        wait_for(&*server, "all eight sessions counted", |s| {
            s.counter(COMPLETED) == 8
        });
        let snapshot = server.shutdown();
        assert!(snapshot.counter("accepted") >= 8);
        assert_eq!(snapshot.counter(COMPLETED), 8, "engine {engine:?}");
        assert!(
            stats::is_clean(&snapshot),
            "clean run on {engine:?}: {}",
            snapshot.to_json()
        );
        // One latency sample per session served — the histogram and the
        // session counters must agree exactly.
        let latency = snapshot.hist(REQUEST_LATENCY_NS);
        assert_eq!(
            latency.count,
            8,
            "request latency histogram counts every session: {}",
            snapshot.to_json()
        );
        assert!(latency.max >= latency.min);
    }
}

#[test]
fn admission_rejects_the_ninth_session() {
    for engine in engines() {
        let config = ServerConfig {
            max_sessions: 8,
            workers: 8,
            read_timeout: Duration::from_secs(20),
            ..ServerConfig::default()
        };
        // A small document keeps each held session's first round inside
        // the socket buffers, so the server reaches its control read
        // (blocking path: workers park; event path: sessions sit in
        // AwaitControl) while the client holds the slot.
        let server = start(engine, config, 1024);
        let addr = server.local_addr();

        // Occupy all eight slots: handshake and then hold the session.
        let mut held = Vec::new();
        for i in 0..8 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .expect("timeout");
            Message::Hello(Hello::new(URL, ""))
                .write_to(&mut stream)
                .expect("hello");
            match Message::read_from(&mut stream).expect("handshake reply") {
                Message::Header(_) => held.push(stream),
                other => panic!("session {i}: wanted HEADER, got {other:?}"),
            }
        }

        // The ninth ask must be refused loudly, with a typed Busy.
        match fetch(addr, &options()) {
            Err(FetchError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Busy),
            other => panic!("ninth session should be rejected on {engine:?}, got {other:?}"),
        }

        // Release the slots cleanly: drain each held round, then DONE.
        for stream in &mut held {
            loop {
                match Message::read_from(stream).expect("drain") {
                    Message::RoundEnd => break,
                    Message::Frame(_) => {}
                    other => panic!("wanted FRAME or ROUND-END, got {other:?}"),
                }
            }
            Message::Done.write_to(stream).expect("done");
        }
        wait_for(&*server, "held sessions completing", |s| {
            s.counter(COMPLETED) == 8
        });
        drop(held);

        let snapshot = server.shutdown();
        assert!(snapshot.counter("rejected") >= 1, "{}", snapshot.to_json());
        assert_eq!(snapshot.counter(COMPLETED), 8, "engine {engine:?}");
    }
}

#[test]
fn early_stop_at_target_resolution_ends_the_session() {
    for engine in engines() {
        let server = start(engine, ServerConfig::default(), 10_240);
        let mut o = options();
        o.stop_at_slices = Some(2);
        let report = fetch(server.local_addr(), &o).expect("fetch");
        assert!(
            report.stopped_early || report.completed,
            "a 2-slice target resolves within the first round"
        );
        // A stopped session still ends cleanly server-side.
        wait_for(&*server, "early-stopped session counted", |s| {
            s.counter(COMPLETED) == 1
        });
        let snapshot = server.shutdown();
        assert_eq!(snapshot.counter(COMPLETED), 1, "engine {engine:?}");
        assert!(stats::is_clean(&snapshot), "{}", snapshot.to_json());
    }
}

#[test]
fn frame_budget_exhaustion_is_a_typed_refusal() {
    for engine in engines() {
        let config = ServerConfig {
            frame_budget: 5,
            ..ServerConfig::default()
        };
        let server = start(engine, config, 10_240);
        match fetch(server.local_addr(), &options()) {
            Err(FetchError::Rejected { code, .. }) => {
                assert_eq!(code, ErrorCode::BudgetExceeded);
            }
            other => panic!("budget run should be refused on {engine:?}, got {other:?}"),
        }
        wait_for(&*server, "budget session accounted", |s| {
            s.counter("frames_sent") == 5
        });
        let snapshot = server.shutdown();
        assert_eq!(
            snapshot.counter("frames_sent"),
            5,
            "engine {engine:?}: {}",
            snapshot.to_json()
        );
    }
}

#[test]
fn faulty_wireless_hop_still_reconstructs() {
    let expected = reference_payload();
    for engine in engines() {
        let config = ServerConfig {
            fault: Some(FaultConfig::mixed()),
            fault_seed: 99,
            ..ServerConfig::default()
        };
        let server = start(engine, config, 10_240);
        let report = fetch(server.local_addr(), &options()).expect("faulty fetch");
        assert!(report.completed, "redundancy + ARQ absorb the fault mix");
        assert_eq!(report.payload, expected, "byte-identical despite faults");
        assert!(
            report.crc_rejects > 0,
            "the mixed preset must corrupt at least one frame ({engine:?})"
        );
        server.shutdown();
    }
}

#[test]
fn unknown_documents_are_refused_with_not_found() {
    for engine in engines() {
        let server = start(engine, ServerConfig::default(), 1024);
        let mut o = options();
        o.url = "doc/absent".to_owned();
        match fetch(server.local_addr(), &o) {
            Err(FetchError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
            other => panic!("wanted NotFound on {engine:?}, got {other:?}"),
        }
        server.shutdown();
    }
}

#[test]
fn stats_endpoint_serves_live_counters_and_histograms() {
    for engine in engines() {
        let server = start(engine, ServerConfig::default(), 1024);
        let addr = server.local_addr();
        let _ = fetch(addr, &options()).expect("fetch");
        wait_for(&*server, "fetch counted", |s| s.counter(COMPLETED) == 1);
        let snapshot = fetch_stats(addr, Duration::from_secs(10)).expect("stats");
        assert!(snapshot.counter("accepted") >= 1);
        assert_eq!(snapshot.counter(COMPLETED), 1, "engine {engine:?}");
        assert!(snapshot.counter("frames_sent") > 0);
        assert!(stats::is_clean(&snapshot), "{}", snapshot.to_json());
        // The latency histogram crosses the wire with its quantiles
        // intact: the one finished fetch is one sample (the probe
        // itself snapshots before recording its own latency).
        let latency = snapshot.hist(REQUEST_LATENCY_NS);
        assert_eq!(latency.count, 1, "{}", snapshot.to_json());
        assert!(latency.quantile(0.5) > 0, "a real fetch takes nonzero time");
        server.shutdown();
    }
}

#[test]
fn malformed_hello_is_a_protocol_error_not_a_hang() {
    for engine in engines() {
        let server = start(engine, ServerConfig::default(), 1024);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // A valid envelope whose type is fine but whose body is garbage.
        let mut envelope = Message::Done.encode();
        envelope[4] = 0x01; // retype as HELLO with an empty body
        let crc = mrtweb_erasure::crc::crc32(&envelope[4..envelope.len() - 4]);
        let len = envelope.len();
        envelope[len - 4..].copy_from_slice(&crc.to_be_bytes());
        stream.write_all(&envelope).expect("write");
        match Message::read_from(&mut stream).expect("reply") {
            Message::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("wanted a typed error on {engine:?}, got {other:?}"),
        }
        wait_for(&*server, "protocol error counted", |s| {
            s.counter("protocol_errors") == 1
        });
        let snapshot = server.shutdown();
        assert_eq!(
            snapshot.counter("protocol_errors"),
            1,
            "engine {engine:?}: {}",
            snapshot.to_json()
        );
    }
}

/// A client that stops reading must not balloon server memory: the
/// event engine's per-session out-buffer is bounded, and once the
/// socket and the buffer are both full the session simply waits for
/// write readiness. When the reader resumes, the session completes.
#[test]
#[cfg(all(target_os = "linux", feature = "event"))]
fn slow_reader_is_backpressured_by_a_bounded_output_buffer() {
    use mrtweb_proxy::stats::OUTBUF_HWM_BYTES;
    // A document big enough that one round (~γ·bytes ≈ 750 KiB) vastly
    // exceeds both the out-buffer cap and what the kernel will buffer
    // for a stalled reader. GF(2⁸) caps a dispersal at 256 cooked
    // packets, so a big document needs a big packet size.
    let server = start(Engine::Event, ServerConfig::default(), 500_000);
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    Message::Hello(Hello {
        packet_size: 4096,
        ..Hello::new(URL, "")
    })
    .write_to(&mut stream)
    .expect("hello");

    // Do not read. The server fills the socket, then its out-buffer,
    // then stalls on write readiness — bounded the whole time. How long
    // the fill takes depends on machine load, so poll rather than sleep.
    wait_for(
        &*server,
        "a serving session to record pending output",
        |s| s.gauge(OUTBUF_HWM_BYTES) > 0,
    );
    let stalled = server.stats();
    let hwm = stalled.gauge(OUTBUF_HWM_BYTES);
    // The pump stops once 64 KiB is pending, overshooting by at most
    // one frame envelope: the buffer is bounded no matter how much of
    // the round remains unsent.
    assert!(
        hwm <= 64 * 1024 + 8192,
        "out-buffer stays bounded under a stalled reader: {hwm} ({})",
        stalled.to_json()
    );
    assert_eq!(
        stalled.gauge(ACTIVE),
        1,
        "the session is parked, not dead: {}",
        stalled.to_json()
    );

    // Resume reading: the session must finish normally.
    match Message::read_from(&mut stream).expect("header") {
        Message::Header(_) => {}
        other => panic!("wanted HEADER, got {other:?}"),
    }
    loop {
        match Message::read_from(&mut stream).expect("drain") {
            Message::RoundEnd => break,
            Message::Frame(_) => {}
            other => panic!("wanted FRAME or ROUND-END, got {other:?}"),
        }
    }
    Message::Done.write_to(&mut stream).expect("done");
    wait_for(&*server, "slow-read session completing", |s| {
        s.counter(COMPLETED) == 1
    });
    let snapshot = server.shutdown();
    assert!(stats::is_clean(&snapshot), "{}", snapshot.to_json());
}

/// A client that half-closes (FIN) after the handshake and silently
/// walks away: the server must notice, finish the session as a hangup
/// — not a timeout, not a protocol error — and free the slot. Both
/// engines must account for it identically.
#[test]
fn half_open_client_hangup_ends_the_session_cleanly() {
    for engine in engines() {
        let server = start(engine, ServerConfig::default(), 10_240);
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("timeout");
        Message::Hello(Hello::new(URL, ""))
            .write_to(&mut stream)
            .expect("hello");
        match Message::read_from(&mut stream).expect("handshake reply") {
            Message::Header(_) => {}
            other => panic!("wanted HEADER, got {other:?}"),
        }

        // Half-close: no more requests will ever come.
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        // Keep draining so the server can flush its round; EOF means
        // the server closed its side too.
        let mut sink = vec![0u8; 64 * 1024];
        loop {
            match stream.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => panic!("drain after half-close on {engine:?}: {e}"),
            }
        }

        wait_for(&*server, "hung-up session reaped", |s| s.gauge(ACTIVE) == 0);
        let snapshot = server.shutdown();
        assert_eq!(snapshot.counter("accepted"), 1, "engine {engine:?}");
        assert_eq!(
            snapshot.counter(COMPLETED),
            0,
            "a hangup is not a completion ({engine:?})"
        );
        assert_eq!(
            snapshot.counter(TIMEOUTS),
            0,
            "a hangup is not a timeout ({engine:?}): {}",
            snapshot.to_json()
        );
        assert_eq!(
            snapshot.counter("protocol_errors"),
            0,
            "a hangup is not a protocol error ({engine:?}): {}",
            snapshot.to_json()
        );
    }
}

/// A cache hit whose parity was trimmed by the edge byte budget serves
/// by skipping the missing frames: the session completes from the M
/// clear-prefix packets instead of dying with a BadRequest — on both
/// engines.
#[test]
fn trimmed_edge_entry_serves_by_skipping_missing_frames() {
    use mrtweb_store::edge::EdgeCache;
    let expected = reference_payload();
    // The request shape's clear-prefix size: a budget of exactly
    // m · packet_size admits the entry, then budget enforcement trims
    // every parity packet.
    let o = options();
    let request = Request::from_options(
        &o.url,
        &o.query,
        &o.lod,
        &o.measure,
        o.packet_size as usize,
        o.gamma,
    )
    .expect("request");
    let header = Gateway::new(test_store(10_240))
        .prepare(&request)
        .expect("reference prepare")
        .header()
        .clone();
    assert!(header.n > header.m, "fixture must have parity to trim");
    let budget = header.m * header.packet_size;

    for engine in engines() {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos();
        let dir = std::env::temp_dir().join(format!("mrtweb-loopback-edge-{engine:?}-{nanos}"));
        let edge = Arc::new(EdgeCache::new(&dir, budget).expect("edge cache"));
        let gateway = Gateway::new(test_store(10_240)).with_edge(Arc::clone(&edge));
        let server =
            bind_engine("127.0.0.1:0", gateway, ServerConfig::default(), engine).expect("bind");
        let addr = server.local_addr();

        // Miss: cooks and admits; enforcement trims all parity.
        let miss = fetch(addr, &options()).expect("miss fetch");
        assert!(miss.completed, "engine {engine:?}");
        let stats_after = edge.stats();
        assert!(
            stats_after.trimmed_packets > 0,
            "budget must trim parity: {stats_after:?}"
        );

        // Hit: the resident entry has holes where the parity was; the
        // serving loop must skip those sequences, not fail the session.
        let hit = fetch(addr, &options()).expect("hit fetch with trimmed parity");
        assert!(hit.completed, "engine {engine:?}");
        assert_eq!(hit.payload, expected, "engine {engine:?}");
        assert_eq!(edge.stats().hits, 1, "engine {engine:?}");

        wait_for(&*server, "both sessions completing", |s| {
            s.counter(COMPLETED) == 2
        });
        let snapshot = server.shutdown();
        assert_eq!(
            snapshot.counter("protocol_errors"),
            0,
            "engine {engine:?}: {}",
            snapshot.to_json()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
