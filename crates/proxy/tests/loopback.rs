//! Loopback integration tests: a real server on an ephemeral port,
//! real client sockets, end-to-end reconstruction.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mrtweb_channel::fault::FaultConfig;
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_proxy::client::{fetch, fetch_stats, FetchError, FetchOptions};
use mrtweb_proxy::server::{Server, ServerConfig};
use mrtweb_proxy::stats::{self, REQUEST_LATENCY_NS};
use mrtweb_proxy::wire::{ErrorCode, Hello, Message};
use mrtweb_store::gateway::{Gateway, Request};
use mrtweb_store::store::DocumentStore;
use mrtweb_transport::live::{run_transfer, ClientEvent, TransferConfig};

const URL: &str = "doc/loopback";

fn test_store(target_bytes: usize) -> Arc<DocumentStore> {
    let spec = SyntheticDocSpec {
        target_bytes,
        ..SyntheticDocSpec::default()
    };
    let store = Arc::new(DocumentStore::new(16));
    store.put(URL, spec.generate(7).document);
    store
}

fn start(config: ServerConfig, target_bytes: usize) -> Server {
    let gateway = Gateway::new(test_store(target_bytes));
    Server::bind("127.0.0.1:0", gateway, config).expect("bind loopback")
}

fn options() -> FetchOptions {
    let mut o = FetchOptions::new(URL);
    o.io_timeout = Duration::from_secs(20);
    o
}

/// What the transport reconstructs in-process for the identical
/// request — the ground truth payload a socket fetch must match.
fn reference_payload() -> Vec<u8> {
    let gateway = Gateway::new(test_store(10_240));
    let o = options();
    let request = Request::from_options(
        &o.url,
        &o.query,
        &o.lod,
        &o.measure,
        o.packet_size as usize,
        o.gamma,
    )
    .expect("reference request");
    let live = gateway.prepare(&request).expect("reference prepare");
    let report = run_transfer(
        live,
        &TransferConfig {
            alpha: 0.0,
            ..TransferConfig::default()
        },
    )
    .expect("reference transfer");
    assert!(report.completed, "reference transfer must complete");
    report.payload
}

#[test]
fn eight_concurrent_fetches_reconstruct_byte_identically() {
    let server = start(ServerConfig::default(), 10_240);
    let addr = server.local_addr();
    let expected = reference_payload();
    assert!(!expected.is_empty());

    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || fetch(addr, &options()).expect("concurrent fetch")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    for report in &reports {
        assert!(report.completed, "all eight sessions reconstruct");
        assert_eq!(
            report.payload, expected,
            "socket reconstruction is byte-identical to the in-process transport"
        );
        // Progressive rendering never goes backwards: per-slice
        // fractions are monotone non-decreasing in arrival order.
        let mut last: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
        for event in &report.events {
            if let ClientEvent::SliceProgress { label, fraction } = event {
                let prev = last.insert(label.as_str(), *fraction).unwrap_or(0.0);
                assert!(
                    *fraction >= prev - 1e-12,
                    "slice {label} regressed: {prev} -> {fraction}"
                );
            }
        }
    }

    let snapshot = server.shutdown();
    assert!(snapshot.counter("accepted") >= 8);
    assert_eq!(snapshot.counter("completed"), 8);
    assert!(
        stats::is_clean(&snapshot),
        "clean run: {}",
        snapshot.to_json()
    );
    // One latency sample per session served — the histogram and the
    // session counters must agree exactly.
    let latency = snapshot.hist(REQUEST_LATENCY_NS);
    assert_eq!(
        latency.count,
        8,
        "request latency histogram counts every session: {}",
        snapshot.to_json()
    );
    assert!(latency.max >= latency.min);
}

#[test]
fn admission_rejects_the_ninth_session() {
    let config = ServerConfig {
        max_sessions: 8,
        workers: 8,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    };
    // A small document keeps each held session's first round inside the
    // socket buffers, so workers reach their control read and park.
    let server = start(config, 1024);
    let addr = server.local_addr();

    // Occupy all eight slots: handshake and then hold the session open.
    let mut held = Vec::new();
    for i in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("timeout");
        Message::Hello(Hello::new(URL, ""))
            .write_to(&mut stream)
            .expect("hello");
        match Message::read_from(&mut stream).expect("handshake reply") {
            Message::Header(_) => held.push(stream),
            other => panic!("session {i}: wanted HEADER, got {other:?}"),
        }
    }

    // The ninth ask must be refused loudly, with a typed Busy.
    match fetch(addr, &options()) {
        Err(FetchError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("ninth session should be rejected, got {other:?}"),
    }

    // Release the slots cleanly: drain each held round, then DONE.
    for stream in &mut held {
        loop {
            match Message::read_from(stream).expect("drain") {
                Message::RoundEnd => break,
                Message::Frame(_) => {}
                other => panic!("wanted FRAME or ROUND-END, got {other:?}"),
            }
        }
        Message::Done.write_to(stream).expect("done");
    }
    drop(held);

    let snapshot = server.shutdown();
    assert!(snapshot.counter("rejected") >= 1, "{}", snapshot.to_json());
    assert_eq!(snapshot.counter("completed"), 8);
}

#[test]
fn early_stop_at_target_resolution_ends_the_session() {
    let server = start(ServerConfig::default(), 10_240);
    let mut o = options();
    o.stop_at_slices = Some(2);
    let report = fetch(server.local_addr(), &o).expect("fetch");
    assert!(
        report.stopped_early || report.completed,
        "a 2-slice target resolves within the first round"
    );
    // A stopped session still ends cleanly server-side.
    let snapshot = server.shutdown();
    assert_eq!(snapshot.counter("completed"), 1);
    assert!(stats::is_clean(&snapshot), "{}", snapshot.to_json());
}

#[test]
fn frame_budget_exhaustion_is_a_typed_refusal() {
    let config = ServerConfig {
        frame_budget: 5,
        ..ServerConfig::default()
    };
    let server = start(config, 10_240);
    match fetch(server.local_addr(), &options()) {
        Err(FetchError::Rejected { code, .. }) => {
            assert_eq!(code, ErrorCode::BudgetExceeded);
        }
        other => panic!("budget run should be refused, got {other:?}"),
    }
    let snapshot = server.shutdown();
    assert_eq!(snapshot.counter("frames_sent"), 5, "{}", snapshot.to_json());
}

#[test]
fn faulty_wireless_hop_still_reconstructs() {
    let config = ServerConfig {
        fault: Some(FaultConfig::mixed()),
        fault_seed: 99,
        ..ServerConfig::default()
    };
    let server = start(config, 10_240);
    let expected = reference_payload();
    let report = fetch(server.local_addr(), &options()).expect("faulty fetch");
    assert!(report.completed, "redundancy + ARQ absorb the fault mix");
    assert_eq!(report.payload, expected, "byte-identical despite faults");
    assert!(
        report.crc_rejects > 0,
        "the mixed preset must corrupt at least one frame"
    );
    server.shutdown();
}

#[test]
fn unknown_documents_are_refused_with_not_found() {
    let server = start(ServerConfig::default(), 1024);
    let mut o = options();
    o.url = "doc/absent".to_owned();
    match fetch(server.local_addr(), &o) {
        Err(FetchError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("wanted NotFound, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stats_endpoint_serves_live_counters_and_histograms() {
    let server = start(ServerConfig::default(), 1024);
    let addr = server.local_addr();
    let _ = fetch(addr, &options()).expect("fetch");
    let snapshot = fetch_stats(addr, Duration::from_secs(10)).expect("stats");
    assert!(snapshot.counter("accepted") >= 1);
    assert_eq!(snapshot.counter("completed"), 1);
    assert!(snapshot.counter("frames_sent") > 0);
    assert!(stats::is_clean(&snapshot), "{}", snapshot.to_json());
    // The latency histogram crosses the wire with its quantiles intact:
    // the one finished fetch is one sample (the probe itself snapshots
    // before recording its own latency).
    let latency = snapshot.hist(REQUEST_LATENCY_NS);
    assert_eq!(latency.count, 1, "{}", snapshot.to_json());
    assert!(latency.quantile(0.5) > 0, "a real fetch takes nonzero time");
    server.shutdown();
}

#[test]
fn malformed_hello_is_a_protocol_error_not_a_hang() {
    let server = start(ServerConfig::default(), 1024);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // A valid envelope whose type is fine but whose body is garbage.
    let mut envelope = Message::Done.encode();
    envelope[4] = 0x01; // retype as HELLO with an empty body
    let crc = mrtweb_erasure::crc::crc32(&envelope[4..envelope.len() - 4]);
    let len = envelope.len();
    envelope[len - 4..].copy_from_slice(&crc.to_be_bytes());
    stream.write_all(&envelope).expect("write");
    match Message::read_from(&mut stream).expect("reply") {
        Message::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("wanted a typed error, got {other:?}"),
    }
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.counter("protocol_errors"),
        1,
        "{}",
        snapshot.to_json()
    );
}
