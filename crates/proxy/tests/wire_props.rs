//! Property tests for the proxy wire protocol: encode/decode identity
//! over the whole message space, and rejection of every truncated or
//! garbled envelope.

use proptest::prelude::*;

use mrtweb_obs::{HistSnapshot, Histogram, RegistrySnapshot};
use mrtweb_proxy::wire::{ErrorCode, Hello, Message, StreamDecoder, WireError, ENVELOPE_OVERHEAD};
use mrtweb_transport::live::DocumentHeader;
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};

fn hello_strategy() -> impl Strategy<Value = Hello> {
    (
        "[a-z0-9/._-]{0,40}",
        "[a-z ]{0,40}",
        prop_oneof![
            Just("document".to_owned()),
            Just("section".to_owned()),
            Just("subsection".to_owned()),
            Just("paragraph".to_owned()),
        ],
        prop_oneof![
            Just("ic".to_owned()),
            Just("qic".to_owned()),
            Just("mqic".to_owned()),
        ],
        1u32..4096,
        1.0f64..4.0,
    )
        .prop_map(|(url, query, lod, measure, packet_size, gamma)| Hello {
            url,
            query,
            lod,
            measure,
            packet_size,
            gamma,
            ..Hello::new("", "")
        })
}

fn header_strategy() -> impl Strategy<Value = DocumentHeader> {
    (
        1usize..100_000,
        1usize..200,
        0usize..120,
        1usize..2048,
        proptest::collection::vec(("[a-z0-9.]{1,8}", 1usize..5000, 0.0f64..1.0), 1..12),
    )
        .prop_map(
            |(doc_len, m, extra, packet_size, raw_slices)| DocumentHeader {
                doc_len,
                m,
                n: m + extra,
                packet_size,
                plan: TransmissionPlan::sequential(
                    raw_slices
                        .into_iter()
                        .map(|(label, bytes, content)| UnitSlice::new(label, bytes, content))
                        .collect(),
                ),
            },
        )
}

/// Builds a histogram snapshot by actually recording samples, so the
/// bucket vector has exactly the trimmed shape real snapshots have.
fn hist_strategy() -> impl Strategy<Value = HistSnapshot> {
    proptest::collection::vec(any::<u64>(), 0..50).prop_map(|samples| {
        let h = Histogram::default();
        for s in samples {
            h.record(s);
        }
        h.snapshot()
    })
}

fn snapshot_strategy() -> impl Strategy<Value = RegistrySnapshot> {
    (
        proptest::collection::vec(("[a-z_]{1,12}", any::<u64>()), 0..6),
        proptest::collection::vec(("[a-z_]{1,12}", any::<i64>()), 0..6),
        proptest::collection::vec(("[a-z_]{1,12}", hist_strategy()), 0..3),
    )
        .prop_map(|(counters, gauges, hists)| RegistrySnapshot {
            counters,
            gauges,
            hists,
        })
}

fn error_code_strategy() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::NotFound),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Busy),
        Just(ErrorCode::BudgetExceeded),
        Just(ErrorCode::Internal),
        Just(ErrorCode::GaveUp),
    ]
}

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        hello_strategy().prop_map(Message::Hello),
        proptest::collection::vec(any::<u16>(), 0..300).prop_map(Message::Request),
        Just(Message::Done),
        Just(Message::StatsRequest),
        header_strategy().prop_map(Message::Header),
        proptest::collection::vec(any::<u8>(), 0..2000).prop_map(Message::Frame),
        Just(Message::RoundEnd),
        Just(Message::GaveUp),
        (error_code_strategy(), "[ -~]{0,60}")
            .prop_map(|(code, detail)| Message::Error { code, detail }),
        snapshot_strategy().prop_map(Message::StatsReply),
    ]
}

proptest! {
    /// Every message survives an encode/decode round trip unchanged.
    #[test]
    fn encode_decode_is_identity(msg in message_strategy()) {
        let wire = msg.encode();
        prop_assert!(wire.len() > ENVELOPE_OVERHEAD);
        let back = Message::decode(&wire).expect("decode");
        prop_assert_eq!(back, msg);
    }

    /// Streamed reads agree with buffer decodes, even for messages
    /// arriving back to back on one stream.
    #[test]
    fn read_from_matches_decode(msgs in proptest::collection::vec(message_strategy(), 1..5)) {
        let mut stream = Vec::new();
        for msg in &msgs {
            stream.extend_from_slice(&msg.encode());
        }
        let mut cursor = std::io::Cursor::new(stream);
        for msg in &msgs {
            let got = Message::read_from(&mut cursor).expect("read_from");
            prop_assert_eq!(&got, msg);
        }
    }

    /// No strict prefix of a valid envelope decodes; truncation is
    /// always detected.
    #[test]
    fn truncated_envelopes_never_decode(
        msg in message_strategy(),
        frac in 0.0f64..1.0,
    ) {
        let wire = msg.encode();
        let cut = ((wire.len() as f64) * frac) as usize;
        prop_assert!(cut < wire.len());
        prop_assert!(Message::decode(&wire[..cut]).is_err());
    }

    /// Any single corrupted byte is rejected (CRC-32 over type‖body;
    /// length corruption trips the length or truncation checks).
    #[test]
    fn garbled_envelopes_never_decode(
        msg in message_strategy(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut wire = msg.encode();
        let pos = ((wire.len() as f64) * pos_frac) as usize % wire.len();
        wire[pos] ^= flip;
        match Message::decode(&wire) {
            Err(_) => {}
            Ok(back) => prop_assert!(
                false,
                "flip of byte {pos} decoded as {back:?}"
            ),
        }
    }

    /// A wrong-CRC envelope reports `CrcMismatch` specifically when the
    /// damage is confined to the checksum itself.
    #[test]
    fn crc_damage_is_reported_as_crc_mismatch(msg in message_strategy(), flip in 1u8..=255) {
        let mut wire = msg.encode();
        let last = wire.len() - 1;
        wire[last] ^= flip;
        prop_assert!(matches!(Message::decode(&wire), Err(WireError::CrcMismatch)));
    }

    /// The incremental decoder fed one byte at a time — the worst
    /// possible fragmentation, exercising a resume at **every** byte
    /// boundary — yields exactly the message sequence the one-shot
    /// decoder would, and ends with an empty buffer.
    #[test]
    fn byte_at_a_time_decode_matches_one_shot(
        msgs in proptest::collection::vec(message_strategy(), 1..4),
    ) {
        let mut wire = Vec::new();
        for msg in &msgs {
            msg.encode_into(&mut wire);
        }
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for &byte in &wire {
            dec.absorb(&[byte]);
            while let Some(msg) = dec.next_message().expect("clean stream") {
                got.push(msg);
            }
        }
        prop_assert_eq!(&got, &msgs);
        prop_assert_eq!(dec.buffered(), 0);
        prop_assert!(matches!(dec.next_message(), Ok(None)));
    }

    /// Any chunking of a coalesced multi-message stream — including
    /// chunks that span envelope boundaries — decodes to the identical
    /// message sequence. This is the read path the event engine's
    /// 16 KiB socket reads actually produce.
    #[test]
    fn incremental_decode_matches_one_shot_for_any_chunking(
        msgs in proptest::collection::vec(message_strategy(), 1..5),
        chunk in 1usize..257,
    ) {
        let mut wire = Vec::new();
        for msg in &msgs {
            msg.encode_into(&mut wire);
        }
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.absorb(piece);
            while let Some(msg) = dec.next_message().expect("clean stream") {
                got.push(msg);
            }
        }
        prop_assert_eq!(&got, &msgs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Cutting the stream mid-envelope is never an error: the decoder
    /// reports "pending" (repeatedly, idempotently) until the missing
    /// bytes arrive, then yields the final message intact.
    #[test]
    fn truncated_tail_stays_pending_until_the_bytes_arrive(
        msgs in proptest::collection::vec(message_strategy(), 1..4),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        let mut last_len = 0;
        for msg in &msgs {
            let before = wire.len();
            msg.encode_into(&mut wire);
            last_len = wire.len() - before;
        }
        // Withhold 1..=last_len bytes: the cut always lands inside the
        // final envelope.
        let cut = ((last_len - 1) as f64 * frac) as usize + 1;
        let split = wire.len() - cut;

        let mut dec = StreamDecoder::new();
        dec.absorb(&wire[..split]);
        let mut got = Vec::new();
        while let Some(msg) = dec.next_message().expect("clean prefix") {
            got.push(msg);
        }
        prop_assert_eq!(&got, &msgs[..msgs.len() - 1]);
        // Pending is stable: asking again changes nothing.
        prop_assert!(matches!(dec.next_message(), Ok(None)));
        prop_assert!(matches!(dec.next_message(), Ok(None)));

        dec.absorb(&wire[split..]);
        prop_assert_eq!(
            dec.next_message().expect("completed tail"),
            Some(msgs[msgs.len() - 1].clone())
        );
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A corrupted checksum mid-stream surfaces as the same
    /// `CrcMismatch` the one-shot decoder reports, every message before
    /// the damage is still delivered, and the error is sticky — the
    /// decoder never silently resynchronises past corruption.
    #[test]
    fn corrupt_crc_mid_stream_matches_one_shot_and_is_sticky(
        msgs in proptest::collection::vec(message_strategy(), 1..4),
        flip in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        for msg in &msgs {
            msg.encode_into(&mut wire);
        }
        // Damage the final envelope's trailing CRC byte.
        let last = wire.len() - 1;
        wire[last] ^= flip;
        let damaged = {
            let mut start = 0;
            for msg in &msgs[..msgs.len() - 1] {
                start += msg.encode().len();
            }
            &wire[start..]
        };
        prop_assert!(matches!(Message::decode(damaged), Err(WireError::CrcMismatch)));

        let mut dec = StreamDecoder::new();
        dec.absorb(&wire);
        for msg in &msgs[..msgs.len() - 1] {
            prop_assert_eq!(dec.next_message().expect("intact prefix").as_ref(), Some(msg));
        }
        prop_assert!(matches!(dec.next_message(), Err(WireError::CrcMismatch)));
        prop_assert!(matches!(dec.next_message(), Err(WireError::CrcMismatch)));
    }
}
