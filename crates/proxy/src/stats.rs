//! Server statistics on the `mrtweb-obs` registry.
//!
//! The old `metrics` module's fixed struct of atomics is replaced by a
//! named [`Registry`]: every counter the daemon keeps is a stable
//! string key (the same key appears in the JSON output and on the
//! stats wire), and per-request latency is a real log-scale histogram
//! instead of a pair of hand-rolled percentile arrays. [`ProxyStats`]
//! caches the hot handles so the serving path still pays one relaxed
//! `fetch_add` per event, exactly like before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mrtweb_obs::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};

/// Connections accepted by the listener.
pub const ACCEPTED: &str = "accepted";
/// Connections refused by admission control.
pub const REJECTED: &str = "rejected";
/// Sessions currently being served (gauge).
pub const ACTIVE: &str = "active";
/// Sessions that ended after the client sent DONE.
pub const COMPLETED: &str = "completed";
/// Sessions ended by a protocol violation.
pub const PROTOCOL_ERRORS: &str = "protocol_errors";
/// Transport frames pushed to clients.
pub const FRAMES_SENT: &str = "frames_sent";
/// Total wire bytes written to clients.
pub const BYTES_SENT: &str = "bytes_sent";
/// Retransmission REQUEST control messages served.
pub const RETRANSMIT_REQUESTS: &str = "retransmit_requests";
/// Control messages rejected by the envelope CRC-32 check.
pub const CRC_REJECTS: &str = "crc_rejects";
/// Sessions reaped after a read/write timeout.
pub const TIMEOUTS: &str = "timeouts";
/// Faults injected into the simulated wireless hop.
pub const FAULTS_INJECTED: &str = "faults_injected";
/// Per-session wall time, handshake to teardown, in nanoseconds.
pub const REQUEST_LATENCY_NS: &str = "request_latency_ns";
/// Time each event loop spent blocked in `epoll_wait`, in nanoseconds
/// (event engine only; the idle-time mirror of serving CPU).
pub const LOOP_WAIT_NS: &str = "loop_wait_ns";
/// High-water mark of concurrently admitted sessions (gauge).
pub const MAX_SESSIONS_IN_FLIGHT: &str = "max_sessions_in_flight";
/// High-water mark of one session's output buffer in bytes (gauge;
/// bounded by the backpressure cap plus one envelope).
pub const OUTBUF_HWM_BYTES: &str = "outbuf_hwm_bytes";
/// Process-wide decode-inverse cache hits (gauge mirrored from the
/// shared erasure substrate at snapshot time).
pub const DECODE_CACHE_HITS: &str = "decode_cache_hits";
/// Process-wide decode-inverse cache misses (gauge mirrored from the
/// shared erasure substrate at snapshot time).
pub const DECODE_CACHE_MISSES: &str = "decode_cache_misses";

/// Live server statistics: an obs [`Registry`] plus cached handles for
/// every counter the serving path touches.
#[derive(Debug)]
pub struct ProxyStats {
    registry: Registry,
    /// Connections accepted.
    pub accepted: Arc<Counter>,
    /// Admission-control refusals.
    pub rejected: Arc<Counter>,
    /// Sessions being served right now.
    pub active: Arc<Gauge>,
    /// Clean session completions.
    pub completed: Arc<Counter>,
    /// Protocol-violation session ends.
    pub protocol_errors: Arc<Counter>,
    /// Frames pushed.
    pub frames_sent: Arc<Counter>,
    /// Wire bytes written.
    pub bytes_sent: Arc<Counter>,
    /// Retransmission rounds served.
    pub retransmit_requests: Arc<Counter>,
    /// Envelope CRC rejections.
    pub crc_rejects: Arc<Counter>,
    /// Idle-session reaps.
    pub timeouts: Arc<Counter>,
    /// Wireless-hop faults injected.
    pub faults_injected: Arc<Counter>,
    /// Per-session latency samples (nanoseconds).
    pub request_latency: Arc<Histogram>,
    /// Event-loop readiness-wait samples (nanoseconds).
    pub loop_wait: Arc<Histogram>,
    /// High-water mark of admitted sessions; written via
    /// [`ProxyStats::note_in_flight`], published at snapshot time.
    hwm_in_flight: AtomicU64,
    /// High-water mark of a session output buffer; written via
    /// [`ProxyStats::note_outbuf`], published at snapshot time.
    hwm_outbuf: AtomicU64,
    max_in_flight_gauge: Arc<Gauge>,
    outbuf_hwm_gauge: Arc<Gauge>,
    decode_hits_gauge: Arc<Gauge>,
    decode_misses_gauge: Arc<Gauge>,
}

impl Default for ProxyStats {
    fn default() -> Self {
        ProxyStats::new()
    }
}

impl ProxyStats {
    /// A zeroed stats set.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        ProxyStats {
            accepted: registry.counter(ACCEPTED),
            rejected: registry.counter(REJECTED),
            active: registry.gauge(ACTIVE),
            completed: registry.counter(COMPLETED),
            protocol_errors: registry.counter(PROTOCOL_ERRORS),
            frames_sent: registry.counter(FRAMES_SENT),
            bytes_sent: registry.counter(BYTES_SENT),
            retransmit_requests: registry.counter(RETRANSMIT_REQUESTS),
            crc_rejects: registry.counter(CRC_REJECTS),
            timeouts: registry.counter(TIMEOUTS),
            faults_injected: registry.counter(FAULTS_INJECTED),
            request_latency: registry.histogram(REQUEST_LATENCY_NS),
            loop_wait: registry.histogram(LOOP_WAIT_NS),
            hwm_in_flight: AtomicU64::new(0),
            hwm_outbuf: AtomicU64::new(0),
            max_in_flight_gauge: registry.gauge(MAX_SESSIONS_IN_FLIGHT),
            outbuf_hwm_gauge: registry.gauge(OUTBUF_HWM_BYTES),
            decode_hits_gauge: registry.gauge(DECODE_CACHE_HITS),
            decode_misses_gauge: registry.gauge(DECODE_CACHE_MISSES),
            registry,
        }
    }

    /// Records the current number of admitted sessions, keeping the
    /// high-water mark.
    pub fn note_in_flight(&self, current: u64) {
        // ORDERING: high-water mark — fetch_max is atomic so the mark
        // never loses a larger sample; readers only report it.
        self.hwm_in_flight.fetch_max(current, Ordering::Relaxed);
    }

    /// Records one session's output-buffer occupancy, keeping the
    /// high-water mark. Proves backpressure: the published gauge stays
    /// bounded by the per-session cap plus one envelope.
    pub fn note_outbuf(&self, bytes: u64) {
        // ORDERING: high-water mark, as in `note_in_flight`.
        self.hwm_outbuf.fetch_max(bytes, Ordering::Relaxed);
    }

    /// A point-in-time copy of every metric (the payload of the wire
    /// stats endpoint and the CLI `stats` verb). High-water marks and
    /// the process-wide decode-cache counters are published into their
    /// gauges here, so every snapshot — local or over the wire — sees
    /// them.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        // Snapshot reads of the high-water marks; a mark raced past us
        // is simply picked up by the next snapshot.
        self.max_in_flight_gauge
            .set(self.hwm_in_flight.load(Ordering::Relaxed).cast_signed()); // ORDERING: fuzzy snapshot
        self.outbuf_hwm_gauge
            .set(self.hwm_outbuf.load(Ordering::Relaxed).cast_signed()); // ORDERING: fuzzy snapshot
        let (hits, misses) = mrtweb_erasure::ida::inverse_cache_counters();
        self.decode_hits_gauge.set(hits.cast_signed());
        self.decode_misses_gauge.set(misses.cast_signed());
        self.registry.snapshot()
    }
}

/// Whether the counters that must stay zero on a clean loopback run
/// (CRC rejections, idle reaps, protocol errors) are in fact zero.
#[must_use]
pub fn is_clean(snapshot: &RegistrySnapshot) -> bool {
    snapshot.counter(CRC_REJECTS) == 0
        && snapshot.counter(TIMEOUTS) == 0
        && snapshot.counter(PROTOCOL_ERRORS) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counter_updates() {
        let s = ProxyStats::new();
        s.accepted.inc();
        s.bytes_sent.add(300);
        s.active.inc();
        s.request_latency.record(1_500_000);
        let snap = s.snapshot();
        assert_eq!(snap.counter(ACCEPTED), 1);
        assert_eq!(snap.counter(BYTES_SENT), 300);
        assert_eq!(snap.gauge(ACTIVE), 1);
        assert_eq!(snap.hist(REQUEST_LATENCY_NS).count, 1);
        assert!(is_clean(&snap));
        s.timeouts.inc();
        assert!(!is_clean(&s.snapshot()));
    }

    #[test]
    fn high_water_marks_publish_at_snapshot() {
        let s = ProxyStats::new();
        s.note_in_flight(3);
        s.note_in_flight(9);
        s.note_in_flight(5); // lower sample never regresses the mark
        s.note_outbuf(70_000);
        let snap = s.snapshot();
        assert_eq!(snap.gauge(MAX_SESSIONS_IN_FLIGHT), 9);
        assert_eq!(snap.gauge(OUTBUF_HWM_BYTES), 70_000);
    }

    #[test]
    fn decode_cache_gauges_mirror_the_shared_substrate() {
        let s = ProxyStats::new();
        let snap = s.snapshot();
        let (hits, misses) = mrtweb_erasure::ida::inverse_cache_counters();
        // Other tests decode concurrently, so assert consistency, not
        // exact values: the snapshot can only lag the live counters.
        assert!(snap.gauge(DECODE_CACHE_HITS) <= hits.cast_signed());
        assert!(snap.gauge(DECODE_CACHE_MISSES) <= misses.cast_signed());
    }

    #[test]
    fn json_carries_the_catalog_keys() {
        let s = ProxyStats::new();
        s.completed.inc();
        let json = s.snapshot().to_json();
        for key in [ACCEPTED, COMPLETED, FRAMES_SENT, REQUEST_LATENCY_NS] {
            assert!(json.contains(&format!("\"{key}\"")), "{key} in {json}");
        }
    }
}
