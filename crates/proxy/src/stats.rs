//! Server statistics on the `mrtweb-obs` registry.
//!
//! The old `metrics` module's fixed struct of atomics is replaced by a
//! named [`Registry`]: every counter the daemon keeps is a stable
//! string key (the same key appears in the JSON output and on the
//! stats wire), and per-request latency is a real log-scale histogram
//! instead of a pair of hand-rolled percentile arrays. [`ProxyStats`]
//! caches the hot handles so the serving path still pays one relaxed
//! `fetch_add` per event, exactly like before.

use std::sync::Arc;

use mrtweb_obs::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};

/// Connections accepted by the listener.
pub const ACCEPTED: &str = "accepted";
/// Connections refused by admission control.
pub const REJECTED: &str = "rejected";
/// Sessions currently being served (gauge).
pub const ACTIVE: &str = "active";
/// Sessions that ended after the client sent DONE.
pub const COMPLETED: &str = "completed";
/// Sessions ended by a protocol violation.
pub const PROTOCOL_ERRORS: &str = "protocol_errors";
/// Transport frames pushed to clients.
pub const FRAMES_SENT: &str = "frames_sent";
/// Total wire bytes written to clients.
pub const BYTES_SENT: &str = "bytes_sent";
/// Retransmission REQUEST control messages served.
pub const RETRANSMIT_REQUESTS: &str = "retransmit_requests";
/// Control messages rejected by the envelope CRC-32 check.
pub const CRC_REJECTS: &str = "crc_rejects";
/// Sessions reaped after a read/write timeout.
pub const TIMEOUTS: &str = "timeouts";
/// Faults injected into the simulated wireless hop.
pub const FAULTS_INJECTED: &str = "faults_injected";
/// Per-session wall time, handshake to teardown, in nanoseconds.
pub const REQUEST_LATENCY_NS: &str = "request_latency_ns";

/// Live server statistics: an obs [`Registry`] plus cached handles for
/// every counter the serving path touches.
#[derive(Debug)]
pub struct ProxyStats {
    registry: Registry,
    /// Connections accepted.
    pub accepted: Arc<Counter>,
    /// Admission-control refusals.
    pub rejected: Arc<Counter>,
    /// Sessions being served right now.
    pub active: Arc<Gauge>,
    /// Clean session completions.
    pub completed: Arc<Counter>,
    /// Protocol-violation session ends.
    pub protocol_errors: Arc<Counter>,
    /// Frames pushed.
    pub frames_sent: Arc<Counter>,
    /// Wire bytes written.
    pub bytes_sent: Arc<Counter>,
    /// Retransmission rounds served.
    pub retransmit_requests: Arc<Counter>,
    /// Envelope CRC rejections.
    pub crc_rejects: Arc<Counter>,
    /// Idle-session reaps.
    pub timeouts: Arc<Counter>,
    /// Wireless-hop faults injected.
    pub faults_injected: Arc<Counter>,
    /// Per-session latency samples (nanoseconds).
    pub request_latency: Arc<Histogram>,
}

impl Default for ProxyStats {
    fn default() -> Self {
        ProxyStats::new()
    }
}

impl ProxyStats {
    /// A zeroed stats set.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        ProxyStats {
            accepted: registry.counter(ACCEPTED),
            rejected: registry.counter(REJECTED),
            active: registry.gauge(ACTIVE),
            completed: registry.counter(COMPLETED),
            protocol_errors: registry.counter(PROTOCOL_ERRORS),
            frames_sent: registry.counter(FRAMES_SENT),
            bytes_sent: registry.counter(BYTES_SENT),
            retransmit_requests: registry.counter(RETRANSMIT_REQUESTS),
            crc_rejects: registry.counter(CRC_REJECTS),
            timeouts: registry.counter(TIMEOUTS),
            faults_injected: registry.counter(FAULTS_INJECTED),
            request_latency: registry.histogram(REQUEST_LATENCY_NS),
            registry,
        }
    }

    /// A point-in-time copy of every metric (the payload of the wire
    /// stats endpoint and the CLI `stats` verb).
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

/// Whether the counters that must stay zero on a clean loopback run
/// (CRC rejections, idle reaps, protocol errors) are in fact zero.
#[must_use]
pub fn is_clean(snapshot: &RegistrySnapshot) -> bool {
    snapshot.counter(CRC_REJECTS) == 0
        && snapshot.counter(TIMEOUTS) == 0
        && snapshot.counter(PROTOCOL_ERRORS) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counter_updates() {
        let s = ProxyStats::new();
        s.accepted.inc();
        s.bytes_sent.add(300);
        s.active.inc();
        s.request_latency.record(1_500_000);
        let snap = s.snapshot();
        assert_eq!(snap.counter(ACCEPTED), 1);
        assert_eq!(snap.counter(BYTES_SENT), 300);
        assert_eq!(snap.gauge(ACTIVE), 1);
        assert_eq!(snap.hist(REQUEST_LATENCY_NS).count, 1);
        assert!(is_clean(&snap));
        s.timeouts.inc();
        assert!(!is_clean(&s.snapshot()));
    }

    #[test]
    fn json_carries_the_catalog_keys() {
        let s = ProxyStats::new();
        s.completed.inc();
        let json = s.snapshot().to_json();
        for key in [ACCEPTED, COMPLETED, FRAMES_SENT, REQUEST_LATENCY_NS] {
            assert!(json.contains(&format!("\"{key}\"")), "{key} in {json}");
        }
    }
}
