//! The mobile-side blocking client: drives [`LiveClient`] over a real
//! socket.
//!
//! A fetch is one proxy session: HELLO → HEADER → rounds of frames
//! with CRC verification, progressive [`ClientEvent::SliceProgress`]
//! rendering, retransmission REQUESTs for what is still missing, and
//! early stop — either on the relevance threshold (the paper's "stop"
//! button) or once the leading slices of the ranked plan are fully
//! renderable (the *target resolution*: the user got the part of the
//! document the query ranked first).

use std::collections::HashSet;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mrtweb_transport::error::Error as TransportError;
use mrtweb_transport::live::{ClientEvent, DocumentHeader, LiveClient};

use mrtweb_obs::RegistrySnapshot;

use crate::wire::{ErrorCode, Hello, Message, WireError};

/// Everything a fetch needs besides the server address.
#[derive(Debug, Clone)]
pub struct FetchOptions {
    /// Document URL.
    pub url: String,
    /// Free-text query (empty → static IC ordering).
    pub query: String,
    /// Level of detail (`document`, `section`, `subsection`,
    /// `paragraph`).
    pub lod: String,
    /// Content measure (`ic`, `qic`, `mqic`).
    pub measure: String,
    /// Raw packet size in bytes.
    pub packet_size: u32,
    /// Redundancy ratio γ.
    pub gamma: f64,
    /// Stop once accrued content reaches this threshold.
    pub stop_at_content: Option<f64>,
    /// Stop once the first `k` slices of the ranked plan are fully
    /// renderable — download to a target resolution, not to the end.
    pub stop_at_slices: Option<usize>,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
}

impl FetchOptions {
    /// Defaults matching the paper's parameters.
    pub fn new(url: impl Into<String>) -> Self {
        FetchOptions {
            url: url.into(),
            query: String::new(),
            lod: "paragraph".to_owned(),
            measure: "ic".to_owned(),
            packet_size: 256,
            gamma: 1.5,
            stop_at_content: None,
            stop_at_slices: None,
            io_timeout: Duration::from_secs(10),
        }
    }

    fn hello(&self) -> Hello {
        Hello {
            url: self.url.clone(),
            query: self.query.clone(),
            lod: self.lod.clone(),
            measure: self.measure.clone(),
            packet_size: self.packet_size,
            gamma: self.gamma,
            ..Hello::new("", "")
        }
    }
}

/// Why a fetch failed outright (refusals and transport faults; an
/// incomplete-but-orderly session comes back as a report instead).
#[derive(Debug)]
pub enum FetchError {
    /// Connecting or socket I/O failed.
    Io(std::io::Error),
    /// The server's stream violated the wire protocol.
    Wire(WireError),
    /// The header did not describe a usable codec.
    Transport(TransportError),
    /// The server refused or aborted the session with a typed error.
    Rejected {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server sent something out of protocol order.
    Unexpected(&'static str),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Io(e) => write!(f, "socket error: {e}"),
            FetchError::Wire(e) => write!(f, "wire protocol error: {e}"),
            FetchError::Transport(e) => write!(f, "transport error: {e}"),
            FetchError::Rejected { code, detail } => {
                write!(f, "server rejected session ({code}): {detail}")
            }
            FetchError::Unexpected(what) => write!(f, "unexpected server message: {what}"),
        }
    }
}

impl std::error::Error for FetchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FetchError::Io(e) => Some(e),
            FetchError::Wire(e) => Some(e),
            FetchError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FetchError {
    fn from(e: std::io::Error) -> Self {
        FetchError::Io(e)
    }
}

impl From<WireError> for FetchError {
    fn from(e: WireError) -> Self {
        FetchError::Wire(e)
    }
}

impl From<TransportError> for FetchError {
    fn from(e: TransportError) -> Self {
        FetchError::Transport(e)
    }
}

/// Outcome of one fetch session.
#[derive(Debug, Clone)]
pub struct FetchReport {
    /// Whether the document reconstructed byte-identically.
    pub completed: bool,
    /// Whether the client stopped early (threshold or target
    /// resolution).
    pub stopped_early: bool,
    /// Whether the server exhausted its round budget first.
    pub gave_up: bool,
    /// The reconstructed payload (empty unless completed).
    pub payload: Vec<u8>,
    /// Progressive rendering events in arrival order.
    pub events: Vec<ClientEvent>,
    /// Serving rounds observed (1 = no stall).
    pub rounds: usize,
    /// Retransmission REQUESTs sent.
    pub requests_sent: u64,
    /// Frames received (intact or not).
    pub frames_received: u64,
    /// Frames rejected by the transport CRC-16 (the simulated wireless
    /// hop corrupted them).
    pub crc_rejects: u64,
    /// Total wire bytes read.
    pub bytes_received: u64,
    /// The transmission header the server announced.
    pub header: DocumentHeader,
}

/// Counts wire bytes as messages stream in, reading the socket in
/// large chunks: `Message::read_from` issues many small reads (4-byte
/// prefix, then body), and unbuffered that is two-plus syscalls per
/// message — measurable at load-generator rates.
struct Meter<R> {
    inner: R,
    bytes: u64,
    buf: Vec<u8>,
    pos: usize,
    cap: usize,
}

impl<R: std::io::Read> Meter<R> {
    fn new(inner: R) -> Self {
        Meter {
            inner,
            bytes: 0,
            buf: vec![0u8; 16 * 1024],
            pos: 0,
            cap: 0,
        }
    }
}

impl<R: std::io::Read> std::io::Read for Meter<R> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.cap {
            // Big requests (frame bodies) bypass the buffer entirely.
            if out.len() >= self.buf.len() {
                let n = self.inner.read(out)?;
                self.bytes += n as u64;
                return Ok(n);
            }
            self.cap = self.inner.read(&mut self.buf)?;
            self.pos = 0;
            self.bytes += self.cap as u64;
        }
        let n = out.len().min(self.cap - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Runs one complete fetch session against a proxy at `addr`.
///
/// # Errors
///
/// [`FetchError::Rejected`] when the server refuses (busy, not found,
/// bad request, budget); I/O, wire, and codec failures per variant.
pub fn fetch(addr: impl ToSocketAddrs, options: &FetchOptions) -> Result<FetchReport, FetchError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(options.io_timeout))?;
    stream.set_write_timeout(Some(options.io_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = Meter::new(stream);

    Message::Hello(options.hello()).write_to(&mut reader.inner)?;
    let header = match Message::read_from(&mut reader)? {
        Message::Header(h) => h,
        Message::Error { code, detail } => return Err(FetchError::Rejected { code, detail }),
        _ => return Err(FetchError::Unexpected("wanted HEADER or ERROR")),
    };

    let mut client = LiveClient::new(header.clone()).map_err(TransportError::from)?;
    let target_labels: Vec<String> = options
        .stop_at_slices
        .map(|k| {
            header
                .plan
                .slices()
                .iter()
                .take(k)
                .map(|s| s.label.clone())
                .collect()
        })
        .unwrap_or_default();
    let mut complete_labels: HashSet<String> = HashSet::new();

    let mut report = FetchReport {
        completed: false,
        stopped_early: false,
        gave_up: false,
        payload: Vec::new(),
        events: Vec::new(),
        rounds: 0,
        requests_sent: 0,
        frames_received: 0,
        crc_rejects: 0,
        bytes_received: 0,
        header,
    };

    let mut finishing = false;
    loop {
        let msg = match Message::read_from(&mut reader) {
            Ok(msg) => msg,
            // After DONE the server may close at any point; a clean or
            // abrupt EOF while draining is an orderly end.
            Err(WireError::Io(_)) if finishing => break,
            Err(e) => return Err(e.into()),
        };
        match msg {
            Message::Frame(bytes) => {
                report.frames_received += 1;
                if finishing {
                    continue; // draining the round after DONE
                }
                let events = client.on_wire(&bytes);
                let reconstructed = events
                    .iter()
                    .any(|e| matches!(e, ClientEvent::Reconstructed));
                if !target_labels.is_empty() {
                    for event in &events {
                        if let ClientEvent::SliceProgress { label, fraction } = event {
                            if *fraction >= 1.0 - 1e-12 && target_labels.contains(label) {
                                complete_labels.insert(label.clone());
                            }
                        }
                    }
                }
                report.events.extend(events);
                if reconstructed {
                    report.completed = true;
                    Message::Done.write_to(&mut reader.inner)?;
                    finishing = true;
                } else if stop_reached(options, &client, &target_labels, &complete_labels) {
                    report.stopped_early = true;
                    Message::Done.write_to(&mut reader.inner)?;
                    finishing = true;
                }
            }
            Message::RoundEnd => {
                report.rounds += 1;
                if finishing {
                    break;
                }
                // Ask for the deficit only: the cheapest set of
                // packets that reaches M, per the paper's caching
                // retransmission scheme.
                let needed = client.state().needed();
                if needed.is_empty() {
                    // Nothing left but not reconstructed (degenerate
                    // header): end the session honestly.
                    Message::Done.write_to(&mut reader.inner)?;
                    break;
                }
                let ids: Vec<u16> = needed.iter().map(|&i| i as u16).collect();
                report.requests_sent += 1;
                Message::Request(ids).write_to(&mut reader.inner)?;
            }
            Message::GaveUp => {
                report.gave_up = true;
                break;
            }
            Message::Error { code, detail } => return Err(FetchError::Rejected { code, detail }),
            _ => return Err(FetchError::Unexpected("wanted FRAME, ROUND-END, or ERROR")),
        }
    }

    report.crc_rejects = client.state().corrupted();
    report.bytes_received = reader.bytes;
    if report.completed {
        report.payload = client
            .document_bytes()
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
    }
    Ok(report)
}

fn stop_reached(
    options: &FetchOptions,
    client: &LiveClient,
    target_labels: &[String],
    complete_labels: &HashSet<String>,
) -> bool {
    if let Some(threshold) = options.stop_at_content {
        if client.state().content() >= threshold {
            return true;
        }
    }
    !target_labels.is_empty() && complete_labels.len() >= target_labels.len()
}

/// Asks a proxy for its stats snapshot (named counters, gauges, and
/// latency histograms).
///
/// # Errors
///
/// I/O and wire failures; [`FetchError::Rejected`] if admission control
/// refuses the probe connection.
pub fn fetch_stats(
    addr: impl ToSocketAddrs,
    io_timeout: Duration,
) -> Result<RegistrySnapshot, FetchError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    Message::StatsRequest.write_to(&mut stream)?;
    match Message::read_from(&mut stream)? {
        Message::StatsReply(snapshot) => Ok(snapshot),
        Message::Error { code, detail } => Err(FetchError::Rejected { code, detail }),
        _ => Err(FetchError::Unexpected("wanted STATS-REPLY")),
    }
}
