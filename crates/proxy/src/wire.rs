//! The proxy wire protocol: length-prefixed, CRC-checked messages.
//!
//! Every message travels as one *envelope*:
//!
//! ```text
//! ┌──────────────┬─────────┬──────────────┬───────────────────┐
//! │ len (u32 BE) │ type u8 │ body (len-1) │ crc32 (u32 BE)    │
//! └──────────────┴─────────┴──────────────┴───────────────────┘
//!                 └───── crc32 covers type ‖ body ─────┘
//! ```
//!
//! The CRC-32 envelope check guards the *proxy hop* (TCP is reliable,
//! but the check catches framing bugs and lets the garbled-input tests
//! assert hard rejection); the *wireless hop* is modelled inside
//! [`Message::Frame`] bodies, which carry the transport layer's own
//! CRC-16 frames ([`mrtweb_erasure::packet::Frame`]) and may arrive
//! deliberately mangled when the server injects faults. A client feeds
//! frame bodies to [`mrtweb_transport::live::LiveClient`] unchanged.
//!
//! The session handshake serializes the transport's
//! [`DocumentHeader`] — including the full transmission plan — so the
//! client can reconstruct progressive-rendering geometry without any
//! out-of-band channel.

use std::io::{Read, Write};

use mrtweb_erasure::crc::crc32;
use mrtweb_transport::live::DocumentHeader;
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};

use mrtweb_obs::hist::NBUCKETS;
use mrtweb_obs::{HistSnapshot, RegistrySnapshot};

/// Protocol version carried in every HELLO; bumped on incompatible
/// changes so mismatched peers fail fast with a typed error.
/// Version 2 replaced the fixed-field metrics reply with the generic
/// named-registry stats encoding.
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard cap on one message body (type byte + payload). Large enough
/// for a 64 KiB frame or a many-slice header, small enough that a
/// hostile length prefix cannot drive an allocation storm.
pub const MAX_BODY: usize = 1 << 22;

/// Envelope overhead: length prefix + trailing CRC-32.
pub const ENVELOPE_OVERHEAD: usize = 8;

/// Why a server ended (or refused) a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The requested URL is not in the store.
    NotFound = 1,
    /// The HELLO did not parse or validate (bad LOD, measure, γ, …).
    BadRequest = 2,
    /// Admission control refused the session (max sessions reached or
    /// the accept queue is full).
    Busy = 3,
    /// The session exceeded its per-session frame budget.
    BudgetExceeded = 4,
    /// The server failed internally (encoding error, I/O fault).
    Internal = 5,
    /// The retransmission round budget ran out before completion.
    GaveUp = 6,
}

impl ErrorCode {
    /// Parses the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::NotFound),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::Busy),
            4 => Some(ErrorCode::BudgetExceeded),
            5 => Some(ErrorCode::Internal),
            6 => Some(ErrorCode::GaveUp),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::NotFound => "not-found",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Busy => "busy",
            ErrorCode::BudgetExceeded => "budget-exceeded",
            ErrorCode::Internal => "internal",
            ErrorCode::GaveUp => "gave-up",
        })
    }
}

/// The client's session-opening request.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u8,
    /// Document URL to fetch.
    pub url: String,
    /// Free-text query (empty → static IC ordering server-side).
    pub query: String,
    /// Level of detail, as a string (`document`, `section`, …) parsed
    /// by the store gateway.
    pub lod: String,
    /// Content measure (`ic`, `qic`, `mqic`).
    pub measure: String,
    /// Raw packet size in bytes.
    pub packet_size: u32,
    /// Redundancy ratio γ (cooked = ⌈γ·raw⌉), transported as IEEE bits.
    pub gamma: f64,
}

impl Hello {
    /// A HELLO with the paper's defaults for `url` and `query`.
    pub fn new(url: impl Into<String>, query: impl Into<String>) -> Self {
        Hello {
            version: PROTOCOL_VERSION,
            url: url.into(),
            query: query.into(),
            lod: "paragraph".to_owned(),
            measure: "qic".to_owned(),
            packet_size: 256,
            gamma: 1.5,
        }
    }
}

/// Everything that can travel over a proxy connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: open a session.
    Hello(Hello),
    /// Client → server: retransmit exactly these cooked packets.
    Request(Vec<u16>),
    /// Client → server: session finished (reconstructed or stopped).
    Done,
    /// Client → server: report the server's stats snapshot.
    StatsRequest,
    /// Server → client: the transmission header (handshake reply).
    Header(DocumentHeader),
    /// Server → client: one transport-layer frame (seq ‖ payload ‖
    /// CRC-16), possibly fault-mangled to model the wireless hop.
    Frame(Vec<u8>),
    /// Server → client: all requested frames for this round were sent.
    RoundEnd,
    /// Server → client: round budget exhausted, closing.
    GaveUp,
    /// Server → client: typed refusal or failure.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Server → client: the full named-registry stats snapshot
    /// (counters, gauges, and sparse histograms).
    StatsReply(RegistrySnapshot),
}

const T_HELLO: u8 = 0x01;
const T_REQUEST: u8 = 0x02;
const T_DONE: u8 = 0x03;
const T_STATS_REQUEST: u8 = 0x04;
const T_HEADER: u8 = 0x81;
const T_FRAME: u8 = 0x82;
const T_ROUND_END: u8 = 0x83;
const T_GAVE_UP: u8 = 0x84;
const T_ERROR: u8 = 0x85;
const T_STATS_REPLY: u8 = 0x86;

/// Wire-protocol failures. I/O errors keep the underlying error; all
/// parse failures are static descriptions so tests can match on them.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed (includes read/write timeouts).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_BODY`] or is zero.
    BadLength(usize),
    /// The buffer ended before the declared length (truncation).
    Truncated,
    /// The envelope CRC-32 does not match (garbled in transit).
    CrcMismatch,
    /// Unknown message type byte.
    BadType(u8),
    /// The body does not parse as its declared type.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadLength(l) => write!(f, "message length {l} outside 1..={MAX_BODY}"),
            WireError::Truncated => f.write_str("message truncated"),
            WireError::CrcMismatch => f.write_str("envelope CRC mismatch"),
            WireError::BadType(t) => write!(f, "unknown message type {t:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed message body: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this is a read/write timeout (idle peer), as opposed to
    /// a hard failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

// ── body writers ────────────────────────────────────────────────────

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(u16::try_from(s.len()).is_ok());
    let clamped = s.len().min(u16::MAX as usize);
    put_u16(out, clamped as u16);
    out.extend_from_slice(s.as_bytes().get(..clamped).unwrap_or(s.as_bytes()));
}

// ── body reader ─────────────────────────────────────────────────────

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Malformed("body shorter than a field"))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Malformed("body shorter than a field"))?;
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_be_bytes(raw))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("invalid UTF-8"))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        out
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after body"))
        }
    }
}

// ── header (de)serialization ────────────────────────────────────────

fn put_header(out: &mut Vec<u8>, h: &DocumentHeader) {
    put_u64(out, h.doc_len as u64);
    put_u16(out, h.m as u16);
    put_u16(out, h.n as u16);
    put_u32(out, h.packet_size as u32);
    let slices = h.plan.slices();
    put_u32(out, slices.len() as u32);
    for s in slices {
        put_str(out, &s.label);
        put_u64(out, s.bytes as u64);
        put_u64(out, s.content.to_bits());
    }
}

fn read_header(r: &mut Reader<'_>) -> Result<DocumentHeader, WireError> {
    let doc_len = r.u64()? as usize;
    let m = r.u16()? as usize;
    let n = r.u16()? as usize;
    let packet_size = r.u32()? as usize;
    let count = r.u32()? as usize;
    // Each slice needs ≥ 18 body bytes; an absurd count is hostile.
    if count > r.buf.len() / 18 + 1 {
        return Err(WireError::Malformed("slice count exceeds body size"));
    }
    let mut slices = Vec::with_capacity(count);
    for _ in 0..count {
        let label = r.string()?;
        let bytes = r.u64()? as usize;
        let content = f64::from_bits(r.u64()?);
        slices.push(UnitSlice::new(label, bytes, content));
    }
    Ok(DocumentHeader {
        doc_len,
        m,
        n,
        packet_size,
        // `sequential` preserves the on-wire order, which is already
        // the server's ranked transmission order.
        plan: TransmissionPlan::sequential(slices),
    })
}

// ── stats (de)serialization ─────────────────────────────────────────
//
// The registry snapshot travels as three self-describing sections:
//
// ```text
// u16 n_counters, then n × (str name, u64 value)
// u16 n_gauges,   then n × (str name, u64 two's-complement value)
// u16 n_hists,    then n × (str name, u64 count/sum/min/max,
//                           u16 n_nonzero, n × (u16 bucket, u64 count))
// ```
//
// Histogram buckets go sparse: a latency histogram touches a handful
// of its 496 buckets, so (index, count) pairs beat a dense array.

fn put_stats(out: &mut Vec<u8>, s: &RegistrySnapshot) {
    put_u16(out, s.counters.len().min(u16::MAX as usize) as u16);
    for (name, v) in &s.counters {
        put_str(out, name);
        put_u64(out, *v);
    }
    put_u16(out, s.gauges.len().min(u16::MAX as usize) as u16);
    for (name, v) in &s.gauges {
        put_str(out, name);
        put_u64(out, *v as u64);
    }
    put_u16(out, s.hists.len().min(u16::MAX as usize) as u16);
    for (name, h) in &s.hists {
        put_str(out, name);
        put_u64(out, h.count);
        put_u64(out, h.sum);
        put_u64(out, h.min);
        put_u64(out, h.max);
        let nonzero: Vec<(usize, u64)> = h
            .buckets
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, c)| *c > 0)
            .collect();
        put_u16(out, nonzero.len().min(u16::MAX as usize) as u16);
        for (idx, c) in nonzero {
            put_u16(out, idx.min(u16::MAX as usize) as u16);
            put_u64(out, c);
        }
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<RegistrySnapshot, WireError> {
    let n_counters = r.u16()? as usize;
    let mut counters = Vec::with_capacity(n_counters);
    for _ in 0..n_counters {
        let name = r.string()?;
        counters.push((name, r.u64()?));
    }
    let n_gauges = r.u16()? as usize;
    let mut gauges = Vec::with_capacity(n_gauges);
    for _ in 0..n_gauges {
        let name = r.string()?;
        gauges.push((name, r.u64()?.cast_signed()));
    }
    let n_hists = r.u16()? as usize;
    let mut hists = Vec::with_capacity(n_hists);
    for _ in 0..n_hists {
        let name = r.string()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let nonzero = r.u16()? as usize;
        let mut buckets: Vec<u64> = Vec::new();
        let mut prev: Option<usize> = None;
        for _ in 0..nonzero {
            let idx = r.u16()? as usize;
            if idx >= NBUCKETS {
                return Err(WireError::Malformed("histogram bucket out of range"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(WireError::Malformed("histogram buckets out of order"));
            }
            prev = Some(idx);
            buckets.resize(idx.saturating_add(1), 0);
            let v = r.u64()?;
            if let Some(slot) = buckets.get_mut(idx) {
                *slot = v;
            }
        }
        hists.push((
            name,
            HistSnapshot {
                buckets,
                count,
                sum,
                min,
                max,
            },
        ));
    }
    Ok(RegistrySnapshot {
        counters,
        gauges,
        hists,
    })
}

impl Message {
    /// Serializes the message into a complete envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the complete envelope to `out` without any intermediate
    /// allocation — the send path for buffered writers: a server batches
    /// many envelopes into one socket write by appending them all here.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_at = out.len();
        put_u32(out, 0); // length placeholder, patched below
        let payload_at = out.len();
        out.push(0); // type placeholder
        let t = match self {
            Message::Hello(h) => {
                out.push(h.version);
                put_str(out, &h.url);
                put_str(out, &h.query);
                put_str(out, &h.lod);
                put_str(out, &h.measure);
                put_u32(out, h.packet_size);
                put_u64(out, h.gamma.to_bits());
                T_HELLO
            }
            Message::Request(ids) => {
                put_u32(out, ids.len() as u32);
                for &i in ids {
                    put_u16(out, i);
                }
                T_REQUEST
            }
            Message::Done => T_DONE,
            Message::StatsRequest => T_STATS_REQUEST,
            Message::Header(h) => {
                put_header(out, h);
                T_HEADER
            }
            Message::Frame(bytes) => {
                out.extend_from_slice(bytes);
                T_FRAME
            }
            Message::RoundEnd => T_ROUND_END,
            Message::GaveUp => T_GAVE_UP,
            Message::Error { code, detail } => {
                out.push(*code as u8);
                put_str(out, detail);
                T_ERROR
            }
            Message::StatsReply(s) => {
                put_stats(out, s);
                T_STATS_REPLY
            }
        };
        if let Some(slot) = out.get_mut(payload_at) {
            *slot = t;
        }
        let len = out.len() - payload_at;
        if let Some(dst) = out.get_mut(len_at..len_at.saturating_add(4)) {
            dst.copy_from_slice(&(len as u32).to_be_bytes());
        }
        let crc = crc32(out.get(payload_at..).unwrap_or(&[]));
        put_u32(out, crc);
    }

    /// Parses one complete envelope (length prefix through CRC).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] parse variant; a truncated buffer, a mangled
    /// byte anywhere, or an unknown type never yields `Ok`.
    pub fn decode(envelope: &[u8]) -> Result<Message, WireError> {
        let Some((payload, stored, total)) = split_envelope(envelope)? else {
            return Err(WireError::Truncated);
        };
        if envelope.len() > total {
            return Err(WireError::Malformed("trailing bytes after envelope"));
        }
        if crc32(payload) != stored {
            return Err(WireError::CrcMismatch);
        }
        let (&t, body) = payload
            .split_first()
            .ok_or(WireError::Malformed("empty payload"))?;
        Message::decode_payload(t, body)
    }

    fn decode_payload(t: u8, body: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(body);
        let msg = match t {
            T_HELLO => {
                let version = r.u8()?;
                let url = r.string()?;
                let query = r.string()?;
                let lod = r.string()?;
                let measure = r.string()?;
                let packet_size = r.u32()?;
                let gamma = f64::from_bits(r.u64()?);
                Message::Hello(Hello {
                    version,
                    url,
                    query,
                    lod,
                    measure,
                    packet_size,
                    gamma,
                })
            }
            T_REQUEST => {
                let count = r.u32()? as usize;
                // body.len() >= 4 here (r.u32 just consumed 4 bytes);
                // a count whose doubling overflows is a mismatch too.
                if count.checked_mul(2) != body.len().checked_sub(4) {
                    return Err(WireError::Malformed("request count mismatch"));
                }
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(r.u16()?);
                }
                Message::Request(ids)
            }
            T_DONE => Message::Done,
            T_STATS_REQUEST => Message::StatsRequest,
            T_HEADER => Message::Header(read_header(&mut r)?),
            T_FRAME => Message::Frame(r.rest().to_vec()),
            T_ROUND_END => Message::RoundEnd,
            T_GAVE_UP => Message::GaveUp,
            T_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)
                    .ok_or(WireError::Malformed("unknown error code"))?;
                let detail = r.string()?;
                Message::Error { code, detail }
            }
            T_STATS_REPLY => Message::StatsReply(read_stats(&mut r)?),
            other => return Err(WireError::BadType(other)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Writes the full envelope to `w` and flushes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including write timeouts).
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Reads exactly one envelope from `r` and parses it.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on socket failure or timeout; parse variants
    /// for hostile/garbled input. A clean EOF before the first byte
    /// surfaces as `Io(UnexpectedEof)`.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Message, WireError> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len == 0 || len > MAX_BODY {
            return Err(WireError::BadLength(len));
        }
        // len <= MAX_BODY, so the widened allocation cannot overflow.
        let mut rest = vec![0u8; len.saturating_add(4)];
        r.read_exact(&mut rest)?;
        let (Some(payload), Some(crc_bytes)) = (rest.get(..len), rest.get(len..)) else {
            return Err(WireError::Truncated);
        };
        let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(payload) != stored {
            return Err(WireError::CrcMismatch);
        }
        let (&t, body) = payload
            .split_first()
            .ok_or(WireError::Malformed("empty payload"))?;
        Message::decode_payload(t, body)
    }
}

/// Appends a FRAME envelope carrying `payload` to `out`, bypassing
/// [`Message`] construction entirely.
///
/// The event-driven server sends tens of frames per round from cached
/// wire bytes; this writes `len ‖ type ‖ payload ‖ crc32` straight into
/// the session's output buffer — no `Vec<u8>` clone per frame, no
/// intermediate envelope. Byte-identical to
/// `Message::Frame(payload.to_vec()).encode()`.
pub fn put_frame_envelope(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len().saturating_add(1) as u32);
    let payload_at = out.len();
    out.push(T_FRAME);
    out.extend_from_slice(payload);
    let crc = crc32(out.get(payload_at..).unwrap_or(&[]));
    put_u32(out, crc);
}

/// A complete envelope split off the head of a buffer:
/// `(payload, stored crc, total envelope length)`, or `None` while the
/// buffer is still short of one whole envelope.
type SplitEnvelope<'a> = Option<(&'a [u8], u32, usize)>;

/// Splits the complete envelope at the head of `b`, panic-free on
/// every input shape. `Ok(None)` means `b` does not yet hold a
/// complete envelope (the incremental decoder's "absorb more" case);
/// a hostile length prefix fails as soon as the 4 prefix bytes are
/// present.
fn split_envelope(b: &[u8]) -> Result<SplitEnvelope<'_>, WireError> {
    let Some(len_bytes) = b.get(..4) else {
        return Ok(None);
    };
    let len = u32::from_be_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
    if len == 0 || len > MAX_BODY {
        return Err(WireError::BadLength(len));
    }
    // len <= MAX_BODY, so neither sum can overflow usize.
    let body_end = 4usize.saturating_add(len);
    let total = body_end.saturating_add(4);
    let (Some(payload), Some(crc_bytes)) = (b.get(4..body_end), b.get(body_end..total)) else {
        return Ok(None);
    };
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    Ok(Some((payload, stored, total)))
}

/// Incremental envelope decoder: absorbs arbitrarily-split byte chunks
/// from a nonblocking socket and yields complete [`Message`]s.
///
/// The blocking path reads exactly one envelope per call
/// ([`Message::read_from`]); a readiness loop instead gets whatever the
/// kernel has — half a length prefix, three coalesced envelopes, a
/// frame split mid-CRC. `StreamDecoder` buffers the tail and resumes:
///
/// ```
/// use mrtweb_proxy::wire::{Message, StreamDecoder};
///
/// let wire = Message::Done.encode();
/// let mut dec = StreamDecoder::new();
/// dec.absorb(&wire[..3]); // partial length prefix
/// assert!(dec.next_message().unwrap().is_none());
/// dec.absorb(&wire[3..]);
/// assert_eq!(dec.next_message().unwrap(), Some(Message::Done));
/// ```
///
/// Parse failures ([`WireError::BadLength`], [`WireError::CrcMismatch`],
/// …) are sticky in practice: the stream has lost framing, so the
/// session must be torn down — there is no resynchronization point.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    pos: usize,
}

/// Consumed-prefix length at which [`StreamDecoder`] compacts its
/// buffer instead of letting it grow.
const DECODER_COMPACT_AT: usize = 64 * 1024;

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Buffers `bytes` read from the stream.
    pub fn absorb(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered (partial envelopes included).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete envelope out of the buffer.
    ///
    /// `Ok(None)` means the buffer holds no complete envelope yet —
    /// absorb more bytes and retry.
    ///
    /// # Errors
    ///
    /// The same parse variants as [`Message::decode`]; an error means
    /// the stream is corrupt and the connection should be dropped.
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        // split_envelope validates the length prefix before waiting for
        // the body: a hostile length must fail now, not buffer 4 GiB
        // first.
        let b = self.buf.get(self.pos..).unwrap_or(&[]);
        let Some((payload, stored, total)) = split_envelope(b)? else {
            self.compact();
            return Ok(None);
        };
        if crc32(payload) != stored {
            return Err(WireError::CrcMismatch);
        }
        let (&t, body) = payload
            .split_first()
            .ok_or(WireError::Malformed("empty payload"))?;
        let msg = Message::decode_payload(t, body)?;
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= DECODER_COMPACT_AT {
            self.compact();
        }
        Ok(Some(msg))
    }

    /// Drops the consumed prefix so the buffer never grows past one
    /// partial envelope plus unparsed input.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_fixture() -> DocumentHeader {
        DocumentHeader {
            doc_len: 1234,
            m: 5,
            n: 8,
            packet_size: 256,
            plan: TransmissionPlan::sequential(vec![
                UnitSlice::new("0.1", 1000, 0.75),
                UnitSlice::new("0.2", 234, 0.25),
            ]),
        }
    }

    fn stats_fixture() -> RegistrySnapshot {
        let registry = mrtweb_obs::Registry::new();
        registry.counter("accepted").add(12);
        registry.counter("frames_sent").add(480);
        registry.gauge("active").set(-3);
        let h = registry.histogram("request_latency_ns");
        h.record(900);
        h.record(1_000_000);
        h.record(4_000_000_000);
        registry.snapshot()
    }

    #[test]
    fn every_message_type_round_trips() {
        let msgs = [
            Message::Hello(Hello::new("http://site/doc", "mobile wireless")),
            Message::Request(vec![0, 3, 7, 255]),
            Message::Request(Vec::new()),
            Message::Done,
            Message::StatsRequest,
            Message::Header(header_fixture()),
            Message::Frame((0..64).collect()),
            Message::Frame(Vec::new()),
            Message::RoundEnd,
            Message::GaveUp,
            Message::Error {
                code: ErrorCode::Busy,
                detail: "8 sessions active".to_owned(),
            },
            Message::StatsReply(RegistrySnapshot::default()),
            Message::StatsReply(stats_fixture()),
        ];
        for m in msgs {
            let wire = m.encode();
            assert_eq!(Message::decode(&wire).unwrap(), m, "decode {m:?}");
            let mut cursor = std::io::Cursor::new(wire);
            assert_eq!(Message::read_from(&mut cursor).unwrap(), m, "stream {m:?}");
        }
    }

    #[test]
    fn header_round_trip_preserves_plan_geometry() {
        let h = header_fixture();
        let wire = Message::Header(h.clone()).encode();
        let Message::Header(back) = Message::decode(&wire).unwrap() else {
            panic!("wrong type");
        };
        assert_eq!(back, h);
        assert_eq!(back.plan.total_bytes(), h.plan.total_bytes());
        assert_eq!(back.plan.slice_ranges(), h.plan.slice_ranges());
    }

    #[test]
    fn stats_round_trip_preserves_quantiles() {
        let snap = stats_fixture();
        let wire = Message::StatsReply(snap.clone()).encode();
        let Message::StatsReply(back) = Message::decode(&wire).unwrap() else {
            panic!("wrong type");
        };
        assert_eq!(back, snap);
        let h = back.hist("request_latency_ns");
        assert_eq!(h.count, 3);
        assert_eq!(
            h.quantile(0.5),
            snap.hist("request_latency_ns").quantile(0.5)
        );
    }

    #[test]
    fn hostile_histogram_bucket_is_rejected() {
        // A bucket index past NBUCKETS must be a typed parse error, not
        // a huge allocation.
        let mut body = vec![T_STATS_REPLY];
        put_u16(&mut body, 0); // counters
        put_u16(&mut body, 0); // gauges
        put_u16(&mut body, 1); // one histogram
        put_str(&mut body, "h");
        for _ in 0..4 {
            put_u64(&mut body, 1); // count/sum/min/max
        }
        put_u16(&mut body, 1); // one sparse bucket…
        put_u16(&mut body, u16::MAX); // …far out of range
        put_u64(&mut body, 1);
        let mut envelope = Vec::new();
        put_u32(&mut envelope, body.len() as u32);
        envelope.extend_from_slice(&body);
        put_u32(&mut envelope, crc32(&body));
        assert!(matches!(
            Message::decode(&envelope),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_never_decodes() {
        let wire = Message::Hello(Hello::new("u", "q")).encode();
        for cut in 0..wire.len() {
            assert!(Message::decode(&wire[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn any_single_byte_flip_is_rejected() {
        let wire = Message::Request(vec![1, 2, 3]).encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x20;
            assert!(Message::decode(&bad).is_err(), "flip at {i} decoded");
        }
    }

    #[test]
    fn hostile_length_prefixes_are_bounded() {
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        huge.extend_from_slice(&[0; 64]);
        assert!(matches!(
            Message::decode(&huge),
            Err(WireError::BadLength(_))
        ));
        let mut zero = Vec::new();
        put_u32(&mut zero, 0);
        put_u32(&mut zero, crc32(&[]));
        assert!(matches!(
            Message::decode(&zero),
            Err(WireError::BadLength(0))
        ));
    }

    fn message_menagerie() -> Vec<Message> {
        vec![
            Message::Hello(Hello::new("http://site/doc", "mobile wireless")),
            Message::Request(vec![0, 3, 7, 255]),
            Message::Done,
            Message::Header(header_fixture()),
            Message::Frame((0..64).collect()),
            Message::RoundEnd,
            Message::Error {
                code: ErrorCode::Busy,
                detail: "8 sessions active".to_owned(),
            },
            Message::StatsReply(stats_fixture()),
        ]
    }

    #[test]
    fn encode_into_appends_byte_identical_envelopes() {
        let mut batch = Vec::new();
        let mut expect = Vec::new();
        for m in message_menagerie() {
            m.encode_into(&mut batch);
            expect.extend_from_slice(&m.encode());
        }
        assert_eq!(batch, expect);
    }

    #[test]
    fn frame_envelope_helper_matches_message_encode() {
        for payload in [&b""[..], &b"x"[..], &[0u8; 300][..]] {
            let mut fast = Vec::new();
            put_frame_envelope(&mut fast, payload);
            assert_eq!(fast, Message::Frame(payload.to_vec()).encode());
        }
    }

    #[test]
    fn stream_decoder_yields_coalesced_messages_in_order() {
        let msgs = message_menagerie();
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode_into(&mut wire);
        }
        let mut dec = StreamDecoder::new();
        dec.absorb(&wire);
        for m in &msgs {
            assert_eq!(dec.next_message().unwrap().as_ref(), Some(m));
        }
        assert_eq!(dec.next_message().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn stream_decoder_resumes_across_any_split_point() {
        let wire = Message::Hello(Hello::new("http://site/doc", "q")).encode();
        for cut in 0..=wire.len() {
            let mut dec = StreamDecoder::new();
            dec.absorb(&wire[..cut]);
            if cut < wire.len() {
                assert_eq!(dec.next_message().unwrap(), None, "cut {cut}");
                dec.absorb(&wire[cut..]);
            }
            assert!(dec.next_message().unwrap().is_some(), "cut {cut}");
        }
    }

    #[test]
    fn stream_decoder_rejects_hostile_length_before_buffering() {
        let mut dec = StreamDecoder::new();
        dec.absorb(&u32::MAX.to_be_bytes());
        assert!(matches!(dec.next_message(), Err(WireError::BadLength(_))));
        let mut zero = StreamDecoder::new();
        zero.absorb(&0u32.to_be_bytes());
        assert!(matches!(zero.next_message(), Err(WireError::BadLength(0))));
    }

    #[test]
    fn stream_decoder_rejects_corrupt_crc() {
        let mut wire = Message::Request(vec![1, 2, 3]).encode();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut dec = StreamDecoder::new();
        dec.absorb(&wire);
        assert!(matches!(dec.next_message(), Err(WireError::CrcMismatch)));
    }

    #[test]
    fn unknown_type_is_rejected_with_valid_crc() {
        let body = [0x7Fu8, 1, 2, 3];
        let mut envelope = Vec::new();
        put_u32(&mut envelope, body.len() as u32);
        envelope.extend_from_slice(&body);
        put_u32(&mut envelope, crc32(&body));
        assert!(matches!(
            Message::decode(&envelope),
            Err(WireError::BadType(0x7F))
        ));
    }
}
