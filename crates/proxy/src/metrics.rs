//! Server metrics: lock-free counters and a printable snapshot.
//!
//! Every counter is a relaxed atomic — the hot path (frame writes)
//! pays one `fetch_add` per event and nothing else. A
//! [`MetricsSnapshot`] is a plain-old-data copy taken at observation
//! time; it travels over the wire protocol (as fixed-width fields, see
//! [`crate::wire::Message::MetricsReply`]) and renders as JSON for the
//! CLI and CI.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared between the accept loop and every session.
#[derive(Debug, Default)]
pub struct ProxyMetrics {
    /// Connections accepted by the listener.
    pub accepted: AtomicU64,
    /// Connections refused by admission control (max sessions or full
    /// accept queue).
    pub rejected: AtomicU64,
    /// Sessions currently being served.
    pub active: AtomicU64,
    /// Sessions that ended after the client sent DONE.
    pub completed: AtomicU64,
    /// Sessions ended by a protocol violation (bad HELLO, out-of-range
    /// frame request, unparseable control message).
    pub protocol_errors: AtomicU64,
    /// Transport frames pushed to clients.
    pub frames_sent: AtomicU64,
    /// Total wire bytes written to clients.
    pub bytes_sent: AtomicU64,
    /// Retransmission REQUEST control messages served.
    pub retransmit_requests: AtomicU64,
    /// Control messages rejected by the envelope CRC-32 check.
    pub crc_rejects: AtomicU64,
    /// Sessions reaped after a read/write timeout (idle client).
    pub timeouts: AtomicU64,
}

impl ProxyMetrics {
    /// Copies the counters into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            retransmit_requests: self.retransmit_requests.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ProxyMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused by admission control.
    pub rejected: u64,
    /// Sessions active at snapshot time.
    pub active: u64,
    /// Sessions completed cleanly.
    pub completed: u64,
    /// Sessions ended by protocol violations.
    pub protocol_errors: u64,
    /// Transport frames pushed.
    pub frames_sent: u64,
    /// Wire bytes written.
    pub bytes_sent: u64,
    /// Retransmission rounds served.
    pub retransmit_requests: u64,
    /// Envelope CRC rejections on control reads.
    pub crc_rejects: u64,
    /// Idle-session reaps.
    pub timeouts: u64,
}

impl MetricsSnapshot {
    /// Number of wire fields (kept in lockstep with
    /// [`MetricsSnapshot::as_fields`] / [`MetricsSnapshot::from_fields`]).
    pub const FIELD_COUNT: usize = 10;

    /// The snapshot as a fixed-order field array for wire transport.
    pub fn as_fields(&self) -> [u64; Self::FIELD_COUNT] {
        [
            self.accepted,
            self.rejected,
            self.active,
            self.completed,
            self.protocol_errors,
            self.frames_sent,
            self.bytes_sent,
            self.retransmit_requests,
            self.crc_rejects,
            self.timeouts,
        ]
    }

    /// Rebuilds a snapshot from the wire field order.
    pub fn from_fields(f: [u64; Self::FIELD_COUNT]) -> Self {
        MetricsSnapshot {
            accepted: f[0],
            rejected: f[1],
            active: f[2],
            completed: f[3],
            protocol_errors: f[4],
            frames_sent: f[5],
            bytes_sent: f[6],
            retransmit_requests: f[7],
            crc_rejects: f[8],
            timeouts: f[9],
        }
    }

    /// Renders the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        for (i, (key, value)) in [
            ("accepted", self.accepted),
            ("rejected", self.rejected),
            ("active", self.active),
            ("completed", self.completed),
            ("protocol_errors", self.protocol_errors),
            ("frames_sent", self.frames_sent),
            ("bytes_sent", self.bytes_sent),
            ("retransmit_requests", self.retransmit_requests),
            ("crc_rejects", self.crc_rejects),
            ("timeouts", self.timeouts),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{key}\": {value}");
        }
        out.push('}');
        out
    }

    /// Whether the counters that must stay zero on a clean loopback run
    /// (CRC rejections and idle reaps) are in fact zero.
    pub fn is_clean(&self) -> bool {
        self.crc_rejects == 0 && self.timeouts == 0 && self.protocol_errors == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: 12,
            rejected: 1,
            active: 3,
            completed: 9,
            protocol_errors: 0,
            frames_sent: 480,
            bytes_sent: 131_072,
            retransmit_requests: 17,
            crc_rejects: 0,
            timeouts: 0,
        }
    }

    #[test]
    fn field_round_trip_is_identity() {
        let s = sample();
        assert_eq!(MetricsSnapshot::from_fields(s.as_fields()), s);
    }

    #[test]
    fn json_lists_every_field_once() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "accepted",
            "rejected",
            "active",
            "completed",
            "protocol_errors",
            "frames_sent",
            "bytes_sent",
            "retransmit_requests",
            "crc_rejects",
            "timeouts",
        ] {
            assert_eq!(json.matches(&format!("\"{key}\"")).count(), 1, "{key}");
        }
        assert!(json.contains("\"frames_sent\": 480"));
    }

    #[test]
    fn snapshot_reflects_counter_updates() {
        let m = ProxyMetrics::default();
        ProxyMetrics::inc(&m.accepted);
        ProxyMetrics::add(&m.bytes_sent, 300);
        ProxyMetrics::inc(&m.timeouts);
        let s = m.snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.bytes_sent, 300);
        assert!(!s.is_clean());
        assert!(MetricsSnapshot::default().is_clean());
    }
}
