//! Libc-free Linux syscall shim for the event-driven server.
//!
//! The event engine needs exactly two kernel facilities std does not
//! expose: **epoll** (scalable readiness notification) and **eventfd**
//! (a cheap cross-thread wakeup the acceptor uses to nudge worker
//! loops). Rather than pull in a dependency, this module declares the
//! four C runtime entry points directly — std already links the C
//! runtime, so the symbols are always present — and wraps them in safe
//! RAII types ([`Epoll`], [`WakeFd`]) built on [`OwnedFd`].
//!
//! Everything `unsafe` in the proxy crate lives in this file, each
//! block with a SAFETY argument; the rest of the crate is forbidden
//! from using `unsafe` at all on the fallback build.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: both directions closed (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (half-open connection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
/// it to 4-byte alignment (a 32-bit legacy); other architectures use
/// natural alignment. Getting this wrong corrupts the event array, so
/// the layout mirrors the uapi definition exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// One readiness event: the token registered for the fd and the
/// `EPOLL*` mask the kernel reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// Caller-chosen token identifying the registration.
    pub token: u64,
    /// Bitwise OR of ready `EPOLL*` conditions.
    pub mask: u32,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw OS error if the kernel refuses (fd exhaustion).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 reads no caller memory; it returns a
        // new fd or -1, checked before use.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, valid descriptor that
        // nothing else owns; OwnedFd takes sole responsibility for
        // closing it.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEpollEvent {
            events: mask,
            data: token,
        };
        // SAFETY: `ev` is a live, properly-laid-out epoll_event for
        // the duration of the call; the kernel only reads it. Both fds
        // are valid (self.fd is owned, `fd` is the caller's open
        // socket).
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &raw mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for the conditions in `mask`, reported with
    /// `token`.
    ///
    /// # Errors
    ///
    /// The raw OS error (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, mask, token)
    }

    /// Changes the interest mask of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The raw OS error (e.g. the fd was never registered).
    pub fn modify(&self, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, mask, token)
    }

    /// Removes `fd` from the interest set. Harmless if the fd is
    /// already gone (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` blocks indefinitely), filling `out` with the ready
    /// set. A signal interruption or timeout yields an empty `out`.
    ///
    /// # Errors
    ///
    /// The raw OS error for genuine failures (never `EINTR`).
    pub fn wait(&self, out: &mut Vec<Readiness>, timeout_ms: i32) -> io::Result<()> {
        const CAPACITY: usize = 256;
        const CAPACITY_I32: i32 = 256;
        let mut events = [RawEpollEvent { events: 0, data: 0 }; CAPACITY];
        // SAFETY: `events` outlives the call and holds CAPACITY
        // properly-laid-out entries; maxevents matches, so the kernel
        // writes only within bounds.
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                CAPACITY_I32,
                timeout_ms,
            )
        };
        out.clear();
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in events.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let RawEpollEvent { events, data } = *ev;
            out.push(Readiness {
                token: data,
                mask: events,
            });
        }
        Ok(())
    }
}

/// An owned eventfd used as a cross-thread wakeup: any thread calls
/// [`WakeFd::wake`], and the event loop polling the fd sees `EPOLLIN`.
#[derive(Debug)]
pub struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates a nonblocking eventfd (close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw OS error if the kernel refuses.
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: eventfd reads no caller memory; it returns a new fd
        // or -1, checked before use.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, valid descriptor that
        // nothing else owns.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(WakeFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Signals the fd: the next `epoll_wait` on it reports `EPOLLIN`.
    /// Best-effort; an error (counter at `u64::MAX − 1`) is ignored
    /// because a saturated counter is already a pending wakeup.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: `one` is 8 valid bytes for the duration of the call
        // and the fd is an open eventfd owned by self.
        let _ = unsafe { write(self.fd.as_raw_fd(), one.as_ptr(), one.len()) };
    }

    /// Consumes all pending wakeups so the fd stops reporting readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 writable bytes for the duration of the
        // call and the fd is an open eventfd owned by self. One read
        // resets the counter to zero (non-semaphore eventfd).
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), buf.len()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wakefd_round_trip_through_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw(), EPOLLIN, 7).unwrap();

        let mut ready = Vec::new();
        ep.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty(), "no wakeup pending yet");

        wake.wake();
        ep.wait(&mut ready, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 7);
        assert_ne!(ready[0].mask & EPOLLIN, 0);

        wake.drain();
        ep.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty(), "drained fd is no longer readable");
    }

    #[test]
    fn socket_readability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut ready = Vec::new();
        ep.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty());

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        ep.wait(&mut ready, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 42);
        assert_ne!(ready[0].mask & EPOLLIN, 0);

        // A socket with kernel buffer space is write-ready.
        ep.modify(rx.as_raw_fd(), EPOLLOUT, 43).unwrap();
        ep.wait(&mut ready, 1000).unwrap();
        assert_eq!(ready[0].token, 43);
        assert_ne!(ready[0].mask & EPOLLOUT, 0);

        ep.delete(rx.as_raw_fd());
        ep.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty(), "deleted fd reports nothing");

        let mut rx = rx;
        let mut buf = [0u8; 4];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 1).unwrap();
        drop(tx);

        let mut ready = Vec::new();
        ep.wait(&mut ready, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_ne!(
            ready[0].mask & (EPOLLRDHUP | EPOLLHUP | EPOLLIN),
            0,
            "closed peer must surface via rdhup/hup/in, got {:#x}",
            ready[0].mask
        );
    }
}
