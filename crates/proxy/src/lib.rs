//! mrtweb-proxy: the base-station gateway as a real TCP daemon.
//!
//! The paper's architecture puts a proxy at the base station: the wired
//! side fetches and encodes documents, the wireless side streams
//! dispersal frames to weakly-connected mobile hosts. This crate makes
//! that half real — a dependency-free `std::net` server that frames the
//! existing [`mrtweb_transport::live`] protocol over TCP:
//!
//! - [`wire`] — length-prefixed, CRC-32-checked message envelopes and
//!   the HELLO/HEADER handshake that carries a
//!   [`mrtweb_transport::live::DocumentHeader`] to the client.
//! - [`server`] — a thread-pool server with per-connection session
//!   state, admission control (max sessions, bounded accept queue,
//!   per-session frame budget), read/write timeouts, optional
//!   fault-injected last hop, and clean shutdown.
//! - [`event`] (Linux, feature `event`, on by default) — the
//!   event-driven engine: a dedicated acceptor distributing
//!   connections across sharded epoll readiness loops, one
//!   nonblocking session state machine per connection, bounded
//!   write-backpressured output buffers. Same wire protocol, same
//!   admission and fault semantics, same observability events — it
//!   exists to break the thread-pool's throughput ceiling.
//! - [`sys`] — the libc-free epoll/eventfd syscall shim the event
//!   engine stands on.
//! - [`client`] — a blocking fetch that drives
//!   [`mrtweb_transport::live::LiveClient`] over the socket, with
//!   early stop at a content threshold or target resolution.
//! - [`stats`] — named counters, gauges, and per-request latency
//!   histograms on the [`mrtweb_obs`] registry, with wire-transportable
//!   snapshots rendered as JSON.
//! - [`loadgen`] — a closed-loop load generator reporting throughput
//!   and latency percentiles.
//!
//! The TCP hop models the reliable wired backbone (envelope CRCs guard
//! against framing bugs, not line noise); the simulated wireless last
//! hop is the optional fault injector mangling inner transport frames,
//! which the transport CRC-16 catches exactly as in the simulator.

// The only unsafe in this crate is the epoll syscall shim in `sys`;
// every other module stays unsafe-free, and the blocking-fallback
// build proves it crate-wide.
#![cfg_attr(not(all(target_os = "linux", feature = "event")), forbid(unsafe_code))]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod client;
#[cfg(all(target_os = "linux", feature = "event"))]
pub mod event;
pub mod loadgen;
pub mod server;
pub mod stats;
#[cfg(all(target_os = "linux", feature = "event"))]
pub mod sys;
pub mod wire;
