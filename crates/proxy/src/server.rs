//! The base-station gateway daemon: a thread-pool TCP server.
//!
//! The paper's deployment model puts the document transmitter at a
//! proxy on the base station, mediating between web servers and
//! weakly-connected mobile clients. This module is that daemon:
//!
//! * a listener thread **admits** connections — a session slot counter
//!   enforces `max_sessions`, and a bounded accept queue provides
//!   backpressure; refusals are *told* to the client with a typed
//!   [`ErrorCode::Busy`] rather than a silent close;
//! * a fixed **worker pool** serves admitted sessions: HELLO →
//!   [`Gateway::prepare`] → HEADER → rounds of frames, with
//!   retransmission driven by client REQUEST messages exactly like the
//!   in-process [`mrtweb_transport::live`] protocol;
//! * per-session **budgets** (frame count, round count) and read/write
//!   **timeouts** bound every resource a slow, hostile, or vanished
//!   client can hold; idle sessions are reaped by the read timeout;
//! * optional **fault injection** mangles the transport frames inside
//!   the (reliable) proxy envelope, so the PR 2 fault scenarios run
//!   over real sockets: the TCP hop plays the wired backbone, the
//!   injected faults play the wireless last hop;
//! * shutdown is **clean**: a flag plus a listener self-connect wakeup,
//!   then queue close and worker joins — no thread is ever detached.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::fault::{FaultConfig, FaultyLink};
use mrtweb_channel::link::Link;
use mrtweb_obs::clock::now_nanos;
use mrtweb_obs::{emit, emit_at, EventKind, RegistrySnapshot};
use mrtweb_store::gateway::{Gateway, GatewayError, Request};
use mrtweb_transport::error::Error as TransportError;
use mrtweb_transport::live::LiveServer;

use crate::stats::ProxyStats;
use crate::wire::{ErrorCode, Hello, Message, WireError, PROTOCOL_VERSION};

/// Tunable knobs of the daemon. All bounds are per the admission-control
/// design in DESIGN.md §12.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission limit: sessions admitted (queued + active) at once.
    pub max_sessions: usize,
    /// Worker threads actively serving sessions.
    pub workers: usize,
    /// Bounded accept queue between listener and workers; a full queue
    /// rejects further connections even under `max_sessions`.
    pub accept_backlog: usize,
    /// Per-session cap on frames served; exceeding it ends the session
    /// with [`ErrorCode::BudgetExceeded`].
    pub frame_budget: u64,
    /// Per-session cap on serving rounds (initial push + retransmission
    /// rounds); exceeding it sends [`Message::GaveUp`].
    pub max_rounds: usize,
    /// Socket read timeout: an idle client is reaped after this long.
    pub read_timeout: Duration,
    /// Socket write timeout: a stalled client is reaped after this long.
    pub write_timeout: Duration,
    /// Optional fault schedule mangling the transport frames on the
    /// write path (the simulated wireless hop).
    pub fault: Option<FaultConfig>,
    /// Base seed for per-session fault schedules.
    pub fault_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            workers: 8,
            accept_backlog: 64,
            frame_budget: 1 << 20,
            max_rounds: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            fault: None,
            fault_seed: 0,
        }
    }
}

/// Bounded hand-off queue between the listener and the worker pool
/// (dependency-free: `Mutex` + `Condvar`).
struct SessionQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner {
    items: VecDeque<(TcpStream, u64)>,
    closed: bool,
}

impl SessionQueue {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(SessionQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Enqueues unless full or closed; returns the connection back on
    /// refusal so the caller can tell the client why.
    fn try_push(&self, item: (TcpStream, u64)) -> Result<(), (TcpStream, u64)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next session; `None` once closed and drained.
    fn pop(&self) -> Option<(TcpStream, u64)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }
}

/// A running proxy daemon. Dropping without [`Server::shutdown`] leaks
/// the listener thread until process exit; always shut down.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the listener and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: &str, gateway: Gateway, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::new());
        let queue = SessionQueue::new(config.accept_backlog);
        let gateway = Arc::new(gateway);
        let admitted = Arc::new(AtomicU64::new(0));
        let config = Arc::new(config);

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let gateway = Arc::clone(&gateway);
            let stats = Arc::clone(&stats);
            let admitted = Arc::clone(&admitted);
            let config = Arc::clone(&config);
            workers.push(std::thread::spawn(move || {
                while let Some((stream, session_id)) = queue.pop() {
                    stats.active.inc();
                    serve_session(stream, session_id, &gateway, &config, &stats);
                    stats.active.dec();
                    // ORDERING: admission-slot release; the counter only
                    // bounds concurrent sessions (acceptor re-checks it
                    // every accept) and publishes no session state — the
                    // work queue is the handoff.
                    admitted.fetch_sub(1, Ordering::Relaxed);
                }
            }));
        }

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let queue = Arc::clone(&queue);
            let admitted = Arc::clone(&admitted);
            let max_sessions = config.max_sessions.max(1) as u64;
            let write_timeout = config.write_timeout;
            std::thread::spawn(move || {
                accept_loop(
                    &listener,
                    &shutdown,
                    &stats,
                    &queue,
                    &admitted,
                    max_sessions,
                    write_timeout,
                );
                queue.close();
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            stats,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live stats snapshot.
    pub fn stats(&self) -> RegistrySnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, drains the queue, joins every thread, and
    /// returns the final stats. In-flight sessions run to completion
    /// (bounded by their timeouts and budgets).
    pub fn shutdown(mut self) -> RegistrySnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the listener out of accept(): connect to ourselves. The
        // accept loop sees the flag and exits before serving it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}

/// Object-safe face shared by both serving engines, so callers (CLI,
/// load generator, tests, CI) switch engines with a flag instead of a
/// type.
pub trait ProxyServer: Send {
    /// The bound address (resolves ephemeral ports).
    fn local_addr(&self) -> SocketAddr;
    /// A live stats snapshot.
    fn stats(&self) -> RegistrySnapshot;
    /// Stops the daemon and returns the final stats.
    fn shutdown(self: Box<Self>) -> RegistrySnapshot;
}

impl ProxyServer for Server {
    fn local_addr(&self) -> SocketAddr {
        Server::local_addr(self)
    }

    fn stats(&self) -> RegistrySnapshot {
        Server::stats(self)
    }

    fn shutdown(self: Box<Self>) -> RegistrySnapshot {
        Server::shutdown(*self)
    }
}

#[cfg(all(target_os = "linux", feature = "event"))]
impl ProxyServer for crate::event::EventServer {
    fn local_addr(&self) -> SocketAddr {
        crate::event::EventServer::local_addr(self)
    }

    fn stats(&self) -> RegistrySnapshot {
        crate::event::EventServer::stats(self)
    }

    fn shutdown(self: Box<Self>) -> RegistrySnapshot {
        crate::event::EventServer::shutdown(*self)
    }
}

/// Which serving engine [`bind_engine`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The event engine where the build supports it, else blocking.
    #[default]
    Auto,
    /// The epoll readiness-loop engine (Linux, feature `event`);
    /// binding fails elsewhere.
    Event,
    /// The thread-pool engine, available on every build.
    Blocking,
}

impl Engine {
    /// Parses a CLI engine name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "auto" => Some(Engine::Auto),
            "event" => Some(Engine::Event),
            "blocking" => Some(Engine::Blocking),
            _ => None,
        }
    }

    /// The engine that actually runs on this build (resolves `Auto`).
    #[must_use]
    pub fn resolved(self) -> &'static str {
        match self {
            Engine::Blocking => "blocking",
            Engine::Event => "event",
            Engine::Auto => {
                if cfg!(all(target_os = "linux", feature = "event")) {
                    "event"
                } else {
                    "blocking"
                }
            }
        }
    }
}

/// Binds the chosen engine behind the [`ProxyServer`] face.
///
/// # Errors
///
/// Socket/epoll setup failures, and `Unsupported` when [`Engine::Event`]
/// is demanded on a build without the event engine.
pub fn bind_engine(
    addr: &str,
    gateway: Gateway,
    config: ServerConfig,
    engine: Engine,
) -> std::io::Result<Box<dyn ProxyServer>> {
    match engine {
        Engine::Blocking => Ok(Box::new(Server::bind(addr, gateway, config)?)),
        #[cfg(all(target_os = "linux", feature = "event"))]
        Engine::Auto | Engine::Event => Ok(Box::new(crate::event::EventServer::bind(
            addr, gateway, config,
        )?)),
        #[cfg(not(all(target_os = "linux", feature = "event")))]
        Engine::Auto => Ok(Box::new(Server::bind(addr, gateway, config)?)),
        #[cfg(not(all(target_os = "linux", feature = "event")))]
        Engine::Event => Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "event engine requires Linux and the `event` feature",
        )),
    }
}

/// Accepts until shut down, applying admission control.
fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    stats: &ProxyStats,
    queue: &SessionQueue,
    admitted: &AtomicU64,
    max_sessions: u64,
    write_timeout: Duration,
) {
    let mut next_session_id = 0u64;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        stats.accepted.inc();
        let session_id = next_session_id;
        next_session_id += 1;

        // Admission: reserve a session slot, or refuse loudly.
        let prior = admitted.fetch_add(1, Ordering::SeqCst);
        if prior >= max_sessions {
            admitted.fetch_sub(1, Ordering::SeqCst);
            reject(
                stream,
                write_timeout,
                stats,
                session_id,
                0,
                "session limit reached",
            );
            continue;
        }
        stats.note_in_flight(prior + 1);
        if let Err((stream, _)) = queue.try_push((stream, session_id)) {
            admitted.fetch_sub(1, Ordering::SeqCst);
            reject(
                stream,
                write_timeout,
                stats,
                session_id,
                1,
                "accept queue full",
            );
        }
    }
}

/// Tells a refused client why, then hangs up. `reason` follows the
/// [`EventKind::AdmissionReject`] schema (0 = session slots full,
/// 1 = accept queue full). Shared with the event engine, which applies
/// identical admission semantics.
pub(crate) fn reject(
    mut stream: TcpStream,
    write_timeout: Duration,
    stats: &ProxyStats,
    session_id: u64,
    reason: u64,
    why: &str,
) {
    stats.rejected.inc();
    emit(EventKind::AdmissionReject, session_id, reason);
    let _ = stream.set_write_timeout(Some(write_timeout));
    let msg = Message::Error {
        code: ErrorCode::Busy,
        detail: why.to_owned(),
    };
    let _ = msg.write_to(&mut stream);
}

/// How one session ended, for counter bookkeeping. Both engines map
/// ends to identical counters and trace codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionEnd {
    /// Client sent DONE (or the metrics exchange finished).
    Completed,
    /// The peer violated the protocol (bad HELLO, unknown control,
    /// out-of-range frame index).
    ProtocolError,
    /// A read or write timed out (idle or stalled client).
    TimedOut,
    /// A garbled control envelope failed the CRC check.
    CrcReject,
    /// The socket died or a budget ran out; nothing to count beyond
    /// what the handler already recorded.
    Closed,
}

/// Serves one admitted session to completion.
fn serve_session(
    mut stream: TcpStream,
    session_id: u64,
    gateway: &Gateway,
    config: &ServerConfig,
    stats: &ProxyStats,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    emit(EventKind::SessionStart, session_id, 0);
    let start = now_nanos();
    let end = session_body(&mut stream, session_id, gateway, config, stats);
    let elapsed = now_nanos().saturating_sub(start);
    stats.request_latency.record(elapsed);
    emit_at(start, EventKind::RequestSpan, elapsed, session_id);
    let end_code = match end {
        SessionEnd::Completed => {
            stats.completed.inc();
            0
        }
        SessionEnd::ProtocolError => {
            stats.protocol_errors.inc();
            1
        }
        SessionEnd::TimedOut => {
            stats.timeouts.inc();
            2
        }
        SessionEnd::CrcReject => {
            stats.crc_rejects.inc();
            3
        }
        SessionEnd::Closed => 4,
    };
    emit(EventKind::SessionEnd, session_id, end_code);
}

/// Sends `msg`, booking the bytes; `false` if the socket failed.
fn send(stream: &mut TcpStream, stats: &ProxyStats, msg: &Message) -> Result<(), SessionEnd> {
    let wire = msg.encode();
    match stream.write_all(&wire).and_then(|()| stream.flush()) {
        Ok(()) => {
            stats.bytes_sent.add(wire.len() as u64);
            Ok(())
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(SessionEnd::TimedOut)
        }
        Err(_) => Err(SessionEnd::Closed),
    }
}

/// Sends a typed error and reports how the session should be counted.
fn fail(
    stream: &mut TcpStream,
    stats: &ProxyStats,
    code: ErrorCode,
    detail: String,
    end: SessionEnd,
) -> SessionEnd {
    let _ = send(stream, stats, &Message::Error { code, detail });
    end
}

fn session_body(
    stream: &mut TcpStream,
    session_id: u64,
    gateway: &Gateway,
    config: &ServerConfig,
    stats: &ProxyStats,
) -> SessionEnd {
    // ── handshake ───────────────────────────────────────────────────
    let hello = match Message::read_from(stream) {
        Ok(Message::Hello(h)) => h,
        Ok(Message::StatsRequest) => {
            let reply = Message::StatsReply(stats.snapshot());
            return match send(stream, stats, &reply) {
                Ok(()) => SessionEnd::Completed,
                Err(end) => end,
            };
        }
        Ok(_) => {
            return fail(
                stream,
                stats,
                ErrorCode::BadRequest,
                "expected HELLO".to_owned(),
                SessionEnd::ProtocolError,
            )
        }
        Err(e) if e.is_timeout() => return SessionEnd::TimedOut,
        Err(WireError::CrcMismatch) => {
            emit(EventKind::CrcReject, session_id, 0);
            return fail(
                stream,
                stats,
                ErrorCode::BadRequest,
                "corrupted HELLO envelope".to_owned(),
                SessionEnd::CrcReject,
            );
        }
        Err(WireError::Io(_)) => return SessionEnd::Closed,
        Err(e) => {
            return fail(
                stream,
                stats,
                ErrorCode::BadRequest,
                format!("{e}"),
                SessionEnd::ProtocolError,
            )
        }
    };

    if hello.version != PROTOCOL_VERSION {
        return fail(
            stream,
            stats,
            ErrorCode::BadRequest,
            format!(
                "protocol version {} unsupported (want {PROTOCOL_VERSION})",
                hello.version
            ),
            SessionEnd::ProtocolError,
        );
    }

    let server = match prepare(gateway, &hello) {
        Ok(server) => server,
        // An unknown URL or unencodable request is a well-formed ask
        // that the server refuses — typed, but not a protocol error.
        Err((code, detail)) => return fail(stream, stats, code, detail, SessionEnd::Closed),
    };
    let header = server.header().clone();
    let n = header.n;
    if let Err(end) = send(stream, stats, &Message::Header(header)) {
        return end;
    }

    // The wireless-hop simulator, when configured: mangles transport
    // frames *inside* intact proxy envelopes, per-session seeded so
    // concurrent sessions draw independent deterministic schedules.
    let mut faulty = config.fault.clone().map(|cfg| {
        let seed = config.fault_seed ^ session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FaultyLink::new(
            Link::new(
                Bandwidth::from_kbps(19.2),
                BernoulliChannel::new(0.0, seed),
                seed,
            ),
            cfg,
            seed,
        )
    });

    // ── serving rounds ──────────────────────────────────────────────
    let mut to_send: Vec<usize> = (0..n).collect();
    let mut frames_served = 0u64;
    let mut faults_seen = 0usize;
    for round in 0..config.max_rounds {
        let round_span = mrtweb_obs::Span::start(EventKind::RoundSpan);
        for &idx in &to_send {
            // The round's indices came off the wire: an out-of-range
            // request is a typed protocol error, never a panic. An
            // in-range packet this server does not hold (a trimmed or
            // rotted edge-cache entry) is skipped — the client
            // reconstructs from any M of the rest.
            let bytes = match server.frame_checked(idx) {
                Ok(bytes) => bytes,
                Err(TransportError::FrameNotHeld { .. }) => continue,
                Err(e @ TransportError::FrameOutOfRange { .. }) => {
                    return fail(
                        stream,
                        stats,
                        ErrorCode::BadRequest,
                        format!("{e}"),
                        SessionEnd::ProtocolError,
                    );
                }
                Err(e) => {
                    return fail(
                        stream,
                        stats,
                        ErrorCode::Internal,
                        format!("{e}"),
                        SessionEnd::Closed,
                    );
                }
            };
            if frames_served >= config.frame_budget {
                emit(EventKind::BudgetExhausted, session_id, config.frame_budget);
                return fail(
                    stream,
                    stats,
                    ErrorCode::BudgetExceeded,
                    format!("session frame budget {} exhausted", config.frame_budget),
                    SessionEnd::Closed,
                );
            }
            frames_served += 1;
            stats.frames_sent.inc();
            emit(EventKind::FrameSent, session_id, idx as u64);
            if let Some(faulty) = faulty.as_mut() {
                for delivery in faulty.transmit(bytes) {
                    if let Err(end) = send(stream, stats, &Message::Frame(delivery.bytes)) {
                        return end;
                    }
                }
                faults_seen = book_faults(faulty, faults_seen, stats);
            } else if let Err(end) = send(stream, stats, &Message::Frame(bytes.to_vec())) {
                return end;
            }
        }
        if let Some(faulty) = faulty.as_mut() {
            // End of round: held (reordered) frames can no longer be
            // overtaken.
            for delivery in faulty.flush() {
                if let Err(end) = send(stream, stats, &Message::Frame(delivery.bytes)) {
                    return end;
                }
            }
        }
        if let Err(end) = send(stream, stats, &Message::RoundEnd) {
            return end;
        }
        round_span.end(round as u64);

        // ── control ─────────────────────────────────────────────────
        match Message::read_from(stream) {
            Ok(Message::Done) => return SessionEnd::Completed,
            Ok(Message::Request(ids)) => {
                stats.retransmit_requests.inc();
                emit(EventKind::RetransmitRequest, session_id, ids.len() as u64);
                to_send = ids.into_iter().map(usize::from).collect();
            }
            Ok(_) => {
                return fail(
                    stream,
                    stats,
                    ErrorCode::BadRequest,
                    "expected REQUEST or DONE".to_owned(),
                    SessionEnd::ProtocolError,
                )
            }
            Err(e) if e.is_timeout() => return SessionEnd::TimedOut,
            Err(WireError::CrcMismatch) => {
                emit(EventKind::CrcReject, session_id, 0);
                return fail(
                    stream,
                    stats,
                    ErrorCode::BadRequest,
                    "corrupted control envelope".to_owned(),
                    SessionEnd::CrcReject,
                );
            }
            Err(WireError::Io(_)) => return SessionEnd::Closed,
            Err(e) => {
                return fail(
                    stream,
                    stats,
                    ErrorCode::BadRequest,
                    format!("{e}"),
                    SessionEnd::ProtocolError,
                )
            }
        }
    }
    let _ = send(stream, stats, &Message::GaveUp);
    SessionEnd::Closed
}

/// Re-emits newly scheduled wireless-hop faults as trace events and
/// books the counter; returns the new watermark. The channel layer
/// stays deterministic and obs-free — the proxy polls its replay trace
/// instead.
pub(crate) fn book_faults<L: mrtweb_channel::loss::LossModel>(
    faulty: &FaultyLink<L>,
    seen: usize,
    stats: &ProxyStats,
) -> usize {
    let trace = faulty.scheduler().trace();
    for event in &trace[seen..] {
        stats.faults_injected.inc();
        emit(
            EventKind::FaultInjected,
            event.packet,
            u64::from(event.kind.code()),
        );
    }
    trace.len()
}

/// HELLO → prepared [`LiveServer`], with gateway failures mapped to
/// wire error codes. Served through the gateway's edge cache when the
/// base station has one attached (a hit re-frames the at-rest cooked
/// blob with zero codec work), and through the shared
/// prepared-transmission cache otherwise: concurrent and repeat
/// sessions for one request shape replay a single encode either way.
pub(crate) fn prepare(
    gateway: &Gateway,
    hello: &Hello,
) -> Result<Arc<LiveServer>, (ErrorCode, String)> {
    let request = Request::from_options(
        &hello.url,
        &hello.query,
        &hello.lod,
        &hello.measure,
        hello.packet_size as usize,
        hello.gamma,
    )
    .map_err(|e| (ErrorCode::BadRequest, format!("{e}")))?;
    gateway
        .prepare_edge(&request)
        .map(|(server, _hit)| server)
        .map_err(|e| match e {
            GatewayError::NotFound(_) => (ErrorCode::NotFound, format!("{e}")),
            GatewayError::BadRequest(_) | GatewayError::Encoding(_) => {
                (ErrorCode::BadRequest, format!("{e}"))
            }
            GatewayError::Edge(_) => (ErrorCode::Internal, format!("{e}")),
        })
}
