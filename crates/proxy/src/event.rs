//! The event-driven serving engine: sharded epoll readiness loops.
//!
//! The thread-pool engine ([`crate::server`]) parks one OS thread per
//! session; at base-station populations the pool serializes and
//! throughput flatlines. This engine replaces parked threads with
//! **per-connection session state machines** driven by readiness:
//!
//! * a dedicated **acceptor** thread applies the same admission control
//!   as the blocking engine (session slots, typed
//!   [`ErrorCode::Busy`] refusals), then hands each admitted
//!   connection to one of N **worker event loops** round-robin via an
//!   intake queue plus an eventfd wakeup;
//! * each worker owns an epoll instance and drives its sessions with
//!   nonblocking reads into an incremental [`StreamDecoder`] and
//!   writes out of a **bounded output buffer** — when a slow client
//!   stops reading, the buffer caps at [`OUT_CAP`] plus one envelope,
//!   `EPOLLOUT` interest is registered, and frame production pauses
//!   until the kernel drains (write-readiness-driven backpressure);
//! * per-session **budgets** (frame count, round count) and idle/stall
//!   reaping mirror the blocking engine exactly, as do the obs events:
//!   the same `SessionStart`/`FrameSent`/`RequestSpan`/`SessionEnd`
//!   trace comes out of either engine, plus per-loop
//!   [`EventKind::LoopWait`] readiness-wait spans only this engine has.
//!
//! A session advances through [`Phase`]s:
//!
//! ```text
//! AwaitHello ──HELLO──▶ Serving(cursor) ──round done──▶ AwaitControl
//!     │                     │   ▲                            │
//!     │ STATS_REQUEST       │   └────────REQUEST(ids)────────┤
//!     ▼                     ▼ DONE / error                   ▼ DONE
//!  Draining ◀───────────────┴────────────────────────────────┘
//! ```
//!
//! `Draining` flushes the output buffer (typed error, GAVE_UP, or
//! stats reply) and closes with a recorded end code.

use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::fault::FaultyLink;
use mrtweb_channel::link::Link;
use mrtweb_obs::clock::now_nanos;
use mrtweb_obs::{emit, emit_at, EventKind, RegistrySnapshot};
use mrtweb_store::gateway::Gateway;
use mrtweb_transport::error::Error as TransportError;
use mrtweb_transport::live::LiveServer;

use crate::server::{book_faults, prepare, reject, ServerConfig, SessionEnd};
use crate::stats::ProxyStats;
use crate::sys::{Epoll, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::{
    put_frame_envelope, ErrorCode, Message, StreamDecoder, WireError, MAX_BODY, PROTOCOL_VERSION,
};

/// Epoll token reserved for each worker's intake wakeup fd; session
/// ids count up from zero and can never collide with it.
const WAKE_TOKEN: u64 = u64::MAX;

/// Backpressure cap: frame production pauses once a session's output
/// buffer holds this many unsent bytes. One envelope may overshoot the
/// cap, so occupancy is bounded by `OUT_CAP + MAX_BODY + overhead`.
const OUT_CAP: usize = 64 * 1024;

/// Readiness-wait timeout: the loop wakes at least this often to reap
/// idle sessions and observe shutdown.
const TICK_MS: i32 = 100;

/// Minimum interval between idle-session reap scans.
const REAP_EVERY_NS: u64 = 250_000_000;

/// Per-worker socket read scratch size.
const READ_CHUNK: usize = 16 * 1024;

/// Where one session is in its protocol lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Reading the opening HELLO (or STATS_REQUEST) envelope.
    AwaitHello,
    /// Pumping frames of the current round into the output buffer.
    Serving,
    /// ROUND_END queued; awaiting REQUEST or DONE.
    AwaitControl,
    /// Flushing the tail (error / GAVE_UP / stats reply), then closing
    /// with the recorded end.
    Draining,
}

/// One nonblocking connection's entire state.
struct Session {
    stream: TcpStream,
    id: u64,
    phase: Phase,
    /// Incremental envelope reassembly over partial reads.
    dec: StreamDecoder,
    /// Unsent wire bytes; `out[out_pos..]` is pending.
    out: Vec<u8>,
    out_pos: usize,
    server: Option<Arc<LiveServer>>,
    faulty: Option<FaultyLink<BernoulliChannel>>,
    faults_seen: usize,
    /// Cooked-frame indices of the current round; `cursor` is the
    /// serving position within the slice.
    to_send: Vec<usize>,
    cursor: usize,
    rounds_done: usize,
    round_start: u64,
    frames_served: u64,
    start: u64,
    last_activity: u64,
    /// Peer closed its writing half (EOF on read).
    read_closed: bool,
    /// End code to record once `Draining` flushes.
    end: Option<SessionEnd>,
    /// Currently registered epoll interest mask.
    interest: u32,
}

impl Session {
    fn new(stream: TcpStream, id: u64, now: u64) -> Session {
        Session {
            stream,
            id,
            phase: Phase::AwaitHello,
            dec: StreamDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            server: None,
            faulty: None,
            faults_seen: 0,
            to_send: Vec::new(),
            cursor: 0,
            rounds_done: 0,
            round_start: now,
            frames_served: 0,
            start: now,
            last_activity: now,
            read_closed: false,
            end: None,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// Queues a typed error and moves the session to `Draining` with the
/// end code the blocking engine would have recorded.
fn fail_session(s: &mut Session, code: ErrorCode, detail: String, end: SessionEnd) {
    Message::Error { code, detail }.encode_into(&mut s.out);
    s.phase = Phase::Draining;
    s.end = Some(end);
}

/// Completes the session on DONE: whatever is still queued is dropped
/// (the peer reconstructed and will not read further), so the drain
/// finishes immediately instead of stalling on unread frames.
fn complete_session(s: &mut Session) {
    s.out.clear();
    s.out_pos = 0;
    s.phase = Phase::Draining;
    s.end = Some(SessionEnd::Completed);
}

/// One protocol message, dispatched by phase. Mirrors
/// `server::session_body` decision-for-decision.
fn handle_message(
    s: &mut Session,
    msg: Message,
    gateway: &Gateway,
    config: &ServerConfig,
    stats: &ProxyStats,
) {
    match s.phase {
        Phase::AwaitHello => match msg {
            Message::Hello(h) => {
                if h.version != PROTOCOL_VERSION {
                    fail_session(
                        s,
                        ErrorCode::BadRequest,
                        format!(
                            "protocol version {} unsupported (want {PROTOCOL_VERSION})",
                            h.version
                        ),
                        SessionEnd::ProtocolError,
                    );
                    return;
                }
                match prepare(gateway, &h) {
                    Ok(server) => {
                        let header = server.header().clone();
                        let n = header.n;
                        Message::Header(header).encode_into(&mut s.out);
                        s.faulty = config.fault.clone().map(|cfg| {
                            let seed = config.fault_seed ^ s.id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                            FaultyLink::new(
                                Link::new(
                                    Bandwidth::from_kbps(19.2),
                                    BernoulliChannel::new(0.0, seed),
                                    seed,
                                ),
                                cfg,
                                seed,
                            )
                        });
                        s.server = Some(server);
                        s.to_send = (0..n).collect();
                        s.cursor = 0;
                        s.phase = Phase::Serving;
                        s.round_start = now_nanos();
                    }
                    // A well-formed ask the server refuses — typed,
                    // but not a protocol error.
                    Err((code, detail)) => fail_session(s, code, detail, SessionEnd::Closed),
                }
            }
            Message::StatsRequest => {
                Message::StatsReply(stats.snapshot()).encode_into(&mut s.out);
                s.phase = Phase::Draining;
                s.end = Some(SessionEnd::Completed);
            }
            _ => fail_session(
                s,
                ErrorCode::BadRequest,
                "expected HELLO".to_owned(),
                SessionEnd::ProtocolError,
            ),
        },
        // DONE may arrive mid-round (the client reconstructed early
        // and stopped reading); anything else before ROUND_END is a
        // violation.
        Phase::Serving | Phase::AwaitControl => match msg {
            Message::Done => complete_session(s),
            Message::Request(ids) if s.phase == Phase::AwaitControl => {
                stats.retransmit_requests.inc();
                emit(EventKind::RetransmitRequest, s.id, ids.len() as u64);
                if s.rounds_done >= config.max_rounds {
                    Message::GaveUp.encode_into(&mut s.out);
                    s.phase = Phase::Draining;
                    s.end = Some(SessionEnd::Closed);
                } else {
                    s.to_send = ids.into_iter().map(usize::from).collect();
                    s.cursor = 0;
                    s.phase = Phase::Serving;
                    s.round_start = now_nanos();
                }
            }
            _ => fail_session(
                s,
                ErrorCode::BadRequest,
                "expected REQUEST or DONE".to_owned(),
                SessionEnd::ProtocolError,
            ),
        },
        Phase::Draining => {}
    }
}

/// Parses every complete envelope buffered so far.
fn process_messages(s: &mut Session, gateway: &Gateway, config: &ServerConfig, stats: &ProxyStats) {
    while s.phase != Phase::Draining {
        match s.dec.next_message() {
            Ok(Some(msg)) => handle_message(s, msg, gateway, config, stats),
            Ok(None) => break,
            Err(WireError::CrcMismatch) => {
                emit(EventKind::CrcReject, s.id, 0);
                let what = if s.phase == Phase::AwaitHello {
                    "corrupted HELLO envelope"
                } else {
                    "corrupted control envelope"
                };
                fail_session(
                    s,
                    ErrorCode::BadRequest,
                    what.to_owned(),
                    SessionEnd::CrcReject,
                );
            }
            Err(e) => fail_session(
                s,
                ErrorCode::BadRequest,
                format!("{e}"),
                SessionEnd::ProtocolError,
            ),
        }
    }
}

/// Drains the socket into the decoder and dispatches messages.
/// `Some(end)` means the connection died and the session must finish.
fn on_readable(
    s: &mut Session,
    scratch: &mut [u8],
    gateway: &Gateway,
    config: &ServerConfig,
    stats: &ProxyStats,
) -> Option<SessionEnd> {
    loop {
        // Bound buffering between dispatch passes: a peer streaming
        // faster than we parse re-reports via level-triggered epoll.
        if s.dec.buffered() > 2 * MAX_BODY {
            break;
        }
        match s.stream.read(scratch) {
            Ok(0) => {
                s.read_closed = true;
                break;
            }
            Ok(n) => {
                s.dec.absorb(&scratch[..n]);
                s.last_activity = now_nanos();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Some(SessionEnd::Closed),
        }
    }
    process_messages(s, gateway, config, stats);
    None
}

/// What serving one frame did; failure details are carried out of the
/// borrow of the session's `server` field before mutating the session.
enum Outcome {
    Served,
    /// An in-range packet this server does not hold (a trimmed or
    /// rotted edge-cache entry): skip the sequence, the client
    /// reconstructs from any M of the rest.
    Skipped,
    Fail(ErrorCode, String, SessionEnd),
}

/// Fills the output buffer with frames of the current round, stopping
/// at the backpressure cap or the round's end.
fn pump(s: &mut Session, config: &ServerConfig, stats: &ProxyStats) {
    while s.phase == Phase::Serving && s.out.len() - s.out_pos < OUT_CAP {
        if s.cursor >= s.to_send.len() {
            // Round complete: release held (reordered) frames, close
            // the round, and hand the turn to the client.
            if let Some(faulty) = s.faulty.as_mut() {
                for delivery in faulty.flush() {
                    put_frame_envelope(&mut s.out, &delivery.bytes);
                }
            }
            Message::RoundEnd.encode_into(&mut s.out);
            let now = now_nanos();
            emit_at(
                s.round_start,
                EventKind::RoundSpan,
                now.saturating_sub(s.round_start),
                s.rounds_done as u64,
            );
            s.rounds_done += 1;
            s.phase = Phase::AwaitControl;
            break;
        }
        let idx = s.to_send[s.cursor];
        s.cursor += 1;
        if s.frames_served >= config.frame_budget {
            emit(EventKind::BudgetExhausted, s.id, config.frame_budget);
            fail_session(
                s,
                ErrorCode::BudgetExceeded,
                format!("session frame budget {} exhausted", config.frame_budget),
                SessionEnd::Closed,
            );
            break;
        }
        // Disjoint-field borrows: `server` pins `s.server` while the
        // frame bytes land in `s.out`; failures are deferred past the
        // borrow.
        let outcome = match &s.server {
            Some(server) => match server.frame_checked(idx) {
                Ok(bytes) => {
                    s.frames_served += 1;
                    stats.frames_sent.inc();
                    emit(EventKind::FrameSent, s.id, idx as u64);
                    if let Some(faulty) = s.faulty.as_mut() {
                        for delivery in faulty.transmit(bytes) {
                            put_frame_envelope(&mut s.out, &delivery.bytes);
                        }
                        s.faults_seen = book_faults(faulty, s.faults_seen, stats);
                    } else {
                        put_frame_envelope(&mut s.out, bytes);
                    }
                    Outcome::Served
                }
                Err(TransportError::FrameNotHeld { .. }) => Outcome::Skipped,
                // The round's indices came off the wire: out-of-range
                // is a typed protocol error, never a panic.
                Err(e @ TransportError::FrameOutOfRange { .. }) => Outcome::Fail(
                    ErrorCode::BadRequest,
                    format!("{e}"),
                    SessionEnd::ProtocolError,
                ),
                Err(e) => Outcome::Fail(ErrorCode::Internal, format!("{e}"), SessionEnd::Closed),
            },
            None => Outcome::Fail(
                ErrorCode::Internal,
                "no prepared transmission".to_owned(),
                SessionEnd::Closed,
            ),
        };
        if let Outcome::Fail(code, detail, end) = outcome {
            fail_session(s, code, detail, end);
            break;
        }
    }
    stats.note_outbuf((s.out.len() - s.out_pos) as u64);
}

/// Writes pending output until the kernel pushes back. `WouldBlock`
/// here is normal backpressure, not a timeout — stall reaping handles
/// clients that never drain.
fn try_flush(s: &mut Session, stats: &ProxyStats) -> Result<(), SessionEnd> {
    while s.out_pos < s.out.len() {
        match s.stream.write(&s.out[s.out_pos..]) {
            Ok(0) => return Err(SessionEnd::Closed),
            Ok(n) => {
                s.out_pos += n;
                stats.bytes_sent.add(n as u64);
                s.last_activity = now_nanos();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(SessionEnd::Closed),
        }
    }
    if !s.out_pending() && s.out_pos > 0 {
        s.out.clear();
        s.out_pos = 0;
    }
    Ok(())
}

/// Pump-and-flush until the session blocks, changes phase, or ends.
/// `Some(end)` asks the caller to finish the session.
fn progress(s: &mut Session, config: &ServerConfig, stats: &ProxyStats) -> Option<SessionEnd> {
    loop {
        pump(s, config, stats);
        if let Err(end) = try_flush(s, stats) {
            return Some(end);
        }
        // Keep refilling while serving and the kernel keeps accepting.
        if s.phase == Phase::Serving && !s.out_pending() {
            continue;
        }
        break;
    }
    if !s.out_pending() {
        if s.phase == Phase::Draining {
            return Some(s.end.unwrap_or(SessionEnd::Closed));
        }
        // Half-open hangup: the peer owes us input it can never send
        // (the blocking engine's next control read would see EOF).
        if s.read_closed && matches!(s.phase, Phase::AwaitHello | Phase::AwaitControl) {
            return Some(SessionEnd::Closed);
        }
    }
    None
}

/// The intake hand-off from the acceptor to one worker loop.
/// Deliberately unbounded: occupancy is already bounded by the
/// admission slot counter (`max_sessions`), so a second cap here would
/// only re-introduce the blocking engine's `accept_backlog` refusals.
struct WorkerShared {
    intake: Mutex<VecDeque<(TcpStream, u64)>>,
    wake: WakeFd,
}

/// One event loop: an epoll instance plus every session sharded to it.
struct Worker {
    epoll: Epoll,
    shared: Arc<WorkerShared>,
    gateway: Arc<Gateway>,
    config: Arc<ServerConfig>,
    stats: Arc<ProxyStats>,
    admitted: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    sessions: HashMap<u64, Session>,
    scratch: Vec<u8>,
    last_reap: u64,
}

impl Worker {
    fn run(mut self) {
        let mut ready = Vec::new();
        loop {
            let wait_start = now_nanos();
            if self.epoll.wait(&mut ready, TICK_MS).is_err() {
                break;
            }
            let waited = now_nanos().saturating_sub(wait_start);
            self.stats.loop_wait.record(waited);
            emit_at(wait_start, EventKind::LoopWait, waited, ready.len() as u64);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.admit_intake();
            for &r in &ready {
                if r.token == WAKE_TOKEN {
                    self.shared.wake.drain();
                } else {
                    self.drive(r.token, r.mask);
                }
            }
            let now = now_nanos();
            if now.saturating_sub(self.last_reap) >= REAP_EVERY_NS {
                self.last_reap = now;
                self.reap(now);
            }
        }
        // Teardown: sessions still open are closed and their admission
        // slots released; connections queued but never admitted into
        // the loop release theirs too.
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for id in ids {
            self.finish(id, SessionEnd::Closed);
        }
        let leftovers = {
            let mut intake = self
                .shared
                .intake
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            intake.drain(..).count() as u64
        };
        if leftovers > 0 {
            // ORDERING: releasing admission slots only needs the RMW to
            // be atomic — the connection state itself was handed over
            // through the intake mutex, not through this counter.
            self.admitted.fetch_sub(leftovers, Ordering::Relaxed);
        }
    }

    /// Registers every connection the acceptor queued since last time.
    fn admit_intake(&mut self) {
        loop {
            let item = self
                .shared
                .intake
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            let Some((stream, id)) = item else { break };
            if stream.set_nonblocking(true).is_err() {
                // ORDERING: slot release; atomic RMW keeps the bound
                // exact, and the acceptor tolerates a momentarily stale
                // view (it only over-queues by at most the race window).
                self.admitted.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let _ = stream.set_nodelay(true);
            emit(EventKind::SessionStart, id, 0);
            self.stats.active.inc();
            let s = Session::new(stream, id, now_nanos());
            if self
                .epoll
                .add(s.stream.as_raw_fd(), s.interest, id)
                .is_err()
            {
                emit(EventKind::SessionEnd, id, 4);
                self.stats.active.dec();
                // ORDERING: slot release — see `admit_intake` above.
                self.admitted.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            self.sessions.insert(id, s);
        }
    }

    /// Advances one session after a readiness event.
    fn drive(&mut self, id: u64, mask: u32) {
        let done = {
            let Some(s) = self.sessions.get_mut(&id) else {
                return;
            };
            if mask & EPOLLERR != 0 {
                Some(SessionEnd::Closed)
            } else {
                let readable = mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0;
                let read_end = if readable {
                    on_readable(
                        s,
                        &mut self.scratch,
                        &self.gateway,
                        &self.config,
                        &self.stats,
                    )
                } else {
                    None
                };
                read_end.or_else(|| progress(s, &self.config, &self.stats))
            }
        };
        if let Some(end) = done {
            self.finish(id, end);
            return;
        }
        // Register EPOLLOUT exactly while output is pending.
        if let Some(s) = self.sessions.get_mut(&id) {
            let want = EPOLLIN | EPOLLRDHUP | if s.out_pending() { EPOLLOUT } else { 0 };
            if want != s.interest && self.epoll.modify(s.stream.as_raw_fd(), want, id).is_ok() {
                s.interest = want;
            }
        }
    }

    /// Ends sessions idle past the read timeout (or stalled past the
    /// write timeout with output pending) — the reaper the blocking
    /// engine gets for free from socket timeouts.
    fn reap(&mut self, now: u64) {
        let read_ns = duration_nanos(self.config.read_timeout);
        let write_ns = duration_nanos(self.config.write_timeout);
        let stale: Vec<(u64, SessionEnd)> = self
            .sessions
            .iter()
            .filter_map(|(id, s)| {
                let limit = if s.out_pending() { write_ns } else { read_ns };
                if now.saturating_sub(s.last_activity) > limit {
                    // A draining session keeps its recorded end: the
                    // blocking engine also books the intended end even
                    // when the farewell write fails.
                    let end = if s.phase == Phase::Draining {
                        s.end.unwrap_or(SessionEnd::Closed)
                    } else {
                        SessionEnd::TimedOut
                    };
                    Some((*id, end))
                } else {
                    None
                }
            })
            .collect();
        for (id, end) in stale {
            self.finish(id, end);
        }
    }

    /// Tears one session down with full blocking-engine bookkeeping
    /// parity: latency histogram, RequestSpan, end counters,
    /// SessionEnd trace code, active gauge, admission slot.
    fn finish(&mut self, id: u64, end: SessionEnd) {
        let Some(s) = self.sessions.remove(&id) else {
            return;
        };
        self.epoll.delete(s.stream.as_raw_fd());
        let elapsed = now_nanos().saturating_sub(s.start);
        self.stats.request_latency.record(elapsed);
        emit_at(s.start, EventKind::RequestSpan, elapsed, id);
        let end_code = match end {
            SessionEnd::Completed => {
                self.stats.completed.inc();
                0
            }
            SessionEnd::ProtocolError => {
                self.stats.protocol_errors.inc();
                1
            }
            SessionEnd::TimedOut => {
                self.stats.timeouts.inc();
                2
            }
            SessionEnd::CrcReject => {
                self.stats.crc_rejects.inc();
                3
            }
            SessionEnd::Closed => 4,
        };
        emit(EventKind::SessionEnd, id, end_code);
        self.stats.active.dec();
        // ORDERING: slot release at session teardown; the admission
        // counter bounds concurrency but publishes no session state.
        self.admitted.fetch_sub(1, Ordering::Relaxed);
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The event-driven proxy daemon. Same wire protocol, admission
/// semantics, budgets, fault injection, and observability as
/// [`crate::server::Server`]; different concurrency substrate.
pub struct EventServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    worker_shared: Vec<Arc<WorkerShared>>,
}

impl std::fmt::Debug for EventServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.worker_handles.len())
            .finish_non_exhaustive()
    }
}

impl EventServer {
    /// Binds `addr` and starts the acceptor plus `config.workers`
    /// event loops.
    ///
    /// # Errors
    ///
    /// Propagates socket bind and epoll/eventfd creation failures.
    pub fn bind(
        addr: &str,
        gateway: Gateway,
        config: ServerConfig,
    ) -> std::io::Result<EventServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::new());
        let admitted = Arc::new(AtomicU64::new(0));
        let gateway = Arc::new(gateway);
        let config = Arc::new(config);

        let nworkers = config.workers.max(1);
        let mut worker_shared = Vec::with_capacity(nworkers);
        let mut worker_handles = Vec::with_capacity(nworkers);
        for _ in 0..nworkers {
            let epoll = Epoll::new()?;
            let shared = Arc::new(WorkerShared {
                intake: Mutex::new(VecDeque::new()),
                wake: WakeFd::new()?,
            });
            epoll.add(shared.wake.raw(), EPOLLIN, WAKE_TOKEN)?;
            let worker = Worker {
                epoll,
                shared: Arc::clone(&shared),
                gateway: Arc::clone(&gateway),
                config: Arc::clone(&config),
                stats: Arc::clone(&stats),
                admitted: Arc::clone(&admitted),
                shutdown: Arc::clone(&shutdown),
                sessions: HashMap::new(),
                scratch: vec![0u8; READ_CHUNK],
                last_reap: 0,
            };
            worker_shared.push(shared);
            worker_handles.push(std::thread::spawn(move || worker.run()));
        }

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let workers = worker_shared.clone();
            let max_sessions = config.max_sessions.max(1) as u64;
            let write_timeout = config.write_timeout;
            std::thread::spawn(move || {
                acceptor(
                    &listener,
                    &shutdown,
                    &stats,
                    &admitted,
                    &workers,
                    max_sessions,
                    write_timeout,
                );
            })
        };

        Ok(EventServer {
            local_addr,
            shutdown,
            stats,
            accept_handle: Some(accept_handle),
            worker_handles,
            worker_shared,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live stats snapshot.
    pub fn stats(&self) -> RegistrySnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, wakes every loop, joins every thread, and
    /// returns the final stats. Sessions still in flight at shutdown
    /// are closed immediately (end code 4) — an event loop has nowhere
    /// to park them, unlike the blocking engine's run-to-completion.
    pub fn shutdown(mut self) -> RegistrySnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept(): connect to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for shared in &self.worker_shared {
            shared.wake.wake();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}

/// Accepts until shut down: identical admission control to the
/// blocking engine, then round-robin hand-off to the worker loops.
fn acceptor(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    stats: &ProxyStats,
    admitted: &AtomicU64,
    workers: &[Arc<WorkerShared>],
    max_sessions: u64,
    write_timeout: Duration,
) {
    let mut next_session_id = 0u64;
    let mut rr = 0usize;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        stats.accepted.inc();
        let session_id = next_session_id;
        next_session_id += 1;

        // Admission: reserve a session slot, or refuse loudly.
        let prior = admitted.fetch_add(1, Ordering::SeqCst);
        if prior >= max_sessions {
            admitted.fetch_sub(1, Ordering::SeqCst);
            reject(
                stream,
                write_timeout,
                stats,
                session_id,
                0,
                "session limit reached",
            );
            continue;
        }
        stats.note_in_flight(prior + 1);
        let worker = &workers[rr % workers.len()];
        rr = rr.wrapping_add(1);
        worker
            .intake
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back((stream, session_id));
        worker.wake.wake();
    }
}
