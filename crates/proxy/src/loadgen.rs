//! Closed-loop load generator: K concurrent clients, R requests each.
//!
//! Each worker thread runs [`crate::client::fetch`] back to back and
//! records per-request wall-clock latency. The aggregate report gives
//! throughput and latency percentiles (p50/p95/p99) — the numbers the
//! paper's base-station sizing discussion turns on — and renders as
//! JSON for `BENCH_proxy.json`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::client::{fetch, FetchError, FetchOptions};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// The fetch every request performs.
    pub options: FetchOptions,
}

/// Aggregate outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests attempted (clients × requests).
    pub attempted: usize,
    /// Requests that reconstructed the document.
    pub completed: usize,
    /// Requests refused by admission control (typed Busy).
    pub rejected: usize,
    /// Requests that failed any other way.
    pub failed: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub throughput: f64,
    /// Median latency of completed requests.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Total wire bytes received across all requests.
    pub bytes_received: u64,
}

impl LoadReport {
    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\": {}, \"attempted\": {}, \"completed\": {}, \"rejected\": {}, \
             \"failed\": {}, \"elapsed_ms\": {:.3}, \"throughput_rps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"bytes_received\": {}}}",
            self.clients,
            self.attempted,
            self.completed,
            self.rejected,
            self.failed,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.bytes_received,
        )
    }
}

/// The `q`-th percentile (0–100) of an unsorted latency sample, by the
/// nearest-rank method. Zero when the sample is empty.
pub fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Runs the closed loop against a proxy at `addr`.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let completed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.clients {
            scope.spawn(|| {
                let mut local = Vec::with_capacity(config.requests);
                for _ in 0..config.requests {
                    let begin = Instant::now();
                    match fetch(addr, &config.options) {
                        Ok(report) => {
                            bytes.fetch_add(report.bytes_received, Ordering::Relaxed);
                            if report.completed || report.stopped_early {
                                completed.fetch_add(1, Ordering::Relaxed);
                                local.push(begin.elapsed());
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(FetchError::Rejected { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let mut all = latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                all.extend(local);
            });
        }
    });
    let elapsed = start.elapsed();

    let mut samples = latencies
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let completed = completed.into_inner() as usize;
    LoadReport {
        clients: config.clients,
        attempted: config.clients * config.requests,
        completed,
        rejected: rejected.into_inner() as usize,
        failed: failed.into_inner() as usize,
        elapsed,
        throughput: if elapsed.as_secs_f64() > 0.0 {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50: percentile(&mut samples, 50.0),
        p95: percentile(&mut samples, 95.0),
        p99: percentile(&mut samples, 99.0),
        bytes_received: bytes.into_inner(),
    }
}

/// Runs `run` once per client count and renders the sweep as a JSON
/// array — the payload of `BENCH_proxy.json`.
pub fn sweep(
    addr: SocketAddr,
    counts: &[usize],
    requests: usize,
    options: &FetchOptions,
) -> (Vec<LoadReport>, String) {
    let mut reports = Vec::with_capacity(counts.len());
    for &clients in counts {
        reports.push(run(
            addr,
            &LoadConfig {
                clients,
                requests,
                options: options.clone(),
            },
        ));
    }
    let json = format!(
        "[\n  {}\n]",
        reports
            .iter()
            .map(LoadReport::to_json)
            .collect::<Vec<_>>()
            .join(",\n  ")
    );
    (reports, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let mut ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&mut ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&mut ms, 95.0), Duration::from_millis(95));
        assert_eq!(percentile(&mut ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&mut ms, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&mut [], 50.0), Duration::ZERO);
        let mut one = [Duration::from_millis(7)];
        assert_eq!(percentile(&mut one, 50.0), Duration::from_millis(7));
    }

    #[test]
    fn report_json_has_the_expected_keys() {
        let report = LoadReport {
            clients: 8,
            attempted: 64,
            completed: 64,
            rejected: 0,
            failed: 0,
            elapsed: Duration::from_millis(1234),
            throughput: 51.86,
            p50: Duration::from_millis(10),
            p95: Duration::from_millis(20),
            p99: Duration::from_millis(30),
            bytes_received: 1 << 20,
        };
        let json = report.to_json();
        for key in [
            "clients",
            "attempted",
            "completed",
            "rejected",
            "failed",
            "elapsed_ms",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "bytes_received",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "{key} missing");
        }
        assert!(json.contains("\"clients\": 8"));
    }
}
