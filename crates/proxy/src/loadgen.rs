//! Load generator: closed-loop and open-loop arrival modes.
//!
//! Each worker thread runs [`crate::client::fetch`] and records
//! per-request latency. Two arrival disciplines are supported:
//!
//! * **Closed loop** — each client issues its next request the moment
//!   the previous one finishes. This measures sustained system
//!   throughput, but its latency numbers carry *coordinated omission*
//!   bias: a slow server slows the arrival process itself, so the
//!   percentiles never see the queueing a real open population would
//!   suffer.
//! * **Open loop** — arrivals follow a precomputed schedule at a target
//!   rate (fixed-interval or Poisson), independent of completions.
//!   Latency is measured from the *scheduled* arrival, so time spent
//!   waiting for a free client slot counts against the server, and the
//!   report separates **offered** rps (the schedule) from **attempted**
//!   rps (what the generator actually achieved). When the generator
//!   itself cannot keep up, the run is flagged
//!   [`LoadReport::generator_limited`] rather than silently reporting
//!   the shortfall as server throughput.
//!
//! The aggregate report gives throughput and latency percentiles
//! (p50/p95/p99/p99.9) — the numbers the paper's base-station sizing
//! discussion turns on — and renders as JSON for `BENCH_proxy.json`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::client::{fetch, FetchError, FetchOptions};

/// How request arrivals are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// Closed loop: the next request starts when the previous one
    /// finishes.
    Closed,
    /// Open loop with evenly spaced arrivals.
    OpenFixed {
        /// Target offered load, requests per second.
        rps: f64,
    },
    /// Open loop with exponential (Poisson-process) interarrival
    /// times, deterministic in `seed`.
    OpenPoisson {
        /// Target offered load (mean), requests per second.
        rps: f64,
        /// Schedule seed.
        seed: u64,
    },
}

impl ArrivalMode {
    /// Stable name used in the JSON report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArrivalMode::Closed => "closed",
            ArrivalMode::OpenFixed { .. } => "open-fixed",
            ArrivalMode::OpenPoisson { .. } => "open-poisson",
        }
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads (open loop: the slot pool arrivals
    /// are served from).
    pub clients: usize,
    /// Requests per client (total arrivals = clients × requests in
    /// every mode).
    pub requests: usize,
    /// Arrival discipline.
    pub mode: ArrivalMode,
    /// The fetch every request performs.
    pub options: FetchOptions,
}

/// Aggregate outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Arrival discipline name (`closed`, `open-fixed`, `open-poisson`).
    pub mode: &'static str,
    /// Requests attempted (clients × requests).
    pub attempted: usize,
    /// Requests that reconstructed the document.
    pub completed: usize,
    /// Requests refused by admission control (typed Busy).
    pub rejected: usize,
    /// Requests that failed any other way.
    pub failed: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub throughput: f64,
    /// Scheduled arrival rate (open loop); equals `attempted_rps` in
    /// closed loop, where the schedule *is* the completions.
    pub offered_rps: f64,
    /// Arrivals the generator actually issued per second.
    pub attempted_rps: f64,
    /// Whether the generator, not the server, bounded the run: a
    /// meaningful fraction of open-loop arrivals started late because
    /// no client slot was free. Throughput from a flagged run
    /// understates the server.
    pub generator_limited: bool,
    /// Median latency of completed requests.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p99_9: Duration,
    /// Most requests this generator had in flight at once.
    pub max_in_flight: u64,
    /// Total wire bytes received across all requests.
    pub bytes_received: u64,
}

impl LoadReport {
    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\": {}, \"mode\": \"{}\", \"attempted\": {}, \"completed\": {}, \
             \"rejected\": {}, \"failed\": {}, \"elapsed_ms\": {:.3}, \
             \"throughput_rps\": {:.3}, \"offered_rps\": {:.3}, \"attempted_rps\": {:.3}, \
             \"generator_limited\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"p99_9_ms\": {:.3}, \"max_in_flight\": {}, \
             \"bytes_received\": {}}}",
            self.clients,
            self.mode,
            self.attempted,
            self.completed,
            self.rejected,
            self.failed,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput,
            self.offered_rps,
            self.attempted_rps,
            self.generator_limited,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.p99_9.as_secs_f64() * 1e3,
            self.max_in_flight,
            self.bytes_received,
        )
    }
}

/// The `q`-th percentile (0–100) of an unsorted latency sample, by the
/// nearest-rank method. Zero when the sample is empty.
pub fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precomputed arrival offsets from run start, one per request.
/// `None` in closed loop, where arrivals are completion-driven.
fn build_schedule(mode: ArrivalMode, total: usize) -> Option<Vec<Duration>> {
    match mode {
        ArrivalMode::Closed => None,
        ArrivalMode::OpenFixed { rps } => {
            let rate = rps.max(1e-9);
            Some(
                (0..total)
                    .map(|i| Duration::from_secs_f64(i as f64 / rate))
                    .collect(),
            )
        }
        ArrivalMode::OpenPoisson { rps, seed } => {
            let rate = rps.max(1e-9);
            let mut state = seed;
            let mut at = 0.0f64;
            Some(
                (0..total)
                    .map(|_| {
                        let here = at;
                        // Inverse-CDF exponential draw on the top 53
                        // bits (uniform in [0, 1)).
                        let uni = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                        at += -(1.0 - uni).ln() / rate;
                        Duration::from_secs_f64(here)
                    })
                    .collect(),
            )
        }
    }
}

/// Runs one load-generation pass against a proxy at `addr`.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let total = config.clients.max(1) * config.requests;
    let schedule = build_schedule(config.mode, total);
    // Lateness grace: one mean interarrival. Arrivals starting later
    // than this behind schedule mean every client slot was busy.
    let (offered_rps, grace) = match config.mode {
        ArrivalMode::Closed => (0.0, Duration::ZERO),
        ArrivalMode::OpenFixed { rps } | ArrivalMode::OpenPoisson { rps, .. } => {
            (rps, Duration::from_secs_f64(1.0 / rps.max(1e-9)))
        }
    };

    let completed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let late_starts = AtomicU64::new(0);
    let in_flight = AtomicU64::new(0);
    let hwm_in_flight = AtomicU64::new(0);
    let next_arrival = AtomicUsize::new(0);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.clients.max(1) {
            scope.spawn(|| {
                let mut local = Vec::with_capacity(config.requests);
                let mut fetch_once = |scheduled: Option<Duration>| {
                    // ORDERING: load-report tallies shared only between
                    // these worker closures and the final report, which
                    // reads them after `thread::scope` joins every
                    // worker (the join is the synchronization point).
                    // Relaxed RMWs keep each total exact in between.
                    let flying = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                    hwm_in_flight.fetch_max(flying, Ordering::Relaxed);
                    let begin = Instant::now();
                    let outcome = fetch(addr, &config.options);
                    // ORDERING: see the tally comment above.
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                    match outcome {
                        Ok(report) => {
                            // ORDERING: scope-joined tallies, as above.
                            bytes.fetch_add(report.bytes_received, Ordering::Relaxed);
                            if report.completed || report.stopped_early {
                                // ORDERING: scope-joined tally.
                                completed.fetch_add(1, Ordering::Relaxed);
                                // Open loop: latency runs from the
                                // *scheduled* arrival, so slot-wait
                                // queueing counts (no coordinated
                                // omission).
                                let latency = match scheduled {
                                    Some(due) => start.elapsed().saturating_sub(due),
                                    None => begin.elapsed(),
                                };
                                local.push(latency);
                            } else {
                                // ORDERING: scope-joined tally.
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(FetchError::Rejected { .. }) => {
                            // ORDERING: scope-joined tally.
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // ORDERING: scope-joined tally.
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                match &schedule {
                    None => {
                        for _ in 0..config.requests {
                            fetch_once(None);
                        }
                    }
                    Some(schedule) => loop {
                        // ORDERING: a work-stealing ticket — RMW
                        // atomicity alone guarantees each arrival index
                        // is claimed exactly once; the schedule itself
                        // is immutable shared data.
                        let i = next_arrival.fetch_add(1, Ordering::Relaxed);
                        let Some(&due) = schedule.get(i) else { break };
                        let now = start.elapsed();
                        if let Some(wait) = due.checked_sub(now) {
                            std::thread::sleep(wait);
                        } else if now.saturating_sub(due) > grace {
                            // ORDERING: scope-joined tally.
                            late_starts.fetch_add(1, Ordering::Relaxed);
                        }
                        fetch_once(Some(due));
                    },
                }
                let mut all = latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                all.extend(local);
            });
        }
    });
    let elapsed = start.elapsed();

    let mut samples = latencies
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let completed = completed.into_inner() as usize;
    let secs = elapsed.as_secs_f64();
    let attempted_rps = if secs > 0.0 { total as f64 / secs } else { 0.0 };
    let late = late_starts.into_inner();
    LoadReport {
        clients: config.clients,
        mode: config.mode.name(),
        attempted: total,
        completed,
        rejected: rejected.into_inner() as usize,
        failed: failed.into_inner() as usize,
        elapsed,
        throughput: if secs > 0.0 {
            completed as f64 / secs
        } else {
            0.0
        },
        offered_rps: if offered_rps > 0.0 {
            offered_rps
        } else {
            attempted_rps
        },
        attempted_rps,
        // More than 5% of arrivals found no free slot within one mean
        // interarrival: the generator, not the server, was the
        // bottleneck.
        generator_limited: schedule.is_some() && late * 20 > total as u64,
        p50: percentile(&mut samples, 50.0),
        p95: percentile(&mut samples, 95.0),
        p99: percentile(&mut samples, 99.0),
        p99_9: percentile(&mut samples, 99.9),
        max_in_flight: hwm_in_flight.into_inner(),
        bytes_received: bytes.into_inner(),
    }
}

/// Runs `run` once per client count and renders the sweep as a JSON
/// array — the payload of `BENCH_proxy.json`.
pub fn sweep(
    addr: SocketAddr,
    counts: &[usize],
    requests: usize,
    mode: ArrivalMode,
    options: &FetchOptions,
) -> (Vec<LoadReport>, String) {
    let mut reports = Vec::with_capacity(counts.len());
    for &clients in counts {
        reports.push(run(
            addr,
            &LoadConfig {
                clients,
                requests,
                mode,
                options: options.clone(),
            },
        ));
    }
    let json = format!(
        "[\n  {}\n]",
        reports
            .iter()
            .map(LoadReport::to_json)
            .collect::<Vec<_>>()
            .join(",\n  ")
    );
    (reports, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let mut ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&mut ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&mut ms, 95.0), Duration::from_millis(95));
        assert_eq!(percentile(&mut ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&mut ms, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&mut [], 50.0), Duration::ZERO);
        let mut one = [Duration::from_millis(7)];
        assert_eq!(percentile(&mut one, 50.0), Duration::from_millis(7));
    }

    #[test]
    fn fixed_schedule_is_evenly_spaced() {
        let sched = build_schedule(ArrivalMode::OpenFixed { rps: 100.0 }, 5).unwrap();
        assert_eq!(sched.len(), 5);
        assert_eq!(sched[0], Duration::ZERO);
        for (i, &at) in sched.iter().enumerate() {
            let want = Duration::from_secs_f64(i as f64 * 0.01);
            let diff = at.abs_diff(want);
            assert!(diff < Duration::from_micros(1), "slot {i}: {at:?}");
        }
        assert!(build_schedule(ArrivalMode::Closed, 5).is_none());
    }

    #[test]
    fn poisson_schedule_is_deterministic_and_near_rate() {
        let a = build_schedule(
            ArrivalMode::OpenPoisson {
                rps: 1000.0,
                seed: 42,
            },
            2000,
        )
        .unwrap();
        let b = build_schedule(
            ArrivalMode::OpenPoisson {
                rps: 1000.0,
                seed: 42,
            },
            2000,
        )
        .unwrap();
        assert_eq!(a, b, "same seed, same schedule");
        let c = build_schedule(
            ArrivalMode::OpenPoisson {
                rps: 1000.0,
                seed: 43,
            },
            2000,
        )
        .unwrap();
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone arrivals");
        // 2000 arrivals at 1000/s: the span concentrates near 2s.
        let span = a.last().unwrap().as_secs_f64();
        assert!((1.5..2.5).contains(&span), "span {span}");
    }

    #[test]
    fn report_json_has_the_expected_keys() {
        let report = LoadReport {
            clients: 8,
            mode: "open-poisson",
            attempted: 64,
            completed: 64,
            rejected: 0,
            failed: 0,
            elapsed: Duration::from_millis(1234),
            throughput: 51.86,
            offered_rps: 60.0,
            attempted_rps: 51.9,
            generator_limited: false,
            p50: Duration::from_millis(10),
            p95: Duration::from_millis(20),
            p99: Duration::from_millis(30),
            p99_9: Duration::from_millis(40),
            max_in_flight: 8,
            bytes_received: 1 << 20,
        };
        let json = report.to_json();
        for key in [
            "clients",
            "mode",
            "attempted",
            "completed",
            "rejected",
            "failed",
            "elapsed_ms",
            "throughput_rps",
            "offered_rps",
            "attempted_rps",
            "generator_limited",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "p99_9_ms",
            "max_in_flight",
            "bytes_received",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "{key} missing");
        }
        assert!(json.contains("\"clients\": 8"));
        assert!(json.contains("\"mode\": \"open-poisson\""));
        assert!(json.contains("\"generator_limited\": false"));
    }
}
