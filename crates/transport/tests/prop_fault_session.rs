//! Property tests driving `session::download` through randomized fault
//! schedules for both cache modes.
//!
//! The schedule space covers i.i.d. corruption, bursts, garbles, drops
//! and short outage windows, over randomized protocol geometry
//! `(M, γ, packet_size)`. The central invariant is the paper's §4.2
//! caching argument: for the *identical* per-slot fate schedule,
//! Caching completes at the M-th intact slot overall and therefore
//! never transmits more packets than NoCaching.

use proptest::prelude::*;

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::fault::{FaultConfig, ScheduledLoss};
use mrtweb_channel::link::Link;
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
use mrtweb_transport::session::{download, CacheMode, Outcome, Relevance, SessionConfig};

/// Fault mixes gentle enough that Caching always completes: total
/// damaging probability ≤ ~0.3, outages short and rare.
fn fault_config_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        0.0f64..0.12,
        0.0f64..0.08,
        0.0f64..0.04,
        0.0f64..0.08,
        0.0f64..0.01,
    )
        .prop_map(
            |(p_flip, p_burst, p_garble, p_drop, p_outage_start)| FaultConfig {
                p_flip,
                p_burst,
                p_garble,
                p_drop,
                p_outage_start,
                p_outage_end: 0.25,
                ..FaultConfig::clean()
            },
        )
}

fn run_mode(
    cfg: &FaultConfig,
    seed: u64,
    mode: CacheMode,
    bytes: usize,
    packet_size: usize,
    gamma: f64,
) -> mrtweb_transport::session::DownloadReport {
    let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", bytes, 1.0)]);
    let mut link = Link::new(
        Bandwidth::from_kbps(19.2),
        ScheduledLoss::new(cfg.clone(), seed),
        seed,
    );
    let config = SessionConfig {
        packet_size,
        gamma,
        cache_mode: mode,
        max_rounds: 4096,
        ..Default::default()
    };
    download(&plan, Relevance::relevant(), &config, &mut link)
}

proptest! {
    /// Caching always completes under moderate fault schedules, with
    /// full content, at least M packets, and within the round budget.
    #[test]
    fn caching_completes_under_fault_schedules(
        cfg in fault_config_strategy(),
        seed in any::<u64>(),
        bytes in 500usize..12_000,
        packet_size in 32usize..512,
        gamma in 1.5f64..2.5,
    ) {
        let r = run_mode(&cfg, seed, CacheMode::Caching, bytes, packet_size, gamma);
        prop_assert_eq!(r.outcome, Outcome::Completed, "cfg={:?} seed={}", cfg, seed);
        prop_assert!((r.content - 1.0).abs() < 1e-9);
        prop_assert!(r.packets_sent >= r.m as u64);
        prop_assert!(r.rounds <= 4096);
        prop_assert!(r.n >= r.m);
    }

    /// For the identical fate schedule, Caching never transmits more
    /// packets (nor takes longer) than NoCaching.
    #[test]
    fn caching_dominates_nocaching_on_identical_schedules(
        cfg in fault_config_strategy(),
        seed in any::<u64>(),
        bytes in 500usize..12_000,
        packet_size in 64usize..512,
        gamma in 1.5f64..2.2,
    ) {
        let caching = run_mode(&cfg, seed, CacheMode::Caching, bytes, packet_size, gamma);
        let nocaching = run_mode(&cfg, seed, CacheMode::NoCaching, bytes, packet_size, gamma);
        // NoCaching needs M intact within a single round and may
        // legitimately exhaust its budget; the comparison only makes
        // sense when both completed.
        prop_assume!(nocaching.outcome == Outcome::Completed);
        prop_assert_eq!(caching.outcome, Outcome::Completed);
        prop_assert!(
            caching.packets_sent <= nocaching.packets_sent,
            "caching sent {} > nocaching {} (cfg={:?} seed={})",
            caching.packets_sent, nocaching.packets_sent, cfg, seed
        );
        prop_assert!(caching.response_time <= nocaching.response_time + 1e-9);
    }

    /// The same `(config, seed)` replays the identical download: fault
    /// schedules are fully deterministic.
    #[test]
    fn downloads_replay_deterministically(
        cfg in fault_config_strategy(),
        seed in any::<u64>(),
        bytes in 500usize..8_000,
        packet_size in 32usize..256,
    ) {
        let a = run_mode(&cfg, seed, CacheMode::Caching, bytes, packet_size, 1.6);
        let b = run_mode(&cfg, seed, CacheMode::Caching, bytes, packet_size, 1.6);
        prop_assert_eq!(a, b);
    }

    /// An irrelevant document never costs more packets than downloading
    /// it in full under the same schedule (early stop can only save).
    #[test]
    fn early_stop_never_costs_packets(
        cfg in fault_config_strategy(),
        seed in any::<u64>(),
        threshold in 0.05f64..0.95,
    ) {
        let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
        let config = SessionConfig {
            cache_mode: CacheMode::Caching,
            max_rounds: 4096,
            ..Default::default()
        };
        let mut link = Link::new(
            Bandwidth::from_kbps(19.2),
            ScheduledLoss::new(cfg.clone(), seed),
            seed,
        );
        let full = download(&plan, Relevance::relevant(), &config, &mut link);
        let mut link = Link::new(
            Bandwidth::from_kbps(19.2),
            ScheduledLoss::new(cfg.clone(), seed),
            seed,
        );
        let stopped = download(&plan, Relevance::irrelevant(threshold), &config, &mut link);
        prop_assert!(stopped.packets_sent <= full.packets_sent);
        if stopped.outcome == Outcome::StoppedIrrelevant {
            prop_assert!(stopped.content >= threshold - 1e-9);
        }
    }
}
