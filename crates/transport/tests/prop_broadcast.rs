//! Property-based tests for the broadcast carousel.
//!
//! The paper's broadcast direction (§6) only works if the carousel is
//! *dependable*: a listener tuning in anywhere, under bounded loss,
//! must complete within a bounded number of cycles, and stopping early
//! at `M` must never change the reconstructed bytes. These properties
//! pin exactly that, over randomized corpus shapes, skews, join
//! offsets, and loss patterns.

use proptest::prelude::*;

use mrtweb_erasure::crc::crc32;
use mrtweb_erasure::ida::Codec;
use mrtweb_erasure::par::GroupCodec;
use mrtweb_transport::broadcast::{
    BroadcastDoc, BroadcastListener, Carousel, CarouselConfig, Skew, Slot, SlotRef, StopRule,
};

/// Cook a payload into a broadcast document the way the store does:
/// dispersal-encode once, append each packet's CRC-32.
fn cook(id: u16, weight: f64, m: usize, n: usize, ps: usize, payload: &[u8]) -> BroadcastDoc {
    let codec = Codec::new(m, n, ps).expect("valid test parameters");
    let groups = GroupCodec::new(codec).encode(payload);
    BroadcastDoc {
        id,
        weight,
        m,
        n,
        packet_size: ps,
        doc_len: payload.len(),
        group_lens: groups.iter().map(|g| g.len).collect(),
        records: groups
            .iter()
            .map(|g| {
                g.cooked
                    .iter()
                    .map(|p| {
                        let mut r = p.clone();
                        r.extend_from_slice(&crc32(p).to_le_bytes());
                        r
                    })
                    .collect()
            })
            .collect(),
        contents: BroadcastDoc::uniform_contents(groups.len(), m),
    }
}

#[derive(Debug, Clone)]
struct DocSpec {
    m: usize,
    extra: usize,
    ps: usize,
    len: usize,
    weight: f64,
}

fn doc_spec() -> impl Strategy<Value = DocSpec> {
    (1usize..5, 0usize..4, 4usize..24, 1usize..300, 0.1f64..16.0).prop_map(
        |(m, extra, ps, len, weight)| DocSpec {
            m,
            extra,
            ps,
            len,
            weight,
        },
    )
}

fn corpus(specs: &[DocSpec]) -> (Vec<BroadcastDoc>, Vec<Vec<u8>>) {
    let payloads: Vec<Vec<u8>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (0..s.len)
                .map(|b| (b as u8).wrapping_mul(13) ^ i as u8)
                .collect()
        })
        .collect();
    let docs = specs
        .iter()
        .zip(&payloads)
        .enumerate()
        .map(|(i, (s, p))| cook(i as u16, s.weight, s.m, s.m + s.extra, s.ps, p))
        .collect();
    (docs, payloads)
}

fn config(channels: usize, skew: Skew, index_every: usize) -> CarouselConfig {
    CarouselConfig {
        channels,
        skew,
        index_every,
    }
}

proptest! {
    /// A listener joining at *any* offset, losing at most `N − M`
    /// distinct packet indices of its document per cycle, still
    /// completes within two cycles of air time (one to catch an index
    /// frame, one to sweep the surviving packets) and reconstructs the
    /// exact bytes.
    #[test]
    fn bounded_loss_completes_within_two_cycles(
        spec in doc_spec(),
        join in 0u64..500,
        index_every in 1usize..8,
        lost_seed in any::<u64>(),
    ) {
        let (docs, payloads) = corpus(std::slice::from_ref(&spec));
        let n = spec.m + spec.extra;
        let car = Carousel::build(&docs, &config(1, Skew::Flat, index_every))
            .expect("valid corpus");
        let cycle = car.cycle_len(0) as u64;
        // Kill up to N−M packet indices (same ones every cycle: the
        // adversarial stationary fade).
        let losable = spec.extra;
        let lost: std::collections::BTreeSet<usize> =
            (0..losable).map(|k| ((lost_seed >> (k * 8)) as usize) % n).collect();
        let mut l = BroadcastListener::new(7, 0, StopRule::Complete);
        let mut slot = join;
        loop {
            let frame = car.frame_at(0, slot);
            let heard = match mrtweb_transport::broadcast::parse_frame(frame) {
                Ok(mrtweb_transport::broadcast::AirFrame::Data { index, .. })
                    if lost.contains(&usize::from(index)) => None,
                _ => Some(frame),
            };
            if l.hear(slot, heard) {
                break;
            }
            slot += 1;
            prop_assert!(
                slot - join <= 2 * cycle + 2,
                "no completion within two cycles (cycle={cycle}, join={join})"
            );
        }
        prop_assert_eq!(l.bytes(), Some(&payloads[0][..]));
    }

    /// Building the same corpus twice yields byte-identical schedules
    /// and frames — the carousel is a pure function of its inputs.
    #[test]
    fn schedules_are_deterministic(
        specs in proptest::collection::vec(doc_spec(), 1..5),
        channels in 1usize..4,
        index_every in 0usize..10,
        skewed in any::<bool>(),
    ) {
        let (docs, _) = corpus(&specs);
        let skew = if skewed { Skew::Popularity } else { Skew::Flat };
        let cfg = config(channels, skew, index_every);
        let a = Carousel::build(&docs, &cfg).expect("valid corpus");
        let b = Carousel::build(&docs, &cfg).expect("valid corpus");
        prop_assert_eq!(a.channels(), b.channels());
        for ch in 0..a.channels() {
            prop_assert_eq!(a.slots(ch), b.slots(ch));
            for s in 0..a.cycle_len(ch) {
                prop_assert_eq!(a.frame_at(ch, s as u64), b.frame_at(ch, s as u64));
            }
        }
    }

    /// Popularity skew repeats hot packets but never starves any: every
    /// packet of every document appears at least once per cycle, and
    /// each document's packets all live on a single channel.
    #[test]
    fn skewed_schedules_cycle_every_packet(
        specs in proptest::collection::vec(doc_spec(), 1..6),
        channels in 1usize..4,
        index_every in 0usize..10,
    ) {
        let (docs, _) = corpus(&specs);
        let car = Carousel::build(&docs, &config(channels, Skew::Popularity, index_every))
            .expect("valid corpus");
        for d in &docs {
            let home = car.channel_of(d.id).expect("document missing from air");
            for g in 0..d.group_lens.len() {
                for i in 0..d.n {
                    let r = SlotRef { doc: d.id, group: g as u16, index: i as u16 };
                    prop_assert!(car.frequency_of(r) >= 1, "{:?} starved", r);
                    // All repetitions on the home channel.
                    let elsewhere = (0..car.channels())
                        .filter(|&c| c != home)
                        .flat_map(|c| car.slots(c))
                        .any(|s| matches!(s, Slot::Data(x) if *x == r));
                    prop_assert!(!elsewhere, "{:?} leaked across channels", r);
                }
            }
        }
    }

    /// Early stop at `M` yields exactly the bytes a patient listener
    /// collecting *every* packet would reconstruct — redundancy is
    /// interchangeable, so stopping early loses nothing.
    #[test]
    fn early_stop_bytes_equal_full_collection_bytes(
        spec in doc_spec(),
        join_a in 0u64..300,
        join_b in 0u64..300,
        index_every in 1usize..8,
    ) {
        let (docs, payloads) = corpus(std::slice::from_ref(&spec));
        let car = Carousel::build(&docs, &config(1, Skew::Flat, index_every))
            .expect("valid corpus");
        let cycle = car.cycle_len(0) as u64;
        let run = |rule: StopRule, join: u64| {
            let mut l = BroadcastListener::new(join, 0, rule);
            let mut slot = join;
            while !l.hear(slot, Some(car.frame_at(0, slot))) {
                slot += 1;
                assert!(slot - join <= 4 * cycle, "listener did not finish");
            }
            (l.bytes().map(<[u8]>::to_vec), l.access_slots().unwrap_or(u64::MAX))
        };
        let (early_bytes, early_slots) = run(StopRule::Complete, join_a);
        let (full_bytes, full_slots) = run(StopRule::AllPackets, join_b);
        prop_assert_eq!(early_bytes.as_deref(), Some(&payloads[0][..]));
        prop_assert_eq!(full_bytes.as_deref(), Some(&payloads[0][..]));
        // Early stop is never slower than full collection from the
        // same start (it needs a subset of the packets).
        if join_a == join_b {
            prop_assert!(early_slots <= full_slots);
        }
    }
}
