//! Property-based tests for transmission planning and the receiver
//! state machine.

use proptest::prelude::*;

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::link::Link;
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
use mrtweb_transport::receiver::ReceiverState;
use mrtweb_transport::session::{download, CacheMode, Outcome, Relevance, SessionConfig};

fn slices_strategy() -> impl Strategy<Value = Vec<UnitSlice>> {
    proptest::collection::vec((1usize..2000, 0.0f64..1.0), 1..30).prop_map(|parts| {
        let total: f64 = parts.iter().map(|(_, c)| *c).sum::<f64>().max(1e-9);
        parts
            .into_iter()
            .enumerate()
            .map(|(i, (bytes, c))| UnitSlice::new(format!("u{i}"), bytes, c / total))
            .collect()
    })
}

proptest! {
    /// Packet contents always partition the plan's total content, for
    /// any slice geometry and packet size.
    #[test]
    fn packet_contents_partition_content(
        slices in slices_strategy(),
        packet_size in 1usize..600,
    ) {
        let plan = TransmissionPlan::ranked(slices);
        let pc = plan.packet_contents(packet_size);
        prop_assert_eq!(pc.len(), plan.raw_packets(packet_size));
        let sum: f64 = pc.iter().sum();
        prop_assert!((sum - plan.total_content()).abs() < 1e-6);
        prop_assert!(pc.iter().all(|&c| c >= -1e-12));
    }

    /// Ranked plans are sorted by descending content.
    #[test]
    fn ranked_plans_are_sorted(slices in slices_strategy()) {
        let plan = TransmissionPlan::ranked(slices);
        for w in plan.slices().windows(2) {
            prop_assert!(w[0].content >= w[1].content - 1e-12);
        }
    }

    /// Receiver content is monotone in arrivals and reaches exactly 1.0
    /// on completion; intact counts never exceed distinct indices.
    #[test]
    fn receiver_monotone_and_bounded(
        m in 1usize..40,
        extra in 0usize..20,
        arrivals in proptest::collection::vec((any::<usize>(), any::<bool>()), 0..200),
    ) {
        let n = m + extra;
        let contents = vec![1.0 / m as f64; m];
        let mut r = ReceiverState::new(m, n, contents);
        let mut last_content = 0.0;
        let mut distinct = std::collections::HashSet::new();
        for (idx, corrupted) in arrivals {
            let idx = idx % n;
            r.on_packet(idx, corrupted);
            if !corrupted {
                distinct.insert(idx);
            }
            let c = r.content();
            prop_assert!(c >= last_content - 1e-12, "content decreased");
            prop_assert!(c <= 1.0 + 1e-12);
            last_content = c;
            prop_assert!(r.intact_count() <= distinct.len());
            prop_assert_eq!(r.is_complete(), r.intact_count() >= m);
        }
        if r.is_complete() {
            prop_assert_eq!(r.content(), 1.0);
            prop_assert!(r.needed().is_empty());
        } else {
            prop_assert_eq!(r.needed().len(), m - r.intact_count());
        }
        prop_assert_eq!(r.missing().len(), n - r.intact_count());
    }

    /// Downloads are deterministic per seed and always terminate with a
    /// consistent report.
    #[test]
    fn download_reports_are_consistent(
        alpha in 0.0f64..0.8,
        gamma in 1.0f64..2.5,
        seed in any::<u64>(),
        caching in any::<bool>(),
        irrelevant in any::<bool>(),
        threshold in 0.0f64..1.0,
    ) {
        let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 4096, 1.0)]);
        let config = SessionConfig {
            gamma,
            cache_mode: if caching { CacheMode::Caching } else { CacheMode::NoCaching },
            max_rounds: 50,
            ..Default::default()
        };
        let relevance = if irrelevant {
            Relevance::irrelevant(threshold)
        } else {
            Relevance::relevant()
        };
        let run = |seed| {
            let mut link =
                Link::new(Bandwidth::from_kbps(19.2), BernoulliChannel::new(alpha, seed), 0);
            download(&plan, relevance, &config, &mut link)
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a, &b, "downloads must be deterministic per seed");

        prop_assert!(a.response_time >= 0.0);
        prop_assert!(a.content >= 0.0 && a.content <= 1.0);
        prop_assert!(a.n >= a.m);
        match a.outcome {
            Outcome::Completed => prop_assert_eq!(a.content, 1.0),
            Outcome::StoppedIrrelevant => prop_assert!(a.content >= threshold || threshold <= 0.0),
            Outcome::Failed => prop_assert!(a.rounds == 50),
        }
        // Time accounting: every packet costs exactly frame/bandwidth,
        // so time = packets × 260/2400.
        let per_packet = 260.0 / 2400.0;
        prop_assert!(
            (a.response_time - a.packets_sent as f64 * per_packet).abs() < 1e-6,
            "time {} != packets {} × {}", a.response_time, a.packets_sent, per_packet
        );
    }

    /// With caching, retrying strictly adds distinct intact packets, so
    /// completion always happens when alpha < 1 and the budget is ample.
    #[test]
    fn caching_always_completes_with_budget(
        alpha in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 2048, 1.0)]);
        let config = SessionConfig {
            cache_mode: CacheMode::Caching,
            max_rounds: 100_000,
            ..Default::default()
        };
        let mut link =
            Link::new(Bandwidth::from_kbps(19.2), BernoulliChannel::new(alpha, seed), 0);
        let r = download(&plan, Relevance::relevant(), &config, &mut link);
        prop_assert_eq!(r.outcome, Outcome::Completed);
    }
}
