//! A complete document download over a lossy link.
//!
//! Orchestrates the §4.2 protocol: send `N = ⌈γM⌉` cooked packets in
//! QIC order, let the client discard corrupted ones, terminate when
//! (1) `M` distinct intact packets allow reconstruction, (2) the user
//! judges the document irrelevant after accruing content `F` and hits
//! "stop", or (3) the round ends *stalled* — in which case the document
//! is retransmitted from scratch (**NoCaching**, the default HTTP
//! behaviour) or topped up from the client's packet cache (**Caching**).

use mrtweb_channel::link::Link;
use mrtweb_channel::loss::LossModel;
use serde::{Deserialize, Serialize};

use crate::plan::TransmissionPlan;
use crate::receiver::ReceiverState;

/// Whether the client caches intact cooked packets across stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheMode {
    /// Stall → reload from scratch (the paper's *NoCaching*).
    NoCaching,
    /// Stall → keep intact packets, request only missing ones
    /// (the paper's *Caching*).
    Caching,
}

/// How the download ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// `M` distinct intact packets arrived; the document reconstructs.
    Completed,
    /// The user judged the document irrelevant (content ≥ F) and hit
    /// "stop".
    StoppedIrrelevant,
    /// The retry budget was exhausted without completing.
    Failed,
}

/// The user-relevance model of the paper's simulation: a document is
/// either relevant (downloaded to its entirety) or irrelevant
/// (discarded once accrued content reaches the threshold `F`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Relevance {
    /// Whether the user will discard this document.
    pub irrelevant: bool,
    /// Information content `F` needed to make the judgement.
    pub threshold: f64,
}

impl Relevance {
    /// A relevant document (downloaded in full).
    pub fn relevant() -> Self {
        Relevance {
            irrelevant: false,
            threshold: 0.0,
        }
    }

    /// An irrelevant document discarded at content `threshold`.
    pub fn irrelevant(threshold: f64) -> Self {
        Relevance {
            irrelevant: true,
            threshold,
        }
    }
}

/// Protocol parameters (defaults are the paper's Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Raw bytes per packet (`s_p`, default 256).
    pub packet_size: usize,
    /// Per-packet overhead on the wire (`O`, CRC + sequence, default 4).
    pub overhead: usize,
    /// Redundancy ratio `γ = N/M` (default 1.5).
    pub gamma: f64,
    /// Client caching behaviour across stalled rounds.
    pub cache_mode: CacheMode,
    /// Retry budget: maximum transmission rounds before giving up.
    pub max_rounds: usize,
    /// Block-interleaving depth for the first round (1 = off). For an
    /// MDS dispersal code interleaving cannot change *reconstruction*
    /// time — any `M` survivors suffice — but it protects progressive
    /// content accrual (and thus early termination) against loss
    /// bursts, at the cost of delaying the high-content clear packets.
    pub interleave_depth: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            packet_size: 256,
            overhead: 4,
            gamma: 1.5,
            cache_mode: CacheMode::NoCaching,
            max_rounds: 100_000,
            interleave_depth: 1,
        }
    }
}

impl SessionConfig {
    /// Cooked packets `N = round(γ·M)`, at least `M`.
    pub fn cooked_packets(&self, m: usize) -> usize {
        ((m as f64 * self.gamma).round() as usize).max(m)
    }

    /// Bytes of one frame on the wire.
    pub fn frame_bytes(&self) -> usize {
        self.packet_size + self.overhead
    }
}

/// What a finished download looked like.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownloadReport {
    /// How the download ended.
    pub outcome: Outcome,
    /// Seconds from first packet to termination.
    pub response_time: f64,
    /// Transmission rounds used (1 = no stall).
    pub rounds: usize,
    /// Total packets pushed onto the wire.
    pub packets_sent: u64,
    /// Information content available at termination.
    pub content: f64,
    /// Raw packets `M`.
    pub m: usize,
    /// Cooked packets `N`.
    pub n: usize,
}

/// Downloads one document described by `plan` over `link`.
///
/// The link's clock keeps running across calls, modelling a browsing
/// session; the report's `response_time` is relative to the call start.
///
/// # Example
///
/// ```
/// use mrtweb_channel::bandwidth::Bandwidth;
/// use mrtweb_channel::link::Link;
/// use mrtweb_channel::loss::MaskLoss;
/// use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
/// use mrtweb_transport::session::{download, Relevance, SessionConfig};
///
/// let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
/// let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
/// let report = download(&plan, Relevance::relevant(), &SessionConfig::default(), &mut link);
/// // Perfect channel: exactly M = 40 packets, ~4.33 s at 19.2 kbps.
/// assert_eq!(report.packets_sent, 40);
/// assert!((report.response_time - 40.0 * 260.0 / 2400.0).abs() < 1e-9);
/// ```
pub fn download<L: LossModel>(
    plan: &TransmissionPlan,
    relevance: Relevance,
    config: &SessionConfig,
    link: &mut Link<L>,
) -> DownloadReport {
    let start = link.now();
    let m = plan.raw_packets(config.packet_size);
    let n = config.cooked_packets(m);
    let mut state = ReceiverState::new(m, n, plan.packet_contents(config.packet_size));

    let finish = |state: &ReceiverState, outcome, rounds, link: &Link<L>| DownloadReport {
        outcome,
        response_time: link.now() - start,
        rounds,
        packets_sent: state.observed(),
        content: state.content(),
        m,
        n,
    };

    // The F = 0 point is artificial: the document is "not downloaded at
    // all" (paper §5.2).
    if relevance.irrelevant && relevance.threshold <= 0.0 {
        return finish(&state, Outcome::StoppedIrrelevant, 0, link);
    }

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > config.max_rounds {
            return finish(&state, Outcome::Failed, rounds - 1, link);
        }
        // Which cooked packets this round carries.
        let indices: Vec<usize> = if rounds == 1 {
            if config.interleave_depth > 1 {
                mrtweb_erasure::interleave::Interleaver::new(n, config.interleave_depth)
                    .into_order()
            } else {
                (0..n).collect()
            }
        } else {
            match config.cache_mode {
                CacheMode::NoCaching => {
                    state.reset_packets();
                    (0..n).collect()
                }
                CacheMode::Caching => state.missing(),
            }
        };
        for idx in indices {
            let delivery = link.send(config.frame_bytes());
            state.on_packet(idx, delivery.corrupted);
            if relevance.irrelevant && state.content() >= relevance.threshold {
                return finish(&state, Outcome::StoppedIrrelevant, rounds, link);
            }
            if state.is_complete() {
                return finish(&state, Outcome::Completed, rounds, link);
            }
        }
        // Round over without termination: stalled; loop retransmits.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::UnitSlice;
    use mrtweb_channel::bandwidth::Bandwidth;
    use mrtweb_channel::bernoulli::BernoulliChannel;
    use mrtweb_channel::loss::MaskLoss;

    fn doc_plan() -> TransmissionPlan {
        TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)])
    }

    fn link_with_mask(mask: Vec<bool>) -> Link<MaskLoss> {
        Link::new(Bandwidth::from_kbps(19.2), MaskLoss::new(mask), 0)
    }

    #[test]
    fn perfect_channel_takes_exactly_m_packets() {
        let mut link = link_with_mask(Vec::new());
        let r = download(
            &doc_plan(),
            Relevance::relevant(),
            &SessionConfig::default(),
            &mut link,
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.packets_sent, 40);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.m, 40);
        assert_eq!(r.n, 60);
        assert_eq!(r.content, 1.0);
    }

    #[test]
    fn corruption_delays_completion_via_redundancy() {
        // Corrupt the first 5 packets; completion needs 45 packets.
        let mut link = link_with_mask(vec![true; 5]);
        let r = download(
            &doc_plan(),
            Relevance::relevant(),
            &SessionConfig::default(),
            &mut link,
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.packets_sent, 45);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn irrelevant_doc_stops_early() {
        let mut link = link_with_mask(Vec::new());
        let r = download(
            &doc_plan(),
            Relevance::irrelevant(0.5),
            &SessionConfig::default(),
            &mut link,
        );
        assert_eq!(r.outcome, Outcome::StoppedIrrelevant);
        // Uniform content: half the clear packets suffice.
        assert_eq!(r.packets_sent, 20);
        assert!(r.content >= 0.5);
    }

    #[test]
    fn f_zero_is_free() {
        let mut link = link_with_mask(Vec::new());
        let r = download(
            &doc_plan(),
            Relevance::irrelevant(0.0),
            &SessionConfig::default(),
            &mut link,
        );
        assert_eq!(r.packets_sent, 0);
        assert_eq!(r.response_time, 0.0);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn stall_then_nocaching_restarts_from_scratch() {
        // Round 1: corrupt 21 of 60 packets -> only 39 intact, stalled.
        // Round 2: clean -> completes after 40 packets of round 2.
        let mut mask = vec![false; 60];
        for slot in mask.iter_mut().take(21) {
            *slot = true;
        }
        let mut link = link_with_mask(mask);
        let r = download(
            &doc_plan(),
            Relevance::relevant(),
            &SessionConfig::default(),
            &mut link,
        );
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.rounds, 2);
        // 60 (stalled round) + 40 (fresh round, needs M intact).
        assert_eq!(r.packets_sent, 100);
    }

    #[test]
    fn stall_then_caching_tops_up() {
        let mut mask = vec![false; 60];
        for slot in mask.iter_mut().take(21) {
            *slot = true;
        }
        let mut link = link_with_mask(mask);
        let config = SessionConfig {
            cache_mode: CacheMode::Caching,
            ..Default::default()
        };
        let r = download(&doc_plan(), Relevance::relevant(), &config, &mut link);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.rounds, 2);
        // Round 1: 60 packets, 39 intact. Round 2 resends the 21
        // missing; the first intact one completes.
        assert_eq!(r.packets_sent, 61);
    }

    #[test]
    fn caching_beats_nocaching_on_bad_channels() {
        let plan = doc_plan();
        let mk = |mode| SessionConfig {
            cache_mode: mode,
            ..Default::default()
        };
        let mut sum_nocache = 0.0;
        let mut sum_cache = 0.0;
        for seed in 0..20 {
            let mut link = Link::new(
                Bandwidth::from_kbps(19.2),
                BernoulliChannel::new(0.4, seed),
                0,
            );
            sum_nocache += download(
                &plan,
                Relevance::relevant(),
                &mk(CacheMode::NoCaching),
                &mut link,
            )
            .response_time;
            let mut link = Link::new(
                Bandwidth::from_kbps(19.2),
                BernoulliChannel::new(0.4, seed),
                0,
            );
            sum_cache += download(
                &plan,
                Relevance::relevant(),
                &mk(CacheMode::Caching),
                &mut link,
            )
            .response_time;
        }
        assert!(
            sum_cache < sum_nocache,
            "caching ({sum_cache:.1}s) should beat nocaching ({sum_nocache:.1}s) at alpha=0.4"
        );
    }

    #[test]
    fn ranked_plan_reaches_threshold_faster() {
        // 20 paragraphs, content skewed toward a few units.
        let mut slices = Vec::new();
        for i in 0..20 {
            let content = if i < 4 { 0.2 } else { 0.2 / 16.0 };
            slices.push(UnitSlice::new(format!("p{i}"), 512, content));
        }
        // Sequential leaves hot units scattered; put them at the END to
        // model the worst case for conventional transmission.
        let seq = TransmissionPlan::sequential({
            let mut v = slices.clone();
            v.reverse();
            v
        });
        let ranked = TransmissionPlan::ranked(slices);
        let cfg = SessionConfig::default();
        let mut link = link_with_mask(Vec::new());
        let t_seq = download(&seq, Relevance::irrelevant(0.5), &cfg, &mut link).response_time;
        let mut link = link_with_mask(Vec::new());
        let t_ranked = download(&ranked, Relevance::irrelevant(0.5), &cfg, &mut link).response_time;
        assert!(
            t_ranked < t_seq,
            "ranked ({t_ranked:.2}s) must beat sequential ({t_seq:.2}s)"
        );
    }

    #[test]
    fn interleaving_preserves_completion_semantics() {
        // For relevant documents, interleaving must not change whether
        // or when reconstruction happens on a perfect channel (exactly
        // M packets either way).
        let cfg = SessionConfig {
            interleave_depth: 10,
            ..Default::default()
        };
        let mut link = link_with_mask(Vec::new());
        let r = download(&doc_plan(), Relevance::relevant(), &cfg, &mut link);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.packets_sent, 40);
    }

    #[test]
    fn interleaving_softens_burst_damage_to_early_content() {
        // A burst wiping the first 12 transmission slots: without
        // interleaving that is exactly the highest-content clear
        // packets; with depth-12 interleaving the burst lands on
        // packets spread across the sequence space.
        let ranked: Vec<UnitSlice> = (0..20)
            .map(|i| {
                let content = if i < 4 { 0.2 } else { 0.2 / 16.0 };
                UnitSlice::new(format!("p{i}"), 512, content)
            })
            .collect();
        let plan = TransmissionPlan::ranked(ranked);
        let mask: Vec<bool> = (0..60).map(|t| t < 12).collect();

        let run = |depth: usize| {
            let cfg = SessionConfig {
                interleave_depth: depth,
                cache_mode: CacheMode::Caching,
                ..Default::default()
            };
            let mut link = link_with_mask(mask.clone());
            download(&plan, Relevance::irrelevant(0.35), &cfg, &mut link).response_time
        };
        let serial = run(1);
        let interleaved = run(12);
        assert!(
            interleaved < serial,
            "interleaving should reach F sooner under a front burst \
             ({interleaved:.2}s vs {serial:.2}s)"
        );
    }

    #[test]
    fn always_corrupting_channel_fails_at_budget() {
        let mut link = link_with_mask(vec![true; 1_000_000]);
        let config = SessionConfig {
            max_rounds: 3,
            ..Default::default()
        };
        let r = download(&doc_plan(), Relevance::relevant(), &config, &mut link);
        assert_eq!(r.outcome, Outcome::Failed);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.packets_sent, 180);
    }

    #[test]
    fn response_time_is_relative_to_call() {
        let mut link = link_with_mask(Vec::new());
        let cfg = SessionConfig::default();
        let r1 = download(&doc_plan(), Relevance::relevant(), &cfg, &mut link);
        let r2 = download(&doc_plan(), Relevance::relevant(), &cfg, &mut link);
        assert!((r1.response_time - r2.response_time).abs() < 1e-9);
        assert!(
            link.now() > r1.response_time,
            "link clock accumulates across documents"
        );
    }

    #[test]
    fn cooked_packet_rounding() {
        let cfg = SessionConfig {
            gamma: 1.1,
            ..Default::default()
        };
        assert_eq!(cfg.cooked_packets(40), 44);
        let cfg = SessionConfig {
            gamma: 1.0,
            ..Default::default()
        };
        assert_eq!(cfg.cooked_packets(40), 40);
        let cfg = SessionConfig {
            gamma: 2.5,
            ..Default::default()
        };
        assert_eq!(cfg.cooked_packets(40), 100);
    }
}
