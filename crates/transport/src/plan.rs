//! Transmission plans: what goes on the wire, in what order.
//!
//! "When transmitting a document at a lower LOD other than the document
//! LOD, the organizational units at the appropriate level are ranked and
//! transmitted according to QIC" (§4.2). A [`TransmissionPlan`] is the
//! permuted sequence of unit *slices* — each with its byte length and
//! information content — plus the mapping from raw-packet indices to the
//! content they carry, which is what lets a client accrue content from
//! intact clear-text packets.

use mrtweb_content::sc::{Measure, StructuralCharacteristic};
use mrtweb_docmodel::document::Document;
use mrtweb_docmodel::lod::Lod;
use serde::{Deserialize, Serialize};

/// One contiguous slice of the transmission: an organizational unit (or
/// an interior unit's own text) scheduled as a whole.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitSlice {
    /// Human-readable label (unit path, e.g. `3.2.1`).
    pub label: String,
    /// Bytes the slice occupies on the wire.
    pub bytes: usize,
    /// Information content the slice carries (document sums to ≈ 1).
    pub content: f64,
}

impl UnitSlice {
    /// Creates a slice.
    pub fn new(label: impl Into<String>, bytes: usize, content: f64) -> Self {
        UnitSlice {
            label: label.into(),
            bytes,
            content,
        }
    }
}

/// A document's transmission order and packet/content geometry.
///
/// # Example
///
/// ```
/// use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
///
/// // Two units: a content-heavy one and a light one, ranked.
/// let plan = TransmissionPlan::ranked(vec![
///     UnitSlice::new("1", 100, 0.2),
///     UnitSlice::new("2", 100, 0.8),
/// ]);
/// assert_eq!(plan.slices()[0].label, "2"); // heavier first
/// assert_eq!(plan.raw_packets(100), 2);
/// let pc = plan.packet_contents(100);
/// assert!((pc[0] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransmissionPlan {
    slices: Vec<UnitSlice>,
}

impl TransmissionPlan {
    /// A plan transmitting slices in the given (document) order — the
    /// conventional paradigm.
    pub fn sequential(slices: Vec<UnitSlice>) -> Self {
        TransmissionPlan { slices }
    }

    /// A plan with slices permuted in descending content order (ties
    /// keep document order) — multi-resolution transmission.
    pub fn ranked(mut slices: Vec<UnitSlice>) -> Self {
        slices.sort_by(|a, b| b.content.total_cmp(&a.content));
        TransmissionPlan { slices }
    }

    /// The slices in transmission order.
    pub fn slices(&self) -> &[UnitSlice] {
        &self.slices
    }

    /// Total bytes of the transmission (the paper's `s_D`).
    pub fn total_bytes(&self) -> usize {
        self.slices.iter().map(|s| s.bytes).sum()
    }

    /// Total content carried (≈ 1 for a whole normalized document).
    pub fn total_content(&self) -> f64 {
        self.slices.iter().map(|s| s.content).sum()
    }

    /// Number of raw packets `M = ⌈s_D / s_p⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `packet_size` is zero.
    pub fn raw_packets(&self, packet_size: usize) -> usize {
        assert!(packet_size > 0, "packet size must be nonzero");
        self.total_bytes().div_ceil(packet_size).max(1)
    }

    /// The information content carried by each raw packet: packet `i`
    /// covers transmission bytes `[i·s_p, (i+1)·s_p)`, and a slice
    /// contributes content proportionally to the bytes of it inside the
    /// packet (the byte-level additive rule).
    ///
    /// # Panics
    ///
    /// Panics if `packet_size` is zero.
    pub fn packet_contents(&self, packet_size: usize) -> Vec<f64> {
        assert!(packet_size > 0, "packet size must be nonzero");
        let m = self.raw_packets(packet_size);
        let mut contents = vec![0.0; m];
        let mut offset = 0usize;
        for s in &self.slices {
            if s.bytes == 0 {
                continue;
            }
            let density = s.content / s.bytes as f64;
            let start = offset;
            let end = offset + s.bytes;
            let first = start / packet_size;
            let last = (end - 1) / packet_size;
            for (p, slot) in contents.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = start.max(p * packet_size);
                let hi = end.min((p + 1) * packet_size);
                *slot += density * (hi - lo) as f64;
            }
            offset = end;
        }
        contents
    }

    /// The byte range each slice occupies in the transmission stream,
    /// in transmission order.
    pub fn slice_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::with_capacity(self.slices.len());
        let mut offset = 0usize;
        for s in &self.slices {
            out.push(offset..offset + s.bytes);
            offset += s.bytes;
        }
        out
    }
}

/// Builds the plan *and* the permuted payload bytes for a real document.
///
/// Partitions the document at `lod`; each partition becomes a slice
/// whose bytes are the partition's text and whose content is its
/// subtree score under `measure` from the structural characteristic.
/// At [`Lod::Document`] the order is sequential (the conventional
/// paradigm); at finer LODs the slices are ranked by descending content.
///
/// Returns the plan together with the payload laid out in transmission
/// order.
pub fn plan_document(
    doc: &Document,
    sc: &StructuralCharacteristic,
    lod: Lod,
    measure: Measure,
) -> (TransmissionPlan, Vec<u8>) {
    let parts = doc.partition_at(lod);
    let mut slices = Vec::with_capacity(parts.len());
    let mut texts: Vec<String> = Vec::with_capacity(parts.len());
    for p in &parts {
        // An interior node emitted for its own text only (it has
        // children that were partitioned separately) contributes its
        // own bytes; a subtree partition contributes everything.
        let own_only = p.unit.kind() < lod && !p.unit.children().is_empty();
        let text = if own_only {
            let mut t = p.unit.title().unwrap_or("").to_owned();
            let own = p.unit.own_text();
            if !own.is_empty() {
                if !t.is_empty() {
                    t.push('\n');
                }
                t.push_str(&own);
            }
            t
        } else {
            p.unit.full_text()
        };
        let content = match sc.entry_at(&p.path) {
            Some(e) if own_only => {
                // Subtract the children's share: own = subtree − Σ child subtrees.
                let child_sum: f64 = sc
                    .entries()
                    .iter()
                    .filter(|c| {
                        p.path.is_prefix_of(&c.path) && c.path.depth() == p.path.depth() + 1
                    })
                    .map(|c| StructuralCharacteristic::value(c, measure))
                    .sum();
                (StructuralCharacteristic::value(e, measure) - child_sum).max(0.0)
            }
            Some(e) => StructuralCharacteristic::value(e, measure),
            None => 0.0,
        };
        slices.push(UnitSlice::new(p.path.to_string(), text.len(), content));
        texts.push(text);
    }
    let plan = if lod == Lod::Document {
        TransmissionPlan::sequential(slices)
    } else {
        // Rank while carrying the texts along in the same permutation.
        let mut order: Vec<usize> = (0..slices.len()).collect();
        order.sort_by(|&a, &b| slices[b].content.total_cmp(&slices[a].content));
        let slices_ranked: Vec<UnitSlice> = order.iter().map(|&i| slices[i].clone()).collect();
        let texts_ranked: Vec<String> = order.iter().map(|&i| texts[i].clone()).collect();
        texts = texts_ranked;
        TransmissionPlan::sequential(slices_ranked)
    };
    let payload: Vec<u8> = texts.concat().into_bytes();
    (plan, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_content::query::Query;
    use mrtweb_textproc::pipeline::ScPipeline;

    #[test]
    fn ranked_sorts_descending_stable() {
        let plan = TransmissionPlan::ranked(vec![
            UnitSlice::new("a", 10, 0.3),
            UnitSlice::new("b", 10, 0.5),
            UnitSlice::new("c", 10, 0.3),
        ]);
        let labels: Vec<&str> = plan.slices().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["b", "a", "c"]);
    }

    #[test]
    fn packet_contents_sum_to_total() {
        let plan = TransmissionPlan::ranked(vec![
            UnitSlice::new("a", 130, 0.4),
            UnitSlice::new("b", 70, 0.35),
            UnitSlice::new("c", 300, 0.25),
        ]);
        for sp in [1usize, 7, 64, 256, 1000] {
            let pc = plan.packet_contents(sp);
            assert_eq!(pc.len(), plan.raw_packets(sp));
            let sum: f64 = pc.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sp={sp}: sum {sum}");
        }
    }

    #[test]
    fn packet_contents_follow_slice_order() {
        let plan = TransmissionPlan::sequential(vec![
            UnitSlice::new("hot", 100, 0.9),
            UnitSlice::new("cold", 100, 0.1),
        ]);
        let pc = plan.packet_contents(50);
        assert_eq!(pc.len(), 4);
        assert!((pc[0] - 0.45).abs() < 1e-12);
        assert!((pc[3] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn packet_straddling_slices() {
        let plan = TransmissionPlan::sequential(vec![
            UnitSlice::new("a", 30, 0.3),
            UnitSlice::new("b", 30, 0.6),
        ]);
        // sp=40: packet 0 = 30 bytes of a (0.3) + 10 bytes of b (0.2).
        let pc = plan.packet_contents(40);
        assert_eq!(pc.len(), 2);
        assert!((pc[0] - 0.5).abs() < 1e-12);
        assert!((pc[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn raw_packets_matches_table2() {
        let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
        assert_eq!(plan.raw_packets(256), 40);
    }

    #[test]
    fn empty_plan_is_one_packet() {
        let plan = TransmissionPlan::sequential(Vec::new());
        assert_eq!(plan.raw_packets(256), 1);
        assert_eq!(plan.packet_contents(256), vec![0.0]);
    }

    #[test]
    fn zero_byte_slices_are_skipped() {
        let plan = TransmissionPlan::sequential(vec![
            UnitSlice::new("empty", 0, 0.0),
            UnitSlice::new("real", 10, 1.0),
        ]);
        let pc = plan.packet_contents(10);
        assert!((pc[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slice_ranges_are_contiguous() {
        let plan = TransmissionPlan::sequential(vec![
            UnitSlice::new("a", 5, 0.5),
            UnitSlice::new("b", 7, 0.5),
        ]);
        let r = plan.slice_ranges();
        assert_eq!(r, vec![0..5, 5..12]);
    }

    fn real_doc() -> (Document, StructuralCharacteristic) {
        let doc = Document::parse_xml(
            "<document>\
             <section><title>Hot</title><paragraph>mobile web mobile web mobile</paragraph></section>\
             <section><title>Cold</title><paragraph>miscellaneous filler prose</paragraph></section>\
             </document>",
        )
        .unwrap();
        let pipeline = ScPipeline::default();
        let idx = pipeline.run(&doc);
        let q = Query::parse("mobile web", &pipeline);
        let sc = StructuralCharacteristic::from_index(&idx, Some(&q));
        (doc, sc)
    }

    #[test]
    fn plan_document_at_document_lod_is_sequential() {
        let (doc, sc) = real_doc();
        let (plan, payload) = plan_document(&doc, &sc, Lod::Document, Measure::Qic);
        assert_eq!(plan.slices().len(), 1);
        assert_eq!(payload.len(), plan.total_bytes());
        assert!(String::from_utf8(payload).unwrap().contains("Hot"));
    }

    #[test]
    fn plan_document_at_section_lod_ranks_by_qic() {
        let (doc, sc) = real_doc();
        let (plan, payload) = plan_document(&doc, &sc, Lod::Section, Measure::Qic);
        // The query-matching "Hot" section must come first.
        assert_eq!(plan.slices()[0].label, "0");
        let text = String::from_utf8(payload).unwrap();
        assert!(text.find("Hot").unwrap() < text.find("Cold").unwrap());
        // Separator newlines may add a few bytes over the raw content.
        assert!(plan.total_bytes() >= doc.content_len());
        assert!(plan.total_bytes() <= doc.content_len() + doc.unit_count() * 2);
    }

    #[test]
    fn plan_document_content_sums_to_sc_total() {
        let (doc, sc) = real_doc();
        for lod in [Lod::Document, Lod::Section, Lod::Subsection, Lod::Paragraph] {
            let (plan, payload) = plan_document(&doc, &sc, lod, Measure::Qic);
            assert!((plan.total_content() - 1.0).abs() < 1e-9, "lod {lod}");
            assert_eq!(payload.len(), plan.total_bytes(), "lod {lod}");
        }
    }

    #[test]
    fn payload_bytes_identical_across_lods_as_multiset() {
        // The permutation must not lose or duplicate document text.
        let (doc, sc) = real_doc();
        let (_, seq) = plan_document(&doc, &sc, Lod::Document, Measure::Ic);
        let (_, ranked) = plan_document(&doc, &sc, Lod::Paragraph, Measure::Ic);
        let a = seq.clone();
        let b = ranked.clone();
        // Same byte multiset modulo the newline separators; compare
        // non-whitespace content.
        let clean = |v: &[u8]| {
            let mut c: Vec<u8> = v
                .iter()
                .copied()
                .filter(|b| !b.is_ascii_whitespace())
                .collect();
            c.sort_unstable();
            c
        };
        assert_eq!(clean(&a), clean(&b));
    }
}
