//! Information-content-ranked prefetching.
//!
//! The paper's future-work section (§6) proposes "intelligent
//! prefetching based on information content and user-profiling,
//! utilizing the unused wireless bandwidth being left idle". This module
//! provides that queue: candidate documents (e.g. the pages linked from
//! the one being read) are enrolled with a priority — typically their
//! QIC against the user's standing query/profile — and the transmitter
//! drains them highest-priority-first whenever the link is idle.

use std::collections::BinaryHeap;

/// A prefetch candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Identifier of the document (URL, database key, …).
    pub id: String,
    /// Priority — higher fetches first (e.g. QIC against the profile).
    pub priority: f64,
    /// Estimated size in bytes (for budget decisions).
    pub bytes: usize,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(id: impl Into<String>, priority: f64, bytes: usize) -> Self {
        Candidate {
            id: id.into(),
            priority,
            bytes,
        }
    }
}

/// Max-heap ordering on priority, with the id as a deterministic
/// tie-break.
#[derive(Debug, Clone, PartialEq)]
struct HeapEntry(Candidate);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .priority
            .total_cmp(&other.0.priority)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An idle-bandwidth prefetch queue.
///
/// # Example
///
/// ```
/// use mrtweb_transport::prefetch::{Candidate, PrefetchQueue};
///
/// let mut q = PrefetchQueue::new();
/// q.enroll(Candidate::new("doc-a", 0.2, 4096));
/// q.enroll(Candidate::new("doc-b", 0.9, 4096));
/// assert_eq!(q.pop().unwrap().id, "doc-b"); // highest content first
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefetchQueue {
    heap: BinaryHeap<HeapEntry>,
}

impl PrefetchQueue {
    /// An empty queue.
    pub fn new() -> Self {
        PrefetchQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Enrolls a candidate.
    pub fn enroll(&mut self, candidate: Candidate) {
        self.heap.push(HeapEntry(candidate));
    }

    /// Pops the highest-priority candidate.
    pub fn pop(&mut self) -> Option<Candidate> {
        self.heap.pop().map(|e| e.0)
    }

    /// Pops the highest-priority candidate that fits a byte budget —
    /// the transmitter calls this with the bytes it can push before the
    /// user's next expected action.
    pub fn pop_within(&mut self, budget_bytes: usize) -> Option<Candidate> {
        // Pull entries until one fits, re-enrolling the rest.
        let mut skipped = Vec::new();
        let mut found = None;
        while let Some(entry) = self.heap.pop() {
            if entry.0.bytes <= budget_bytes {
                found = Some(entry.0);
                break;
            }
            skipped.push(entry);
        }
        for s in skipped {
            self.heap.push(s);
        }
        found
    }

    /// Number of waiting candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_priority_order() {
        let mut q = PrefetchQueue::new();
        q.enroll(Candidate::new("low", 0.1, 100));
        q.enroll(Candidate::new("high", 0.9, 100));
        q.enroll(Candidate::new("mid", 0.5, 100));
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|c| c.id).collect();
        assert_eq!(order, ["high", "mid", "low"]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        let mut q = PrefetchQueue::new();
        q.enroll(Candidate::new("b", 0.5, 1));
        q.enroll(Candidate::new("a", 0.5, 1));
        assert_eq!(q.pop().unwrap().id, "a");
        assert_eq!(q.pop().unwrap().id, "b");
    }

    #[test]
    fn budget_respecting_pop() {
        let mut q = PrefetchQueue::new();
        q.enroll(Candidate::new("huge", 0.9, 100_000));
        q.enroll(Candidate::new("small", 0.3, 1_000));
        let picked = q.pop_within(2_000).unwrap();
        assert_eq!(picked.id, "small");
        // The big one is still queued for a roomier moment.
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, "huge");
    }

    #[test]
    fn budget_pop_returns_none_when_nothing_fits() {
        let mut q = PrefetchQueue::new();
        q.enroll(Candidate::new("big", 0.9, 10_000));
        assert!(q.pop_within(100).is_none());
        assert_eq!(q.len(), 1, "candidate must be preserved");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = PrefetchQueue::new();
        assert!(q.pop().is_none());
        assert!(q.pop_within(1).is_none());
        assert_eq!(q.len(), 0);
    }
}
