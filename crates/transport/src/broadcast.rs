//! Broadcast carousel delivery: one encode, unbounded listeners.
//!
//! The paper's base station serves a cell of mobile clients over a
//! shared wireless medium, and §6 points at broadcasting popular
//! documents instead of answering each client separately. The
//! dispersal layout makes that almost free: the cooked packets a
//! document was *stored* as (`packet ‖ crc32`) are already
//! self-verifying and order-independent, so the station can cycle the
//! stored records on air verbatim — encoding happened once at store
//! time, and the marginal cost of a listener is zero.
//!
//! * [`Carousel`] — a deterministic cyclic schedule over one or more
//!   channels. Flat mode round-robins every packet once per cycle;
//!   popularity mode repeats hot documents' packets (and their highest
//!   information-content clear packets once more) so the expected wait
//!   for *useful* packets shrinks, the classic broadcast-disk trade.
//! * Air index frames — interleaved every [`CarouselConfig::index_every`]
//!   data slots so a tuning-in listener learns the cycle geometry and
//!   every document's `(M, N, packet size, contents)` without waiting
//!   a full cycle.
//! * [`BroadcastListener`] — joins at an arbitrary slot, buffers
//!   self-verifying records while tuning, reconstructs once any `M`
//!   distinct intact packets per group are held ([`StopRule::Complete`]),
//!   or stops early at a content fraction ([`StopRule::Content`], the
//!   LOD analogue), reporting its access time in slots.
//!
//! Everything is virtual-time: a slot is one frame on the air, so
//! access times are deterministic and comparable across runs.

use std::collections::BTreeMap;

use mrtweb_erasure::crc::{crc16, crc32};
use mrtweb_erasure::ida::{Codec, GroupPackets};
use mrtweb_erasure::par::GroupCodec;
use mrtweb_obs::{emit, EventKind};

use crate::receiver::ReceiverState;

/// Error raised by schedule construction, frame parsing, or listener
/// reconstruction. Mirrors the store codec's lightweight error shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastError(pub &'static str);

impl std::fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broadcast error: {}", self.0)
    }
}

impl std::error::Error for BroadcastError {}

/// First byte of an air index frame.
pub const FRAME_INDEX: u8 = 0x00;
/// First byte of an air data frame.
pub const FRAME_DATA: u8 = 0x01;

/// One document prepared for the air: its stored cooked records plus
/// the metadata a listener needs to reconstruct it.
///
/// `records[g][i]` is the *stored* bytes of cooked packet `i` of
/// dispersal group `g` — `packet_size` packet bytes followed by its
/// little-endian CRC-32, exactly as the store persisted them. The
/// carousel never re-derives these; it frames and transmits them
/// verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastDoc {
    /// On-air document id (unique within a carousel).
    pub id: u16,
    /// Popularity weight (request rate); only its ratio to the hottest
    /// document matters, and only under [`Skew::Popularity`].
    pub weight: f64,
    /// Raw packets per group.
    pub m: usize,
    /// Cooked packets per group.
    pub n: usize,
    /// Bytes per cooked packet.
    pub packet_size: usize,
    /// Total payload length (`Σ group_lens`).
    pub doc_len: usize,
    /// Payload bytes carried by each group.
    pub group_lens: Vec<usize>,
    /// Stored records: `records[g][i]` = packet ‖ crc32le.
    pub records: Vec<Vec<Vec<u8>>>,
    /// Information content of each clear-text packet:
    /// `contents[g][i]` for `i < m`, summing to ~1 over the document.
    pub contents: Vec<Vec<f64>>,
}

impl BroadcastDoc {
    /// Uniform per-clear-packet contents for a `(groups, m)` layout.
    #[must_use]
    pub fn uniform_contents(groups: usize, m: usize) -> Vec<Vec<f64>> {
        let share = 1.0 / (groups * m) as f64;
        vec![vec![share; m]; groups]
    }

    /// Cooked packets in this document (`groups · N`).
    #[must_use]
    pub fn packet_count(&self) -> usize {
        self.group_lens.len() * self.n
    }

    fn check(&self) -> Result<(), BroadcastError> {
        let groups = self.group_lens.len();
        if self.m == 0 || self.n < self.m || self.n > 256 {
            return Err(BroadcastError("invalid (M, N)"));
        }
        if self.packet_size == 0 {
            return Err(BroadcastError("zero packet size"));
        }
        if groups == 0 || groups > usize::from(u16::MAX) {
            return Err(BroadcastError("group count out of range"));
        }
        if self.records.len() != groups || self.contents.len() != groups {
            return Err(BroadcastError("records/contents shape mismatch"));
        }
        if self.group_lens.iter().sum::<usize>() != self.doc_len {
            return Err(BroadcastError("group lengths disagree with doc_len"));
        }
        for g in 0..groups {
            if self.group_lens[g] > self.m * self.packet_size {
                return Err(BroadcastError("group length exceeds capacity"));
            }
            if self.records[g].len() != self.n {
                return Err(BroadcastError("need N records per group"));
            }
            if self.contents[g].len() != self.m {
                return Err(BroadcastError("need one content entry per raw packet"));
            }
            if self.records[g]
                .iter()
                .any(|r| r.len() != self.packet_size + 4)
            {
                return Err(BroadcastError("record length disagrees with packet size"));
            }
        }
        if !self.weight.is_finite() || self.weight < 0.0 {
            return Err(BroadcastError("weight must be finite and non-negative"));
        }
        Ok(())
    }
}

/// How the carousel spaces repetitions within a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every packet exactly once per cycle (uniform wait for all).
    Flat,
    /// Hot documents' packets recur more often, weighted by request
    /// rate, with an extra repetition for their highest-content clear
    /// packets — the QIC-ranked analogue of a skewed broadcast disk.
    Popularity,
}

/// Carousel geometry knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarouselConfig {
    /// Number of parallel broadcast channels (≥ 1).
    pub channels: usize,
    /// Placement policy within each channel's cycle.
    pub skew: Skew,
    /// An air index frame is inserted after every `index_every` data
    /// slots (and always at slot 0); `0` means one index per cycle.
    pub index_every: usize,
}

impl Default for CarouselConfig {
    fn default() -> Self {
        CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 16,
        }
    }
}

/// Identity of one data packet on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlotRef {
    /// Document id.
    pub doc: u16,
    /// Dispersal group within the document.
    pub group: u16,
    /// Cooked packet index within the group.
    pub index: u16,
}

/// What one cycle slot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// An air index frame describing the channel.
    Index,
    /// One stored record of one document.
    Data(SlotRef),
}

/// Per-document metadata carried by an air index frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMeta {
    /// Document id.
    pub id: u16,
    /// Raw packets per group.
    pub m: u16,
    /// Cooked packets per group.
    pub n: u16,
    /// Bytes per cooked packet.
    pub packet_size: u32,
    /// Total payload length.
    pub doc_len: u64,
    /// Payload bytes per group.
    pub group_lens: Vec<u32>,
    /// Clear-packet contents in parts-per-million, group-major
    /// (`groups · m` entries).
    pub contents_ppm: Vec<u32>,
}

/// A parsed air index frame: where the cycle stands and what is on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AirIndex {
    /// Cycle slot position this frame was transmitted at.
    pub pos: u32,
    /// Total slots per cycle on this channel.
    pub cycle_len: u32,
    /// Every document on this channel, ascending by id.
    pub docs: Vec<DocMeta>,
}

/// A parsed air frame.
#[derive(Debug, Clone, PartialEq)]
pub enum AirFrame<'a> {
    /// Channel metadata.
    Index(AirIndex),
    /// One stored record; `record` is packet ‖ crc32le, verbatim.
    Data {
        /// Document id.
        doc: u16,
        /// Dispersal group.
        group: u16,
        /// Cooked packet index.
        index: u16,
        /// The stored record bytes.
        record: &'a [u8],
    },
}

fn get_exact<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], BroadcastError> {
    if input.len() < n {
        return Err(BroadcastError("truncated air frame"));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

fn get_u8(input: &mut &[u8]) -> Result<u8, BroadcastError> {
    Ok(get_exact(input, 1)?[0])
}

fn get_u16(input: &mut &[u8]) -> Result<u16, BroadcastError> {
    let b = get_exact(input, 2)?;
    Ok(u16::from_be_bytes([b[0], b[1]]))
}

fn get_u32(input: &mut &[u8]) -> Result<u32, BroadcastError> {
    let b = get_exact(input, 4)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(input: &mut &[u8]) -> Result<u64, BroadcastError> {
    let b = get_exact(input, 8)?;
    Ok(u64::from_be_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Renders a data frame around a stored record (no re-encode: the
/// record bytes cross the air exactly as persisted).
#[must_use]
pub fn render_data_frame(doc: u16, group: u16, index: u16, record: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(7 + record.len() + 2);
    f.push(FRAME_DATA);
    f.extend_from_slice(&doc.to_be_bytes());
    f.extend_from_slice(&group.to_be_bytes());
    f.extend_from_slice(&index.to_be_bytes());
    f.extend_from_slice(record);
    let c = crc16(&f);
    f.extend_from_slice(&c.to_be_bytes());
    f
}

/// Renders an air index frame.
#[must_use]
pub fn render_index_frame(index: &AirIndex) -> Vec<u8> {
    let mut f = Vec::new();
    f.push(FRAME_INDEX);
    f.extend_from_slice(&index.pos.to_be_bytes());
    f.extend_from_slice(&index.cycle_len.to_be_bytes());
    f.extend_from_slice(&(index.docs.len() as u16).to_be_bytes());
    for d in &index.docs {
        f.extend_from_slice(&d.id.to_be_bytes());
        f.extend_from_slice(&d.m.to_be_bytes());
        f.extend_from_slice(&d.n.to_be_bytes());
        f.extend_from_slice(&d.packet_size.to_be_bytes());
        f.extend_from_slice(&d.doc_len.to_be_bytes());
        f.extend_from_slice(&(d.group_lens.len() as u16).to_be_bytes());
        for &gl in &d.group_lens {
            f.extend_from_slice(&gl.to_be_bytes());
        }
        for &c in &d.contents_ppm {
            f.extend_from_slice(&c.to_be_bytes());
        }
    }
    let c = crc16(&f);
    f.extend_from_slice(&c.to_be_bytes());
    f
}

/// Parses (and CRC-verifies) one air frame.
///
/// # Errors
///
/// [`BroadcastError`] when the frame is truncated, fails its CRC-16,
/// or carries an unknown type byte — a listener counts these and moves
/// on, exactly like a corrupted unicast frame.
pub fn parse_frame(bytes: &[u8]) -> Result<AirFrame<'_>, BroadcastError> {
    if bytes.len() < 3 {
        return Err(BroadcastError("air frame too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 2);
    let stored = u16::from_be_bytes([tail[0], tail[1]]);
    if crc16(body) != stored {
        return Err(BroadcastError("air frame failed crc16"));
    }
    let mut cur = body;
    match get_u8(&mut cur)? {
        FRAME_DATA => {
            let doc = get_u16(&mut cur)?;
            let group = get_u16(&mut cur)?;
            let index = get_u16(&mut cur)?;
            if cur.len() < 5 {
                return Err(BroadcastError("air record too short"));
            }
            Ok(AirFrame::Data {
                doc,
                group,
                index,
                record: cur,
            })
        }
        FRAME_INDEX => {
            let pos = get_u32(&mut cur)?;
            let cycle_len = get_u32(&mut cur)?;
            let ndocs = get_u16(&mut cur)?;
            let mut docs = Vec::with_capacity(usize::from(ndocs));
            for _ in 0..ndocs {
                let id = get_u16(&mut cur)?;
                let m = get_u16(&mut cur)?;
                let n = get_u16(&mut cur)?;
                let packet_size = get_u32(&mut cur)?;
                let doc_len = get_u64(&mut cur)?;
                let n_groups = usize::from(get_u16(&mut cur)?);
                let mut group_lens = Vec::with_capacity(n_groups);
                for _ in 0..n_groups {
                    group_lens.push(get_u32(&mut cur)?);
                }
                let contents_len = n_groups
                    .checked_mul(usize::from(m))
                    .ok_or(BroadcastError("index frame contents overflow"))?;
                // Capacity is clamped to what the frame can still hold,
                // so a corrupt count cannot force a giant allocation
                // before the truncated-input error below fires.
                let mut contents_ppm = Vec::with_capacity(contents_len.min(cur.len() / 4));
                for _ in 0..contents_len {
                    contents_ppm.push(get_u32(&mut cur)?);
                }
                docs.push(DocMeta {
                    id,
                    m,
                    n,
                    packet_size,
                    doc_len,
                    group_lens,
                    contents_ppm,
                });
            }
            if !cur.is_empty() {
                return Err(BroadcastError("trailing bytes in index frame"));
            }
            Ok(AirFrame::Index(AirIndex {
                pos,
                cycle_len,
                docs,
            }))
        }
        _ => Err(BroadcastError("unknown air frame type")),
    }
}

/// The stride-scheduling quantum: `lcm(1..=5)`, so every admissible
/// per-packet frequency divides it exactly and the weighted
/// round-robin below stays integer-exact.
const STRIDE_QUANTUM: u64 = 60;
/// Frequencies are clamped to `1..=MAX_DOC_FREQ` (+1 content boost).
const MAX_DOC_FREQ: u64 = 4;

struct ChannelSchedule {
    slots: Vec<Slot>,
    frames: Vec<Vec<u8>>,
}

/// A deterministic cyclic broadcast schedule over the stored records
/// of a document set, split across one or more channels.
pub struct Carousel {
    channels: Vec<ChannelSchedule>,
}

impl Carousel {
    /// Builds the schedule: validates documents, splits them across
    /// channels (greedy least-loaded, deterministic), computes per-
    /// packet repetition frequencies, lays each channel's cycle out by
    /// integer stride scheduling, interleaves index frames, and
    /// renders every frame once.
    ///
    /// # Errors
    ///
    /// [`BroadcastError`] for an empty document set, duplicate ids,
    /// zero channels, or a document whose shape is inconsistent.
    pub fn build(docs: &[BroadcastDoc], cfg: &CarouselConfig) -> Result<Carousel, BroadcastError> {
        if docs.is_empty() {
            return Err(BroadcastError("no documents to broadcast"));
        }
        if cfg.channels == 0 {
            return Err(BroadcastError("need at least one channel"));
        }
        let mut ids = std::collections::BTreeSet::new();
        for d in docs {
            d.check()?;
            if !ids.insert(d.id) {
                return Err(BroadcastError("duplicate document id"));
            }
        }
        let freqs: Vec<Vec<Vec<u64>>> = docs.iter().map(|d| packet_freqs(d, docs, cfg)).collect();

        // Greedy least-loaded channel assignment, in input order, by
        // each document's total repetition count. Ties go to the
        // lowest channel, so assignment is deterministic.
        let mut load = vec![0u64; cfg.channels];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); cfg.channels];
        for (di, df) in freqs.iter().enumerate() {
            let doc_load: u64 = df.iter().flatten().sum();
            let ch = (0..cfg.channels).min_by_key(|&c| (load[c], c)).unwrap_or(0);
            load[ch] += doc_load;
            members[ch].push(di);
        }

        let channels = members
            .iter()
            .map(|member| build_channel(docs, &freqs, member, cfg))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Carousel { channels })
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Slots per cycle on channel `ch`.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[must_use]
    pub fn cycle_len(&self, ch: usize) -> usize {
        self.channels[ch].slots.len()
    }

    /// The cycle layout of channel `ch` (for inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[must_use]
    pub fn slots(&self, ch: usize) -> &[Slot] {
        &self.channels[ch].slots
    }

    /// The channel a document was assigned to.
    #[must_use]
    pub fn channel_of(&self, doc: u16) -> Option<usize> {
        self.channels.iter().position(|c| {
            c.slots
                .iter()
                .any(|s| matches!(s, Slot::Data(r) if r.doc == doc))
        })
    }

    /// The rendered frame on the air at absolute slot `abs_slot` of
    /// channel `ch`. Emits [`EventKind::CarouselCycle`] each time the
    /// cycle wraps (call it once per slot per channel, as a driver
    /// loop naturally does).
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[must_use]
    pub fn frame_at(&self, ch: usize, abs_slot: u64) -> &[u8] {
        let cycle = self.channels[ch].frames.len() as u64;
        if abs_slot > 0 && abs_slot.is_multiple_of(cycle) {
            emit(EventKind::CarouselCycle, ch as u64, abs_slot / cycle);
        }
        &self.channels[ch].frames[(abs_slot % cycle) as usize]
    }

    /// Total repetitions of packet (`doc`, `group`, `index`) per cycle.
    #[must_use]
    pub fn frequency_of(&self, r: SlotRef) -> usize {
        self.channels
            .iter()
            .flat_map(|c| &c.slots)
            .filter(|s| matches!(s, Slot::Data(x) if *x == r))
            .count()
    }
}

/// Per-packet repetition frequencies for one document.
///
/// Flat: everything once. Popularity: the document's base frequency
/// scales with the square root of its weight relative to the hottest
/// document (the square root spaces cycle shares like a broadcast
/// disk without letting one hot document drown the cold tail), and
/// clear packets at or above the document's median content get one
/// extra repetition — the QIC rank decides which bytes recur most.
fn packet_freqs(doc: &BroadcastDoc, all: &[BroadcastDoc], cfg: &CarouselConfig) -> Vec<Vec<u64>> {
    let groups = doc.group_lens.len();
    let base = match cfg.skew {
        Skew::Flat => 1,
        Skew::Popularity => {
            let wmax = all.iter().map(|d| d.weight).fold(0.0f64, f64::max);
            if wmax <= 0.0 {
                1
            } else {
                let r = (MAX_DOC_FREQ as f64 * (doc.weight / wmax).sqrt()).round() as u64;
                r.clamp(1, MAX_DOC_FREQ)
            }
        }
    };
    let boost = |g: usize, i: usize| -> u64 {
        if cfg.skew == Skew::Flat || i >= doc.m {
            return 0;
        }
        u64::from(doc.contents[g][i] >= median_content(doc))
    };
    (0..groups)
        .map(|g| (0..doc.n).map(|i| base + boost(g, i)).collect())
        .collect()
}

/// Median of a document's clear-packet contents (upper median).
fn median_content(doc: &BroadcastDoc) -> f64 {
    let mut all: Vec<f64> = doc.contents.iter().flatten().copied().collect();
    all.sort_by(f64::total_cmp);
    all.get(all.len() / 2).copied().unwrap_or(0.0)
}

fn build_channel(
    docs: &[BroadcastDoc],
    freqs: &[Vec<Vec<u64>>],
    member: &[usize],
    cfg: &CarouselConfig,
) -> Result<ChannelSchedule, BroadcastError> {
    // Integer stride scheduling: a packet with frequency f is due
    // every QUANTUM/f virtual ticks; emitting the earliest deadline
    // first (ties broken by packet identity) spaces each packet's
    // repetitions evenly through the cycle, so no prefix of the cycle
    // is starved of any document.
    struct Item {
        deadline: u64,
        slot: SlotRef,
        stride: u64,
        remaining: u64,
    }
    let mut items = Vec::new();
    for &di in member {
        let doc = &docs[di];
        for (g, per_group) in freqs[di].iter().enumerate() {
            for (i, &f) in per_group.iter().enumerate() {
                let stride = STRIDE_QUANTUM / f.clamp(1, MAX_DOC_FREQ + 1);
                items.push(Item {
                    deadline: stride,
                    slot: SlotRef {
                        doc: doc.id,
                        group: g as u16,
                        index: i as u16,
                    },
                    stride,
                    remaining: STRIDE_QUANTUM / stride,
                });
            }
        }
    }
    let total: u64 = items.iter().map(|it| it.remaining).sum();
    let mut data = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let Some(next) = items
            .iter_mut()
            .filter(|it| it.remaining > 0)
            .min_by_key(|it| (it.deadline, it.slot))
        else {
            break;
        };
        data.push(next.slot);
        next.deadline += next.stride;
        next.remaining -= 1;
    }

    // Interleave index frames: always at slot 0, then after every
    // `index_every` data slots.
    let mut slots = vec![Slot::Index];
    for (j, &s) in data.iter().enumerate() {
        if cfg.index_every > 0 && j > 0 && j % cfg.index_every == 0 {
            slots.push(Slot::Index);
        }
        slots.push(Slot::Data(s));
    }

    // Render every frame once; index frames carry their own position.
    let cycle_len = slots.len() as u32;
    let metas = channel_metas(docs, member)?;
    let by_id: BTreeMap<u16, usize> = member.iter().map(|&di| (docs[di].id, di)).collect();
    let frames = slots
        .iter()
        .enumerate()
        .map(|(p, s)| match s {
            Slot::Index => render_index_frame(&AirIndex {
                pos: p as u32,
                cycle_len,
                docs: metas.clone(),
            }),
            Slot::Data(r) => {
                let doc = &docs[by_id[&r.doc]];
                render_data_frame(
                    r.doc,
                    r.group,
                    r.index,
                    &doc.records[usize::from(r.group)][usize::from(r.index)],
                )
            }
        })
        .collect();
    Ok(ChannelSchedule { slots, frames })
}

fn channel_metas(docs: &[BroadcastDoc], member: &[usize]) -> Result<Vec<DocMeta>, BroadcastError> {
    let mut metas = Vec::with_capacity(member.len());
    for &di in member {
        let d = &docs[di];
        if d.m > usize::from(u16::MAX) || d.packet_size > u32::MAX as usize {
            return Err(BroadcastError("document shape exceeds air index range"));
        }
        metas.push(DocMeta {
            id: d.id,
            m: d.m as u16,
            n: d.n as u16,
            packet_size: d.packet_size as u32,
            doc_len: d.doc_len as u64,
            group_lens: d.group_lens.iter().map(|&l| l as u32).collect(),
            contents_ppm: d
                .contents
                .iter()
                .flatten()
                .map(|&c| (c * 1_000_000.0).round() as u32)
                .collect(),
        });
    }
    metas.sort_by_key(|m| m.id);
    Ok(metas)
}

/// When a listener turns its radio off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop at reconstruction: any `M` distinct intact packets per
    /// group (the protocol's normal completion).
    Complete,
    /// Stop once at least this information-content fraction is
    /// available — the LOD analogue for impatient listeners. Always
    /// stops at full reconstruction too.
    Content(f64),
    /// Keep listening until every cooked packet of the target has been
    /// heard intact (for byte-identity comparisons against early stop).
    AllPackets,
}

enum Phase {
    /// No index frame heard yet: buffer self-verifying records.
    Tuning {
        buffered: Vec<(u16, u16, Vec<u8>)>,
    },
    Collecting(Collect),
    Done,
}

struct Collect {
    meta: DocMeta,
    cycle_len: u32,
    groups: Vec<ReceiverState>,
    /// Intact packet bytes by index, per group.
    held: Vec<BTreeMap<usize, Vec<u8>>>,
    /// Clear-packet contents (group-major), from the air index.
    contents: Vec<Vec<f64>>,
}

/// One tuned-in client of a broadcast channel.
///
/// Feed it what its radio tap heard each slot via [`hear`]; it
/// buffers while tuning, reconstructs per the [`StopRule`], and
/// reports its access time in slots.
///
/// [`hear`]: BroadcastListener::hear
pub struct BroadcastListener {
    id: u64,
    target: u16,
    rule: StopRule,
    tuned_at: Option<u64>,
    slots_listened: u64,
    access_slots: Option<u64>,
    frames_heard: u64,
    corrupt_frames: u64,
    target_on_air: Option<bool>,
    bytes: Option<Vec<u8>>,
    content: f64,
    error: Option<BroadcastError>,
    phase: Phase,
}

impl BroadcastListener {
    /// A listener that wants document `target` and stops per `rule`.
    #[must_use]
    pub fn new(id: u64, target: u16, rule: StopRule) -> Self {
        BroadcastListener {
            id,
            target,
            rule,
            tuned_at: None,
            slots_listened: 0,
            access_slots: None,
            frames_heard: 0,
            corrupt_frames: 0,
            target_on_air: None,
            bytes: None,
            content: 0.0,
            error: None,
            phase: Phase::Tuning {
                buffered: Vec::new(),
            },
        }
    }

    /// Processes one slot: `heard` is the tap's delivery (`None` when
    /// the frame was lost to a drop or disconnection). Returns whether
    /// the listener is done. Emits [`EventKind::TuneIn`] on the first
    /// call and [`EventKind::EarlyStop`] when it finishes in less than
    /// one full cycle.
    pub fn hear(&mut self, abs_slot: u64, heard: Option<&[u8]>) -> bool {
        if matches!(self.phase, Phase::Done) {
            return true;
        }
        if self.tuned_at.is_none() {
            self.tuned_at = Some(abs_slot);
            emit(EventKind::TuneIn, self.id, abs_slot);
        }
        self.slots_listened += 1;
        let Some(bytes) = heard else {
            return false;
        };
        self.frames_heard += 1;
        match parse_frame(bytes) {
            Err(_) => {
                self.corrupt_frames += 1;
                false
            }
            Ok(AirFrame::Index(index)) => {
                self.on_index(&index);
                self.check_stop()
            }
            Ok(AirFrame::Data { doc, .. }) if doc != self.target => false,
            Ok(AirFrame::Data {
                group,
                index,
                record,
                ..
            }) => {
                match &mut self.phase {
                    Phase::Tuning { buffered } => buffered.push((group, index, record.to_vec())),
                    Phase::Collecting(c) => {
                        let corrupt = feed_record(c, group, index, record);
                        self.corrupt_frames += u64::from(corrupt);
                    }
                    Phase::Done => {}
                }
                self.check_stop()
            }
        }
    }

    fn on_index(&mut self, index: &AirIndex) {
        let Phase::Tuning { buffered } = &mut self.phase else {
            return; // Already collecting; geometry is static per run.
        };
        let Some(meta) = index.docs.iter().find(|d| d.id == self.target) else {
            self.target_on_air = Some(false);
            return;
        };
        self.target_on_air = Some(true);
        let meta = meta.clone();
        let (m, n) = (usize::from(meta.m), usize::from(meta.n));
        let groups = meta.group_lens.len();
        if m == 0 || n < m {
            self.error = Some(BroadcastError("air index carries invalid (M, N)"));
            return;
        }
        if meta.contents_ppm.len() != groups * m {
            self.error = Some(BroadcastError("air index contents shape mismatch"));
            return;
        }
        let contents: Vec<Vec<f64>> = (0..groups)
            .map(|g| {
                meta.contents_ppm[g * m..(g + 1) * m]
                    .iter()
                    .map(|&ppm| f64::from(ppm) / 1_000_000.0)
                    .collect()
            })
            .collect();
        let mut collect = Collect {
            cycle_len: index.cycle_len,
            groups: (0..groups)
                .map(|g| ReceiverState::new(m, n, contents[g].clone()))
                .collect(),
            held: vec![BTreeMap::new(); groups],
            contents,
            meta,
        };
        let mut corrupt = 0u64;
        for (g, i, record) in buffered.drain(..) {
            corrupt += u64::from(feed_record(&mut collect, g, i, &record));
        }
        self.corrupt_frames += corrupt;
        self.phase = Phase::Collecting(collect);
    }

    fn check_stop(&mut self) -> bool {
        let Phase::Collecting(c) = &self.phase else {
            return matches!(self.phase, Phase::Done);
        };
        self.content = doc_content(c);
        let complete = c.groups.iter().all(ReceiverState::is_complete);
        let stop = match self.rule {
            StopRule::Complete => complete,
            StopRule::Content(f) => complete || self.content >= f,
            StopRule::AllPackets => c
                .groups
                .iter()
                .all(|g| (0..g.cooked_packets()).all(|i| g.has(i))),
        };
        if !stop {
            return false;
        }
        let cycle_len = c.cycle_len;
        if complete {
            match decode(c) {
                Ok(b) => self.bytes = Some(b),
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        self.phase = Phase::Done;
        self.access_slots = Some(self.slots_listened);
        if self.slots_listened < u64::from(cycle_len) {
            emit(EventKind::EarlyStop, self.id, self.slots_listened);
        }
        true
    }

    /// Whether the listener has stopped.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Slots listened from tune-in to stop (the access time), once done.
    #[must_use]
    pub fn access_slots(&self) -> Option<u64> {
        self.access_slots
    }

    /// Absolute slot of the first [`hear`](Self::hear) call.
    #[must_use]
    pub fn tuned_at(&self) -> Option<u64> {
        self.tuned_at
    }

    /// The reconstructed document, when reconstruction happened.
    #[must_use]
    pub fn bytes(&self) -> Option<&[u8]> {
        self.bytes.as_deref()
    }

    /// Information content available right now (1.0 once complete).
    #[must_use]
    pub fn content(&self) -> f64 {
        self.content
    }

    /// Whether the channel's air index listed the target (known after
    /// the first index frame).
    #[must_use]
    pub fn target_on_air(&self) -> Option<bool> {
        self.target_on_air
    }

    /// Frames heard (anything delivered, intact or not).
    #[must_use]
    pub fn frames_heard(&self) -> u64 {
        self.frames_heard
    }

    /// Frames or records that failed a CRC.
    #[must_use]
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// Listener id (appears in trace events).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A reconstruction-side error, if one occurred.
    #[must_use]
    pub fn error(&self) -> Option<BroadcastError> {
        self.error
    }
}

/// Feeds one record into the collection state; returns whether the
/// record was corrupt.
fn feed_record(c: &mut Collect, group: u16, index: u16, record: &[u8]) -> bool {
    let (g, i) = (usize::from(group), usize::from(index));
    let ps = c.meta.packet_size as usize;
    if g >= c.groups.len() || i >= usize::from(c.meta.n) || record.len() != ps + 4 {
        return true;
    }
    let (packet, tail) = record.split_at(ps);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let corrupt = crc32(packet) != stored;
    c.groups[g].on_packet(i, corrupt);
    if !corrupt {
        c.held[g].entry(i).or_insert_with(|| packet.to_vec());
    }
    corrupt
}

/// Document-level content: completed groups contribute their whole
/// share; incomplete groups contribute their intact clear packets.
fn doc_content(c: &Collect) -> f64 {
    c.groups
        .iter()
        .zip(&c.contents)
        .map(|(g, contents)| {
            if g.is_complete() {
                contents.iter().sum::<f64>()
            } else {
                contents
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| g.has(i))
                    .map(|(_, &v)| v)
                    .sum()
            }
        })
        .sum()
}

fn decode(c: &Collect) -> Result<Vec<u8>, BroadcastError> {
    let codec = Codec::shared(
        usize::from(c.meta.m),
        usize::from(c.meta.n),
        c.meta.packet_size as usize,
    )
    .map_err(|_| BroadcastError("air index parameters rejected by codec"))?;
    let groups: Vec<GroupPackets> = c
        .held
        .iter()
        .enumerate()
        .map(|(g, held)| {
            (
                g,
                held.iter().map(|(&i, p)| (i, p.clone())).collect(),
                c.meta.group_lens.get(g).copied().unwrap_or(0) as usize,
            )
        })
        .collect();
    GroupCodec::new(codec)
        .decode(&groups)
        .map_err(|_| BroadcastError("reconstruction failed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-side cooking: encode a payload and append per-record CRCs,
    /// mirroring what the store persists. (Production never encodes in
    /// this module — the carousel replays stored records.)
    fn doc_from_payload(
        id: u16,
        weight: f64,
        m: usize,
        n: usize,
        ps: usize,
        payload: &[u8],
    ) -> BroadcastDoc {
        let codec = Codec::new(m, n, ps).unwrap();
        let groups = GroupCodec::new(codec).encode(payload);
        let records: Vec<Vec<Vec<u8>>> = groups
            .iter()
            .map(|g| {
                g.cooked
                    .iter()
                    .map(|p| {
                        let mut r = p.clone();
                        r.extend_from_slice(&crc32(p).to_le_bytes());
                        r
                    })
                    .collect()
            })
            .collect();
        let group_lens: Vec<usize> = groups.iter().map(|g| g.len).collect();
        let contents = BroadcastDoc::uniform_contents(groups.len(), m);
        BroadcastDoc {
            id,
            weight,
            m,
            n,
            packet_size: ps,
            doc_len: payload.len(),
            group_lens,
            records,
            contents,
        }
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31) ^ seed)
            .collect()
    }

    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    #[test]
    fn data_frame_round_trips() {
        let record = vec![7u8; 36];
        let f = render_data_frame(3, 1, 9, &record);
        match parse_frame(&f).unwrap() {
            AirFrame::Data {
                doc,
                group,
                index,
                record: r,
            } => {
                assert_eq!((doc, group, index), (3, 1, 9));
                assert_eq!(r, &record[..]);
            }
            AirFrame::Index(_) => panic!("wrong frame type"),
        }
    }

    #[test]
    fn index_frame_round_trips() {
        let index = AirIndex {
            pos: 17,
            cycle_len: 120,
            docs: vec![DocMeta {
                id: 2,
                m: 4,
                n: 6,
                packet_size: 32,
                doc_len: 128,
                group_lens: vec![128],
                contents_ppm: vec![400_000, 300_000, 200_000, 100_000],
            }],
        };
        let f = render_index_frame(&index);
        assert_eq!(parse_frame(&f).unwrap(), AirFrame::Index(index));
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let mut f = render_data_frame(1, 0, 0, &[5u8; 20]);
        for at in [0, 3, 10, f.len() - 1] {
            f[at] ^= 0x40;
            assert!(parse_frame(&f).is_err(), "corruption at byte {at} passed");
            f[at] ^= 0x40;
        }
        assert!(parse_frame(&f).is_ok());
    }

    #[test]
    fn flat_cycle_carries_every_packet_exactly_once() {
        let docs = vec![
            doc_from_payload(1, 1.0, 3, 5, 16, &payload(90, 1)),
            doc_from_payload(2, 9.0, 2, 4, 16, &payload(40, 2)),
        ];
        let cfg = CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 4,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        for d in &docs {
            for g in 0..d.group_lens.len() {
                for i in 0..d.n {
                    let r = SlotRef {
                        doc: d.id,
                        group: g as u16,
                        index: i as u16,
                    };
                    assert_eq!(car.frequency_of(r), 1, "{r:?} not exactly once");
                }
            }
        }
        let data_slots: usize = docs.iter().map(BroadcastDoc::packet_count).sum();
        let index_slots = car
            .slots(0)
            .iter()
            .filter(|s| matches!(s, Slot::Index))
            .count();
        assert_eq!(car.cycle_len(0), data_slots + index_slots);
        assert!(matches!(car.slots(0)[0], Slot::Index));
    }

    #[test]
    fn skewed_cycle_repeats_hot_documents_without_starving_cold_ones() {
        let docs = vec![
            doc_from_payload(1, 16.0, 3, 5, 16, &payload(90, 1)),
            doc_from_payload(2, 1.0, 3, 5, 16, &payload(90, 2)),
        ];
        let cfg = CarouselConfig {
            channels: 1,
            skew: Skew::Popularity,
            index_every: 8,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        let freq = |doc: u16| {
            (0..5)
                .map(|i| {
                    car.frequency_of(SlotRef {
                        doc,
                        group: 0,
                        index: i,
                    })
                })
                .sum::<usize>()
        };
        assert!(
            freq(1) > freq(2),
            "hot doc not repeated more: {} vs {}",
            freq(1),
            freq(2)
        );
        // No starvation: every packet of the cold doc still cycles.
        for i in 0..5u16 {
            assert!(
                car.frequency_of(SlotRef {
                    doc: 2,
                    group: 0,
                    index: i
                }) >= 1
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let docs: Vec<BroadcastDoc> = (0..5)
            .map(|i| doc_from_payload(i, f64::from(i + 1), 3, 5, 24, &payload(150, i as u8)))
            .collect();
        let cfg = CarouselConfig {
            channels: 2,
            skew: Skew::Popularity,
            index_every: 6,
        };
        let a = Carousel::build(&docs, &cfg).unwrap();
        let b = Carousel::build(&docs, &cfg).unwrap();
        assert_eq!(a.channels(), b.channels());
        for ch in 0..a.channels() {
            assert_eq!(a.slots(ch), b.slots(ch));
            for s in 0..a.cycle_len(ch) {
                assert_eq!(a.frame_at(ch, s as u64), b.frame_at(ch, s as u64));
            }
        }
    }

    #[test]
    fn listener_joins_mid_cycle_and_reconstructs_exact_bytes() {
        let body = payload(777, 9);
        let docs = vec![
            doc_from_payload(1, 1.0, 4, 6, 64, &payload(500, 3)),
            doc_from_payload(2, 1.0, 4, 6, 64, &body),
        ];
        let cfg = CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 4,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        let cycle = car.cycle_len(0) as u64;
        for join in [0u64, 1, cycle / 2, cycle - 1] {
            let mut l = BroadcastListener::new(join, 2, StopRule::Complete);
            let mut slot = join;
            while !l.hear(slot, Some(car.frame_at(0, slot))) {
                slot += 1;
                assert!(slot < join + 3 * cycle, "no completion joining at {join}");
            }
            assert_eq!(l.bytes(), Some(&body[..]), "wrong bytes joining at {join}");
            assert!(l.access_slots().unwrap() <= 2 * cycle);
            assert_eq!(l.content(), 1.0);
            assert_eq!(l.target_on_air(), Some(true));
        }
    }

    #[test]
    fn content_rule_stops_before_full_reconstruction() {
        let docs = vec![doc_from_payload(1, 1.0, 8, 12, 32, &payload(256, 4))];
        let cfg = CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 2,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        let mut partial = BroadcastListener::new(1, 1, StopRule::Content(0.25));
        let mut full = BroadcastListener::new(2, 1, StopRule::Complete);
        let (mut ps, mut fs) = (0u64, 0u64);
        while !partial.hear(ps, Some(car.frame_at(0, ps))) {
            ps += 1;
        }
        while !full.hear(fs, Some(car.frame_at(0, fs))) {
            fs += 1;
        }
        assert!(partial.access_slots() < full.access_slots());
        assert!(partial.content() >= 0.25);
        assert!(partial.bytes().is_none(), "partial stop should not decode");
        assert_eq!(full.bytes().map(<[u8]>::len), Some(256));
    }

    #[test]
    fn corrupt_records_are_discarded_and_redundancy_covers_them() {
        let body = payload(300, 5);
        let docs = vec![doc_from_payload(1, 1.0, 3, 6, 128, &body)];
        let cfg = CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 3,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        let mut l = BroadcastListener::new(1, 1, StopRule::Complete);
        let mut slot = 0u64;
        let mut mangled = 0;
        while !l.is_done() {
            let frame = car.frame_at(0, slot);
            // Damage the record *inside* a valid frame for the first
            // two data slots: frame CRC passes, record CRC must catch it.
            let heard = if mangled < 2 && frame[0] == FRAME_DATA {
                mangled += 1;
                let mut f = frame.to_vec();
                let at = 7 + 5; // inside the record region
                f[at] ^= 0xFF;
                let body_len = f.len() - 2;
                let c = crc16(&f[..body_len]);
                f[body_len..].copy_from_slice(&c.to_be_bytes());
                f
            } else {
                frame.to_vec()
            };
            l.hear(slot, Some(&heard));
            slot += 1;
            assert!(slot < 4 * car.cycle_len(0) as u64);
        }
        assert_eq!(l.bytes(), Some(&body[..]));
        assert_eq!(l.corrupt_frames(), 2);
    }

    #[test]
    fn listener_for_absent_document_reports_it() {
        let docs = vec![doc_from_payload(1, 1.0, 2, 3, 16, &payload(32, 6))];
        let car = Carousel::build(&docs, &CarouselConfig::default()).unwrap();
        let mut l = BroadcastListener::new(1, 42, StopRule::Complete);
        for slot in 0..car.cycle_len(0) as u64 {
            assert!(!l.hear(slot, Some(car.frame_at(0, slot))));
        }
        assert_eq!(l.target_on_air(), Some(false));
        assert!(!l.is_done());
    }

    #[test]
    fn lost_slots_only_delay_completion() {
        let body = payload(200, 7);
        let docs = vec![doc_from_payload(1, 1.0, 4, 6, 64, &body)];
        let cfg = CarouselConfig {
            channels: 1,
            skew: Skew::Flat,
            index_every: 2,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        let mut l = BroadcastListener::new(1, 1, StopRule::Complete);
        let mut slot = 0u64;
        // A loss period coprime with the cycle length, so the losses
        // rotate through the cycle instead of erasing the same slots
        // (in particular the index frames) every time around.
        // Two consecutive integers are coprime, so one of 4..=5+cycle
        // always qualifies; the bound keeps the search finite.
        let period = (4..=car.cycle_len(0) as u64 + 5)
            .find(|p| gcd(*p, car.cycle_len(0) as u64) == 1)
            .unwrap();
        while !l.is_done() {
            let heard = (!slot.is_multiple_of(period)).then(|| car.frame_at(0, slot));
            l.hear(slot, heard);
            slot += 1;
            assert!(slot < 16 * car.cycle_len(0) as u64);
        }
        assert_eq!(l.bytes(), Some(&body[..]));
    }

    #[test]
    fn multi_channel_split_covers_every_document() {
        let docs: Vec<BroadcastDoc> = (0..6)
            .map(|i| doc_from_payload(i, f64::from(6 - i), 2, 4, 16, &payload(60, i as u8)))
            .collect();
        let cfg = CarouselConfig {
            channels: 3,
            skew: Skew::Popularity,
            index_every: 4,
        };
        let car = Carousel::build(&docs, &cfg).unwrap();
        assert_eq!(car.channels(), 3);
        for d in &docs {
            let ch = car.channel_of(d.id).expect("document missing from air");
            // The document must be completable from its own channel.
            let mut l = BroadcastListener::new(u64::from(d.id), d.id, StopRule::Complete);
            let mut slot = 0u64;
            while !l.hear(slot, Some(car.frame_at(ch, slot))) {
                slot += 1;
                assert!(slot < 3 * car.cycle_len(ch) as u64);
            }
        }
    }

    #[test]
    fn build_rejects_malformed_inputs() {
        let good = doc_from_payload(1, 1.0, 2, 3, 16, &payload(32, 1));
        assert!(Carousel::build(&[], &CarouselConfig::default()).is_err());
        let cfg0 = CarouselConfig {
            channels: 0,
            ..CarouselConfig::default()
        };
        assert!(Carousel::build(std::slice::from_ref(&good), &cfg0).is_err());
        assert!(
            Carousel::build(&[good.clone(), good.clone()], &CarouselConfig::default()).is_err()
        );
        let mut bad = good;
        bad.records[0][0].pop();
        assert!(Carousel::build(&[bad], &CarouselConfig::default()).is_err());
    }
}
