//! Intuition-level ordering.
//!
//! The paper's closing discussion (§6) proposes to "consider the
//! concept of 'intuition level' of each organizational unit in addition
//! to its information content in defining the transmission order" — a
//! human prior (an author marking the abstract and conclusions as
//! must-read, a user preferring figures first) blended with the
//! computed content score.
//!
//! [`IntuitionOrdering`] assigns each unit an intuition level in
//! `[0, 1]` and combines it with the content score through a mixing
//! weight λ: `priority = (1 − λ)·content + λ·intuition·mass_scale`,
//! where `mass_scale` normalizes intuition to the same magnitude as the
//! content scores so λ interpolates meaningfully.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::plan::{TransmissionPlan, UnitSlice};

/// Human-assigned priorities blended with content scores.
///
/// # Example
///
/// ```
/// use mrtweb_transport::intuition::IntuitionOrdering;
/// use mrtweb_transport::plan::UnitSlice;
///
/// let slices = vec![
///     UnitSlice::new("intro", 100, 0.5),
///     UnitSlice::new("appendix", 100, 0.5),
/// ];
/// // Contents tie; intuition promotes the intro.
/// let mut ord = IntuitionOrdering::new(0.5);
/// ord.set("intro", 1.0);
/// ord.set("appendix", 0.0);
/// let plan = ord.plan(&slices);
/// assert_eq!(plan.slices()[0].label, "intro");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntuitionOrdering {
    levels: BTreeMap<String, f64>,
    lambda: f64,
}

impl IntuitionOrdering {
    /// Creates an ordering with mixing weight `lambda ∈ [0, 1]`:
    /// 0 = pure content order, 1 = pure intuition order.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        IntuitionOrdering {
            levels: BTreeMap::new(),
            lambda,
        }
    }

    /// Sets the intuition level of a unit label.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, 1]`.
    pub fn set(&mut self, label: impl Into<String>, level: f64) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&level),
            "intuition level must be in [0, 1]"
        );
        self.levels.insert(label.into(), level);
        self
    }

    /// The intuition level of a label (default 0).
    pub fn level(&self, label: &str) -> f64 {
        self.levels.get(label).copied().unwrap_or(0.0)
    }

    /// The mixing weight λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The blended priority of one slice.
    pub fn priority(&self, slice: &UnitSlice, mass_scale: f64) -> f64 {
        (1.0 - self.lambda) * slice.content + self.lambda * self.level(&slice.label) * mass_scale
    }

    /// Builds a transmission plan ordered by blended priority
    /// (descending; ties keep the input order).
    pub fn plan(&self, slices: &[UnitSlice]) -> TransmissionPlan {
        // Scale intuition to the mean content mass so λ interpolates
        // between comparable quantities.
        let mass_scale = if slices.is_empty() {
            1.0
        } else {
            (slices.iter().map(|s| s.content).sum::<f64>() / slices.len() as f64).max(1e-12)
                * slices.len() as f64
        };
        let mut order: Vec<usize> = (0..slices.len()).collect();
        let prio: Vec<f64> = slices
            .iter()
            .map(|s| self.priority(s, mass_scale))
            .collect();
        order.sort_by(|&a, &b| prio[b].total_cmp(&prio[a]));
        TransmissionPlan::sequential(order.into_iter().map(|i| slices[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slices() -> Vec<UnitSlice> {
        vec![
            UnitSlice::new("a", 10, 0.1),
            UnitSlice::new("b", 10, 0.6),
            UnitSlice::new("c", 10, 0.3),
        ]
    }

    #[test]
    fn lambda_zero_is_pure_content_order() {
        let ord = IntuitionOrdering::new(0.0);
        let plan = ord.plan(&slices());
        let labels: Vec<&str> = plan.slices().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["b", "c", "a"]);
    }

    #[test]
    fn lambda_one_is_pure_intuition_order() {
        let mut ord = IntuitionOrdering::new(1.0);
        ord.set("a", 0.9).set("b", 0.1).set("c", 0.5);
        let plan = ord.plan(&slices());
        let labels: Vec<&str> = plan.slices().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["a", "c", "b"]);
    }

    #[test]
    fn blend_promotes_marked_units_without_destroying_content_order() {
        let mut ord = IntuitionOrdering::new(0.3);
        ord.set("a", 1.0); // weak content, strong intuition
        let plan = ord.plan(&slices());
        let labels: Vec<&str> = plan.slices().iter().map(|s| s.label.as_str()).collect();
        // "a" climbs above "c" but the strong-content "b" stays first.
        assert_eq!(labels, ["b", "a", "c"]);
    }

    #[test]
    fn unknown_labels_default_to_zero_intuition() {
        let mut ord = IntuitionOrdering::new(0.5);
        ord.set("b", 0.0);
        assert_eq!(ord.level("zzz"), 0.0);
        let plan = ord.plan(&slices());
        assert_eq!(plan.slices().len(), 3);
    }

    #[test]
    fn plan_preserves_total_content_and_bytes() {
        let mut ord = IntuitionOrdering::new(0.7);
        ord.set("a", 0.4);
        let plan = ord.plan(&slices());
        assert!((plan.total_content() - 1.0).abs() < 1e-12);
        assert_eq!(plan.total_bytes(), 30);
    }

    #[test]
    fn empty_slices_yield_empty_plan() {
        let ord = IntuitionOrdering::new(0.5);
        let plan = ord.plan(&[]);
        assert!(plan.slices().is_empty());
    }

    #[test]
    #[should_panic(expected = "lambda must be in")]
    fn bad_lambda_panics() {
        let _ = IntuitionOrdering::new(1.5);
    }

    #[test]
    #[should_panic(expected = "intuition level must be in")]
    fn bad_level_panics() {
        IntuitionOrdering::new(0.5).set("x", 2.0);
    }
}
