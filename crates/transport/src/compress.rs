//! Byte-stream compression at the interceptor layer.
//!
//! The paper's related work (§2/§4.2, citing the eNetwork Web Express
//! interceptors) lists compression alongside ARQ as "alternative
//! mechanisms" implementable at the same client/server interceptor
//! layer that hosts the fault-tolerant encoder. This module provides a
//! self-contained LZSS compressor (sliding-window match/literal coding
//! with a greedy parser) so the benchmarks can quantify the classic
//! trade-off: compression shrinks `M` — fewer packets to deliver — but
//! makes every byte depend on the bytes before it, so a partial
//! (early-stopped) transfer of compressed data yields nothing
//! renderable, whereas clear-text multi-resolution slices render as
//! they land.
//!
//! Format: a token stream. Control bytes group 8 tokens; bit `i` set
//! means token `i` is a match `(distance: u16 LE, length: u8)` against
//! the previous output, clear means a literal byte. Window 64 KiB,
//! match lengths 4–258 (encoded as `length - 3`, with 4 the minimum
//! worth encoding).

use std::collections::HashMap;

use crate::plan::TransmissionPlan;

/// Minimum match length worth encoding (shorter is stored literally).
const MIN_MATCH: usize = 4;
/// Maximum encodable match length (`255 + 3`).
const MAX_MATCH: usize = 258;
/// Sliding-window size (maximum match distance).
const WINDOW: usize = 65_535;

/// Compresses `data` with LZSS.
///
/// The output always round-trips through [`decompress`]; it may be
/// larger than the input for incompressible data (by at most ⅛ plus a
/// few bytes of framing).
///
/// # Example
///
/// ```
/// use mrtweb_transport::compress::{compress, decompress};
///
/// let text = "mobile web mobile web mobile web documents".repeat(20);
/// let packed = compress(text.as_bytes());
/// assert!(packed.len() < text.len() / 2);
/// assert_eq!(decompress(&packed).unwrap(), text.as_bytes());
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Chain hash of 4-byte prefixes → most recent positions.
    let mut table: HashMap<u32, Vec<usize>> = HashMap::new();
    let key =
        |d: &[u8], i: usize| -> u32 { u32::from_le_bytes([d[i], d[i + 1], d[i + 2], d[i + 3]]) };

    let mut tokens: Vec<Token> = Vec::new();
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            if let Some(positions) = table.get(&key(data, i)) {
                // Scan the most recent candidates only (bounded work).
                for &p in positions.iter().rev().take(32) {
                    if i - p > WINDOW {
                        break;
                    }
                    let mut l = 0usize;
                    let max = (data.len() - i).min(MAX_MATCH);
                    while l < max && data[p + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - p;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                distance: best_dist as u16,
                length: best_len,
            });
            // Index every covered position (sparsely for long matches).
            let step = if best_len > 32 { 4 } else { 1 };
            let mut j = i;
            while j < i + best_len && j + MIN_MATCH <= data.len() {
                table.entry(key(data, j)).or_default().push(j);
                j += step;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            if i + MIN_MATCH <= data.len() {
                table.entry(key(data, i)).or_default().push(i);
            }
            i += 1;
        }
    }

    // Serialize: u32 LE original length, then 8-token groups.
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    for group in tokens.chunks(8) {
        let mut flags = 0u8;
        for (b, t) in group.iter().enumerate() {
            if matches!(t, Token::Match { .. }) {
                flags |= 1 << b;
            }
        }
        out.push(flags);
        for t in group {
            match t {
                Token::Literal(b) => out.push(*b),
                Token::Match { distance, length } => {
                    out.extend_from_slice(&distance.to_le_bytes());
                    out.push((length - 3) as u8);
                }
            }
        }
    }
    out
}

#[derive(Debug)]
enum Token {
    Literal(u8),
    Match { distance: u16, length: usize },
}

/// Error decompressing a corrupted or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressError(pub &'static str);

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decompression failed: {}", self.0)
    }
}

impl std::error::Error for DecompressError {}

/// Decompresses an LZSS stream produced by [`compress`].
///
/// # Errors
///
/// [`DecompressError`] on truncation, bad match references, or a length
/// mismatch — the failure a corrupted compressed transfer exhibits.
pub fn decompress(packed: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if packed.len() < 4 {
        return Err(DecompressError("missing header"));
    }
    let expect = u32::from_le_bytes([packed[0], packed[1], packed[2], packed[3]]) as usize;
    let mut out = Vec::with_capacity(expect);
    let mut i = 4usize;
    while out.len() < expect {
        if i >= packed.len() {
            return Err(DecompressError("truncated stream"));
        }
        let flags = packed[i];
        i += 1;
        for b in 0..8 {
            if out.len() >= expect {
                break;
            }
            if flags & (1 << b) != 0 {
                if i + 3 > packed.len() {
                    return Err(DecompressError("truncated match token"));
                }
                let distance = u16::from_le_bytes([packed[i], packed[i + 1]]) as usize;
                let length = packed[i + 2] as usize + 3;
                i += 3;
                if distance == 0 || distance > out.len() {
                    return Err(DecompressError("match reference outside window"));
                }
                let start = out.len() - distance;
                for k in 0..length {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                if i >= packed.len() {
                    return Err(DecompressError("truncated literal token"));
                }
                out.push(packed[i]);
                i += 1;
            }
        }
    }
    if out.len() != expect {
        return Err(DecompressError("length mismatch"));
    }
    Ok(out)
}

/// How many raw packets a *compressed* conventional transfer needs,
/// versus the uncompressed plan — the comparator the benchmarks sweep.
pub fn compressed_raw_packets(plan_payload: &[u8], packet_size: usize) -> usize {
    compress(plan_payload).len().div_ceil(packet_size).max(1)
}

/// Convenience: the packet savings ratio for a payload (`1.0` = no
/// savings; `0.4` = compressed needs 40% of the packets).
pub fn packet_savings(plan: &TransmissionPlan, payload: &[u8], packet_size: usize) -> f64 {
    compressed_raw_packets(payload, packet_size) as f64 / plan.raw_packets(packet_size) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        assert_eq!(
            decompress(&packed).unwrap(),
            data,
            "round trip failed ({} bytes)",
            data.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"aaaa");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let text = "the mobile web client browses the mobile web ".repeat(100);
        let packed = compress(text.as_bytes());
        assert!(
            packed.len() < text.len() / 3,
            "expected 3x on repetitive text: {} -> {}",
            text.len(),
            packed.len()
        );
        round_trip(text.as_bytes());
    }

    #[test]
    fn incompressible_data_grows_boundedly() {
        // A pseudo-random byte stream.
        let data: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + data.len() / 8 + 8);
        round_trip(&data);
    }

    #[test]
    fn long_runs_use_max_matches() {
        let data = vec![0x55u8; 10_000];
        let packed = compress(&data);
        assert!(
            packed.len() < 200,
            "run-length case should collapse: {}",
            packed.len()
        );
        round_trip(&data);
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "abcabcabc..." forces distance < length copies.
        let data: Vec<u8> = b"abc".iter().copied().cycle().take(1000).collect();
        round_trip(&data);
    }

    #[test]
    fn corrupted_streams_are_rejected_not_garbled() {
        let text = "structured mobile web documents ".repeat(50);
        let packed = compress(text.as_bytes());
        // Truncation.
        assert!(decompress(&packed[..packed.len() / 2]).is_err());
        assert!(decompress(&packed[..3]).is_err());
        // A corrupted match distance pointing outside the window.
        let mut bad = packed.clone();
        if bad.len() > 8 {
            bad[5] = 0xFF;
            bad[6] = 0xFF;
            // Either decodes to an error or (if it hit a literal) to a
            // different payload; it must never panic.
            let _ = decompress(&bad);
        }
    }

    #[test]
    fn savings_metric() {
        use crate::plan::UnitSlice;
        let text = "paragraph of mobile web content ".repeat(300);
        let payload = text.as_bytes();
        let plan = crate::plan::TransmissionPlan::sequential(vec![UnitSlice::new(
            "doc",
            payload.len(),
            1.0,
        )]);
        let savings = packet_savings(&plan, payload, 256);
        assert!(
            savings < 0.5,
            "expected >2x packet savings, got ratio {savings}"
        );
        assert!(savings > 0.0);
    }

    #[test]
    fn binary_data_with_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        round_trip(&data);
    }
}
