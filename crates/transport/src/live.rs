//! A live client/server prototype exchanging real bytes.
//!
//! The paper demonstrates feasibility with a Java/CORBA prototype
//! (Figure 1): a *document transmitter* behind the web server pushes
//! organizational units to a browser-side *sequence manager* and
//! *rendering manager*, which paints each unit "incrementally at the
//! proper position in the browsing window when the unit is received".
//!
//! This module is the Rust analogue: a server thread packetizes, frames
//! (CRC + sequence number) and pushes a document through a corrupting
//! [`Link`]; the client verifies CRCs, discards corrupted frames,
//! emits progressive [`ClientEvent::SliceProgress`] rendering events as
//! clear-text bytes land, requests retransmission of what it lacks, and
//! reconstructs the document from any `M` intact cooked packets.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::fault::{FaultConfig, FaultEvent, FaultyLink};
use mrtweb_channel::link::Link;
use mrtweb_content::sc::{Measure, StructuralCharacteristic};
use mrtweb_docmodel::document::Document;
use mrtweb_docmodel::lod::Lod;
use mrtweb_erasure::ida::Codec;
use mrtweb_erasure::packet::Frame;
use mrtweb_erasure::par::{default_threads, encode_into_parallel};
use mrtweb_erasure::Error;
use mrtweb_obs::{emit, EventKind, Span};

use crate::error::Error as TransportError;
use crate::plan::{plan_document, TransmissionPlan};
use crate::receiver::ReceiverState;
use crate::session::CacheMode;

/// Reliable control-channel metadata describing a transmission — the
/// structural characteristic the server ships ahead of the data.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentHeader {
    /// Payload length in bytes (pre-padding).
    pub doc_len: usize,
    /// Raw packets `M`.
    pub m: usize,
    /// Cooked packets `N`.
    pub n: usize,
    /// Raw bytes per packet.
    pub packet_size: usize,
    /// The transmission plan (slice order, sizes, contents).
    pub plan: TransmissionPlan,
}

/// Progressive events the rendering manager consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// More of a slice became renderable: `fraction` of its bytes are in.
    SliceProgress {
        /// The slice's label (unit path).
        label: String,
        /// Fraction of the slice's bytes now available, in `[0, 1]`.
        fraction: f64,
    },
    /// `M` intact packets arrived; the whole document reconstructs.
    Reconstructed,
}

/// The server side: owns the encoded document.
///
/// All `N` cooked packets are encoded once at construction (redundancy
/// rows fanned across threads) and framed once, so retransmission
/// rounds replay cached wire bytes instead of redoing GF(2⁸) math and
/// CRCs per request.
#[derive(Debug)]
pub struct LiveServer {
    header: DocumentHeader,
    /// Pre-framed wire bytes per cooked packet, index = sequence.
    /// `None` marks a packet this server cannot serve (an edge cache
    /// that trimmed parity, or a blob record that rotted at rest);
    /// serving routes skip it and any `M` of the rest still suffice.
    wire_frames: Vec<Option<Vec<u8>>>,
}

impl LiveServer {
    /// Prepares a document for transmission at `lod` ordered by
    /// `measure`, with `gamma` redundancy.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if the document needs more than 256
    /// cooked packets at this packet size (use a larger packet size or a
    /// chunking layer).
    pub fn new(
        doc: &Document,
        sc: &StructuralCharacteristic,
        lod: Lod,
        measure: Measure,
        packet_size: usize,
        gamma: f64,
    ) -> Result<Self, Error> {
        let (plan, payload) = plan_document(doc, sc, lod, measure);
        let m = plan.raw_packets(packet_size);
        let n = ((m as f64 * gamma).round() as usize).max(m);
        // Shared substrate: concurrent sessions serving the same (M, N)
        // shape reuse one systematic generator instead of re-deriving
        // it per session.
        let codec = Codec::shared(m, n, packet_size)?;
        let mut cooked = Vec::new();
        encode_into_parallel(&codec, &payload, &mut cooked, default_threads());
        let wire_frames = cooked
            .chunks_exact(packet_size)
            .enumerate()
            .map(|(i, payload)| Some(Frame::new(i as u16, payload.to_vec()).to_wire().to_vec()))
            .collect();
        Ok(LiveServer {
            header: DocumentHeader {
                doc_len: payload.len(),
                m,
                n,
                packet_size,
                plan,
            },
            wire_frames,
        })
    }

    /// Like [`LiveServer::new`], but grows the packet size (from
    /// `min_packet_size`, doubling) until the document fits the 256
    /// cooked-packet limit of one GF(2⁸) dispersal group — how a server
    /// would serve documents of any size without a chunking layer.
    ///
    /// # Errors
    ///
    /// Propagates codec errors only for pathological `gamma` (the search
    /// always finds a fitting packet size otherwise).
    pub fn new_auto(
        doc: &Document,
        sc: &StructuralCharacteristic,
        lod: Lod,
        measure: Measure,
        min_packet_size: usize,
        gamma: f64,
    ) -> Result<Self, Error> {
        let (plan, _) = plan_document(doc, sc, lod, measure);
        let total = plan.total_bytes().max(1);
        let mut packet_size = min_packet_size.max(1);
        loop {
            let m = total.div_ceil(packet_size).max(1);
            let n = ((m as f64 * gamma).round() as usize).max(m);
            if n <= 256 {
                return LiveServer::new(doc, sc, lod, measure, packet_size, gamma);
            }
            packet_size *= 2;
        }
    }

    /// Builds a server directly from already-cooked packets — an edge
    /// cache serving the at-rest dispersed blob. No codec is
    /// constructed and no [`EventKind::EncodeSpan`] is emitted: the
    /// packets were encoded exactly once when the blob was cooked, and
    /// this path only re-frames them for the wire. `None` entries mark
    /// packets the cache no longer holds intact (trimmed parity, at-rest
    /// rot); the server skips those sequences and the client
    /// reconstructs from any `M` of the rest.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if `cooked.len() != header.n`, any
    /// present packet is not exactly `header.packet_size` bytes, or
    /// fewer than `header.m` packets are present.
    pub fn from_cooked(
        header: DocumentHeader,
        cooked: Vec<Option<Vec<u8>>>,
    ) -> Result<Self, Error> {
        let invalid = Error::InvalidParameters {
            raw: header.m,
            cooked: header.n,
        };
        if cooked.len() != header.n || header.packet_size == 0 {
            return Err(invalid);
        }
        let present = cooked.iter().flatten().count();
        if present < header.m {
            return Err(Error::NotEnoughPackets {
                have: present,
                need: header.m,
            });
        }
        if cooked
            .iter()
            .flatten()
            .any(|p| p.len() != header.packet_size)
        {
            return Err(invalid);
        }
        let wire_frames = cooked
            .into_iter()
            .enumerate()
            .map(|(i, payload)| payload.map(|p| Frame::new(i as u16, p).to_wire().to_vec()))
            .collect();
        Ok(LiveServer {
            header,
            wire_frames,
        })
    }

    /// The control-channel header describing this transmission.
    pub fn header(&self) -> &DocumentHeader {
        &self.header
    }

    /// The cached wire framing for cooked packet `index`, borrowed —
    /// repeat requests (retransmission rounds) cost nothing beyond the
    /// socket write, not an encode. `None` for an out-of-range index:
    /// every serving route must tolerate a request index mangled in
    /// flight, so there is deliberately no panicking accessor.
    pub fn frame_bytes(&self, index: usize) -> Option<&[u8]> {
        self.wire_frames.get(index).and_then(|f| f.as_deref())
    }

    /// Like [`LiveServer::frame_bytes`], but owned.
    pub fn try_frame(&self, index: usize) -> Option<Vec<u8>> {
        self.wire_frames.get(index).and_then(Clone::clone)
    }

    /// Like [`LiveServer::frame_bytes`], but a failed lookup is typed —
    /// for servers that must tell a peer violation apart from a packet
    /// this server legitimately lacks (a trimmed edge-cache entry).
    ///
    /// # Errors
    ///
    /// [`TransportError::FrameOutOfRange`] if `index ≥ N` — a protocol
    /// violation to report to the peer; [`TransportError::FrameNotHeld`]
    /// if `index` is valid but the packet is not held — a sequence the
    /// serving loop skips.
    pub fn frame_checked(&self, index: usize) -> Result<&[u8], TransportError> {
        let slot = self
            .wire_frames
            .get(index)
            .ok_or(TransportError::FrameOutOfRange {
                index,
                n: self.header.n,
            })?;
        slot.as_deref()
            .ok_or(TransportError::FrameNotHeld { index })
    }
}

/// The client side: sequence manager + rendering manager.
#[derive(Debug)]
pub struct LiveClient {
    header: DocumentHeader,
    state: ReceiverState,
    packets: Vec<Option<Vec<u8>>>,
    codec: Codec,
    /// Intact clear bytes per slice (for rendering progress).
    slice_have: Vec<usize>,
    reconstructed: Option<Vec<u8>>,
}

impl LiveClient {
    /// Creates a client for the given transmission header.
    ///
    /// # Errors
    ///
    /// Propagates codec construction errors for inconsistent headers.
    pub fn new(header: DocumentHeader) -> Result<Self, Error> {
        // Shared substrate: every client session with this (M, N) shape
        // shares one generator and one survivor-keyed decode-inverse
        // cache, so a loss pattern inverted by any session is a cache
        // hit for all of them.
        let codec = Codec::shared(header.m, header.n, header.packet_size)?;
        let contents = header.plan.packet_contents(header.packet_size);
        let state = ReceiverState::new(header.m, header.n, contents);
        let slice_have = vec![0usize; header.plan.slices().len()];
        Ok(LiveClient {
            packets: vec![None; header.n],
            state,
            codec,
            slice_have,
            header,
            reconstructed: None,
        })
    }

    /// Feeds one wire frame (possibly corrupted). Returns rendering
    /// events triggered by this frame.
    pub fn on_wire(&mut self, wire: &[u8]) -> Vec<ClientEvent> {
        let Ok(frame) = Frame::from_wire(wire, self.header.packet_size) else {
            // Corrupted: detected by CRC, discarded. Sequence is
            // unknown, so we only book the corruption statistically;
            // index 0 is safe because corrupted packets never alter
            // intact bookkeeping.
            self.state.on_packet(0, true);
            emit(EventKind::CrcReject, self.state.corrupted(), 0);
            return Vec::new();
        };
        let idx = frame.sequence() as usize;
        if idx >= self.header.n || self.state.has(idx) {
            // Unknown or duplicate: nothing new.
            if idx < self.header.n {
                self.state.on_packet(idx, false);
            }
            return Vec::new();
        }
        self.state.on_packet(idx, false);
        self.packets[idx] = Some(frame.into_payload());
        let mut events = Vec::new();
        if idx < self.header.m {
            events.extend(self.render_progress(idx));
        }
        if self.state.is_complete() && self.reconstructed.is_none() {
            let collected: Vec<(usize, Vec<u8>)> = self
                .packets
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.clone().map(|p| (i, p)))
                .collect();
            if let Ok(bytes) = self.codec.decode(&collected, self.header.doc_len) {
                self.reconstructed = Some(bytes);
                events.push(ClientEvent::Reconstructed);
            }
        }
        events
    }

    /// Rendering progress for the slices a clear packet touches.
    fn render_progress(&mut self, packet_idx: usize) -> Vec<ClientEvent> {
        let lo = packet_idx * self.header.packet_size;
        let hi = ((packet_idx + 1) * self.header.packet_size).min(self.header.doc_len);
        let mut events = Vec::new();
        for (i, range) in self.header.plan.slice_ranges().iter().enumerate() {
            let overlap = hi.min(range.end).saturating_sub(lo.max(range.start));
            if overlap == 0 || range.is_empty() {
                continue;
            }
            self.slice_have[i] += overlap;
            let fraction = self.slice_have[i] as f64 / (range.end - range.start) as f64;
            // a = slice index in plan order, b = basis points complete.
            emit(
                EventKind::SliceProgress,
                i as u64,
                (fraction.min(1.0) * 10_000.0) as u64,
            );
            events.push(ClientEvent::SliceProgress {
                label: self.header.plan.slices()[i].label.clone(),
                fraction: fraction.min(1.0),
            });
        }
        events
    }

    /// Protocol bookkeeping (intact counts, content, missing packets).
    pub fn state(&self) -> &ReceiverState {
        &self.state
    }

    /// The reconstructed payload, once available.
    pub fn document_bytes(&self) -> Option<&[u8]> {
        self.reconstructed.as_deref()
    }

    /// Discards all packet state (NoCaching reload).
    pub fn reset(&mut self) {
        self.state.reset_packets();
        self.packets.iter_mut().for_each(|p| *p = None);
        self.slice_have.iter_mut().for_each(|b| *b = 0);
        self.reconstructed = None;
    }
}

/// Re-emits newly recorded fault-scheduler events as trace events,
/// returning the new high-water mark. The channel layer stays
/// deterministic and observability-free; the transport narrates on its
/// behalf.
fn book_fault_events<L: mrtweb_channel::loss::LossModel>(
    faulty: &FaultyLink<L>,
    seen: usize,
) -> usize {
    let trace = faulty.scheduler().trace();
    for event in &trace[seen..] {
        emit(
            EventKind::FaultInjected,
            event.packet,
            u64::from(event.kind.code()),
        );
    }
    trace.len()
}

/// Control messages from client to server.
#[derive(Debug)]
enum Control {
    /// Retransmit exactly these cooked packets.
    Request(Vec<usize>),
    /// The client is done (reconstructed or stopped).
    Done,
}

/// Data messages from server to client.
#[derive(Debug)]
enum Wire {
    Frame(Vec<u8>),
    RoundEnd,
    GaveUp,
}

/// Outcome of [`run_transfer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// Whether the document was fully reconstructed.
    pub completed: bool,
    /// Whether the client stopped early on the relevance threshold.
    pub stopped_early: bool,
    /// Rounds used (1 = no stall).
    pub rounds: usize,
    /// Frames pushed onto the wire.
    pub frames_sent: u64,
    /// Frames the client discarded as corrupted.
    pub frames_corrupted: u64,
    /// The reconstructed payload (empty if not completed).
    pub payload: Vec<u8>,
    /// Rendering events in order of occurrence.
    pub events: Vec<ClientEvent>,
    /// Retransmission request sets in round order (Caching: the missing
    /// packets; NoCaching: full reloads). Empty if no round stalled.
    pub requests: Vec<Vec<usize>>,
    /// The fault scheduler's replayable trace (empty without injected
    /// faults).
    pub fault_events: Vec<FaultEvent>,
}

/// Parameters for [`run_transfer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransferConfig {
    /// Per-packet corruption probability of the simulated wireless link.
    pub alpha: f64,
    /// RNG seed for the link.
    pub seed: u64,
    /// Caching vs from-scratch reloads on stall.
    pub cache_mode: CacheMode,
    /// Stop once accrued content reaches this threshold (the user's
    /// "stop" button for irrelevant documents).
    pub stop_at_content: Option<f64>,
    /// Retry budget in rounds.
    pub max_rounds: usize,
    /// Optional scheduled fault injection layered over the link's own
    /// Bernoulli corruption (drops, duplication, reordering, garbling,
    /// outages — see [`FaultConfig`]).
    pub fault: Option<FaultConfig>,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            alpha: 0.1,
            seed: 0,
            cache_mode: CacheMode::Caching,
            stop_at_content: None,
            max_rounds: 64,
            fault: None,
        }
    }
}

/// Runs a full transfer: the server on its own thread pushing frames
/// through a corrupting link, the client on the calling thread.
///
/// The header travels on the reliable control channel (modelled by
/// cloning it to the client before the lossy data stream starts), as a
/// real deployment would ship the structural characteristic first.
///
/// # Errors
///
/// [`TransportError::Codec`] if the header does not describe a valid
/// codec; [`TransportError::ServerPanicked`] if the server thread dies
/// mid-transfer.
pub fn run_transfer(
    server: LiveServer,
    config: &TransferConfig,
) -> Result<TransferReport, TransportError> {
    // A rendezvous channel models a link with no in-flight buffering:
    // the server hands over one delivery at a time, so a "stop" takes
    // effect after at most one further frame. Zero capacity also makes
    // the fault trace a pure function of the schedule — the server
    // cannot race a variable distance ahead of a client hangup, which
    // keeps replaying a failing schedule exact even when decode timing
    // varies (e.g. a warm shared inverse cache on the second run).
    let (wire_tx, wire_rx): (Sender<Wire>, Receiver<Wire>) = bounded(0);
    let (ctl_tx, ctl_rx): (Sender<Control>, Receiver<Control>) = unbounded();

    // (frames_sent, rounds), shared with the server thread.
    let stats: Arc<Mutex<(u64, usize)>> = Arc::new(Mutex::new((0, 0)));
    let header = server.header().clone();
    emit(EventKind::TransferStart, header.m as u64, header.n as u64);
    let n = header.n;
    let alpha = config.alpha;
    let seed = config.seed;
    let max_rounds = config.max_rounds;
    let fault_cfg = config.fault.clone().unwrap_or_else(FaultConfig::clean);
    let stats_server = Arc::clone(&stats);

    // The thread returns the fault scheduler's trace so a failing
    // schedule can be replayed exactly.
    let server_thread = thread::spawn(move || -> Vec<FaultEvent> {
        let link = Link::new(
            Bandwidth::from_kbps(19.2),
            BernoulliChannel::new(alpha, seed),
            seed ^ 1,
        );
        let mut faulty = FaultyLink::new(link, fault_cfg, seed ^ 2);
        let mut to_send: Vec<usize> = (0..n).collect();
        // Fault-scheduler events already re-emitted as trace events.
        let mut faults_seen = 0usize;
        'rounds: loop {
            // Bump the round counter under the lock, but send GaveUp
            // after releasing it: wire_tx is a rendezvous channel, so a
            // send blocks until the client turns around — holding the
            // stats mutex across that wait would stall the client's own
            // stats reads.
            let round = {
                let mut s = stats_server.lock();
                s.1 += 1;
                s.1
            };
            if round > max_rounds {
                let _ = wire_tx.send(Wire::GaveUp);
                break 'rounds;
            }
            let round_span = Span::start(EventKind::RoundSpan);
            for &idx in &to_send {
                // A request index mangled in flight must not crash the
                // server; unknown packets are simply not served.
                let Some(bytes) = server.frame_bytes(idx) else {
                    continue;
                };
                stats_server.lock().0 += 1;
                for delivery in faulty.transmit(bytes) {
                    if wire_tx.send(Wire::Frame(delivery.bytes)).is_err() {
                        // Client hung up (reconstructed or stopped):
                        // the round still happened — close its span.
                        round_span.end(round as u64);
                        break 'rounds;
                    }
                }
            }
            // Nothing left on the wire this round: held (reordered)
            // frames can no longer be overtaken.
            for delivery in faulty.flush() {
                if wire_tx.send(Wire::Frame(delivery.bytes)).is_err() {
                    round_span.end(round as u64);
                    break 'rounds;
                }
            }
            faults_seen = book_fault_events(&faulty, faults_seen);
            round_span.end(round as u64);
            if wire_tx.send(Wire::RoundEnd).is_err() {
                break 'rounds;
            }
            match ctl_rx.recv() {
                Ok(Control::Request(ids)) => to_send = ids,
                Ok(Control::Done) | Err(_) => break 'rounds,
            }
        }
        faults_seen = book_fault_events(&faulty, faults_seen);
        let _ = faults_seen;
        faulty.into_trace()
    });

    let mut client = LiveClient::new(header)?;
    let mut events = Vec::new();
    let mut requests: Vec<Vec<usize>> = Vec::new();
    let mut completed = false;
    let mut stopped_early = false;
    let mut gave_up = false;

    'transfer: for wire in wire_rx.iter() {
        match wire {
            Wire::Frame(bytes) => {
                let new_events = client.on_wire(&bytes);
                let reconstructed = new_events
                    .iter()
                    .any(|e| matches!(e, ClientEvent::Reconstructed));
                events.extend(new_events);
                if reconstructed {
                    completed = true;
                    let _ = ctl_tx.send(Control::Done);
                    break 'transfer;
                }
                if let Some(threshold) = config.stop_at_content {
                    if client.state().content() >= threshold {
                        stopped_early = true;
                        let _ = ctl_tx.send(Control::Done);
                        break 'transfer;
                    }
                }
            }
            Wire::RoundEnd => {
                // Stalled round: arrange retransmission.
                let request = match config.cache_mode {
                    CacheMode::Caching => client.state().missing(),
                    CacheMode::NoCaching => {
                        client.reset();
                        (0..n).collect()
                    }
                };
                requests.push(request.clone());
                let _ = ctl_tx.send(Control::Request(request));
            }
            Wire::GaveUp => {
                gave_up = true;
                break 'transfer;
            }
        }
    }
    // Drop both channel ends so the server unblocks wherever it is
    // (mid-send or waiting on control), then join.
    drop(ctl_tx);
    drop(wire_rx);
    let fault_events = server_thread
        .join()
        .map_err(|_| TransportError::ServerPanicked)?;
    let _ = gave_up;

    let (frames_sent, rounds) = *stats.lock();
    emit(
        EventKind::TransferEnd,
        u64::from(completed),
        rounds.min(max_rounds) as u64,
    );
    Ok(TransferReport {
        completed,
        stopped_early,
        rounds: rounds.min(max_rounds),
        frames_sent,
        frames_corrupted: client.state().corrupted(),
        payload: client
            .document_bytes()
            .map(<[u8]>::to_vec)
            .unwrap_or_default(),
        events,
        requests,
        fault_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_content::query::Query;
    use mrtweb_textproc::pipeline::ScPipeline;

    fn fixture() -> (Document, StructuralCharacteristic) {
        let doc = Document::parse_xml(
            "<document>\
             <section><title>Mobile Web</title>\
             <paragraph>mobile browsing over wireless channels needs bandwidth care</paragraph>\
             <paragraph>clients cache cooked packets against corruption</paragraph></section>\
             <section><title>Background</title>\
             <paragraph>databases indexes storage engines and other prose</paragraph></section>\
             </document>",
        )
        .unwrap();
        let pipeline = ScPipeline::default();
        let idx = pipeline.run(&doc);
        let q = Query::parse("mobile wireless", &pipeline);
        let sc = StructuralCharacteristic::from_index(&idx, Some(&q));
        (doc, sc)
    }

    fn server(lod: Lod, gamma: f64) -> LiveServer {
        let (doc, sc) = fixture();
        LiveServer::new(&doc, &sc, lod, Measure::Qic, 32, gamma).unwrap()
    }

    fn try_run(srv: LiveServer, config: &TransferConfig) -> TransferReport {
        run_transfer(srv, config).unwrap()
    }

    #[test]
    fn clean_channel_reconstructs_exactly() {
        let srv = server(Lod::Paragraph, 1.5);
        let (_, payload_expect) = {
            let (doc, sc) = fixture();
            plan_document(&doc, &sc, Lod::Paragraph, Measure::Qic)
        };
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
        assert!(report.completed);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.payload, payload_expect);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, ClientEvent::Reconstructed)));
    }

    #[test]
    fn lossy_channel_still_reconstructs_with_caching() {
        let srv = server(Lod::Section, 1.5);
        let (_, payload_expect) = {
            let (doc, sc) = fixture();
            plan_document(&doc, &sc, Lod::Section, Measure::Qic)
        };
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.3,
                seed: 7,
                ..Default::default()
            },
        );
        assert!(report.completed, "transfer failed: {report:?}");
        assert_eq!(report.payload, payload_expect);
        assert!(
            report.frames_corrupted > 0,
            "alpha=0.3 should corrupt something"
        );
    }

    #[test]
    fn nocaching_also_completes() {
        let srv = server(Lod::Document, 1.5);
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.2,
                seed: 3,
                cache_mode: CacheMode::NoCaching,
                ..Default::default()
            },
        );
        assert!(report.completed);
    }

    #[test]
    fn stop_button_interrupts_irrelevant_document() {
        let srv = server(Lod::Paragraph, 1.5);
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.0,
                stop_at_content: Some(0.3),
                ..Default::default()
            },
        );
        assert!(report.stopped_early);
        assert!(!report.completed);
        assert!(report.payload.is_empty());
    }

    #[test]
    fn progressive_rendering_is_monotone_per_slice() {
        let srv = server(Lod::Paragraph, 1.2);
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
        let mut last = std::collections::HashMap::<String, f64>::new();
        for e in &report.events {
            if let ClientEvent::SliceProgress { label, fraction } = e {
                let prev = last.insert(label.clone(), *fraction).unwrap_or(0.0);
                assert!(*fraction >= prev, "progress went backwards for {label}");
                assert!(*fraction <= 1.0 + 1e-12);
            }
        }
        assert!(!last.is_empty(), "rendering events must be emitted");
    }

    #[test]
    fn qic_ordering_renders_matching_section_first() {
        let srv = server(Lod::Section, 1.5);
        let first_label = srv.header().plan.slices()[0].label.clone();
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
        let first_event = report.events.iter().find_map(|e| match e {
            ClientEvent::SliceProgress { label, .. } => Some(label.clone()),
            ClientEvent::Reconstructed => None,
        });
        assert_eq!(first_event.as_deref(), Some(first_label.as_str()));
    }

    #[test]
    fn new_auto_fits_large_documents() {
        use mrtweb_docmodel::gen::SyntheticDocSpec;
        // A ~10 KiB document at 16-byte packets would need ~640 raw
        // packets; new_auto must grow the packet size until N ≤ 256.
        let doc = SyntheticDocSpec::default().generate(3).document;
        let pipeline = ScPipeline::default();
        let idx = pipeline.run(&doc);
        let sc = StructuralCharacteristic::from_index(&idx, None);
        let srv = LiveServer::new_auto(&doc, &sc, Lod::Paragraph, Measure::Ic, 16, 1.5).unwrap();
        assert!(srv.header().n <= 256, "N = {}", srv.header().n);
        assert!(
            srv.header().packet_size >= 64,
            "packet size {}",
            srv.header().packet_size
        );
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 0.2,
                seed: 8,
                ..Default::default()
            },
        );
        assert!(report.completed);
    }

    #[test]
    fn out_of_range_frame_requests_are_typed_errors() {
        let srv = server(Lod::Paragraph, 1.5);
        let n = srv.header().n;
        assert!(srv.frame_bytes(n).is_none());
        assert!(srv.try_frame(n).is_none());
        match srv.frame_checked(n) {
            Err(TransportError::FrameOutOfRange { index, n: reported }) => {
                assert_eq!(index, n);
                assert_eq!(reported, n);
            }
            other => panic!("expected FrameOutOfRange, got {other:?}"),
        }
        assert_eq!(srv.frame_checked(0).unwrap(), srv.frame_bytes(0).unwrap());
    }

    #[test]
    fn not_held_frames_are_distinct_from_out_of_range() {
        // A from_cooked server with a trimmed parity packet — the shape
        // an edge cache serves after budget pressure. The hole must be
        // a skippable FrameNotHeld, not the peer-violation error.
        let (doc, sc) = fixture();
        let (plan, payload) = plan_document(&doc, &sc, Lod::Paragraph, Measure::Qic);
        let packet_size = 32;
        let m = plan.raw_packets(packet_size);
        let n = ((m as f64 * 1.5).round() as usize).max(m);
        let codec = Codec::shared(m, n, packet_size).unwrap();
        let mut cooked = Vec::new();
        encode_into_parallel(&codec, &payload, &mut cooked, default_threads());
        let mut packets: Vec<Option<Vec<u8>>> = cooked
            .chunks_exact(packet_size)
            .map(|p| Some(p.to_vec()))
            .collect();
        packets[n - 1] = None;
        let header = DocumentHeader {
            doc_len: payload.len(),
            m,
            n,
            packet_size,
            plan,
        };
        let srv = LiveServer::from_cooked(header, packets).unwrap();
        assert!(matches!(
            srv.frame_checked(n - 1),
            Err(TransportError::FrameNotHeld { index }) if index == n - 1
        ));
        assert!(matches!(
            srv.frame_checked(n),
            Err(TransportError::FrameOutOfRange { .. })
        ));
        assert!(srv.frame_checked(0).is_ok());
    }

    #[test]
    fn hopeless_channel_gives_up_at_budget() {
        let srv = server(Lod::Document, 1.0);
        let report = try_run(
            srv,
            &TransferConfig {
                alpha: 1.0,
                max_rounds: 3,
                ..Default::default()
            },
        );
        assert!(!report.completed);
        assert_eq!(report.rounds, 3);
        assert!(report.payload.is_empty());
    }
}
