//! Client-side packet bookkeeping.
//!
//! [`ReceiverState`] tracks which cooked packets arrived intact, how
//! much information content the intact clear-text prefix carries, and
//! whether enough distinct packets (`M`) exist for full reconstruction.
//! It is the protocol brain shared by the fast simulation path and the
//! live byte-level prototype.

use serde::{Deserialize, Serialize};

/// Snapshot of a download in progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiverState {
    /// Raw packets `M` needed for reconstruction.
    m: usize,
    /// Cooked packets `N` the server will send per full round.
    n: usize,
    /// Which cooked packets have been received intact (deduplicated).
    intact: Vec<bool>,
    /// Number of `true` entries in `intact`.
    intact_count: usize,
    /// Content carried by each raw packet (length `M`); clear-text
    /// cooked packet `i < M` carries `packet_contents[i]`.
    packet_contents: Vec<f64>,
    /// Content accrued from intact clear-text packets.
    clear_content: f64,
    /// Packets observed in this round (intact or not).
    observed: u64,
    /// Corrupted packets observed (for EWMA feedback).
    corrupted: u64,
}

impl ReceiverState {
    /// Creates the state for an `(M, N)` transmission whose clear-text
    /// packets carry `packet_contents`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < M ≤ N` and `packet_contents.len() == M`.
    pub fn new(m: usize, n: usize, packet_contents: Vec<f64>) -> Self {
        assert!(m > 0 && m <= n, "need 0 < M <= N (got M={m}, N={n})");
        assert_eq!(
            packet_contents.len(),
            m,
            "need one content entry per raw packet"
        );
        ReceiverState {
            m,
            n,
            intact: vec![false; n],
            intact_count: 0,
            packet_contents,
            clear_content: 0.0,
            observed: 0,
            corrupted: 0,
        }
    }

    /// Raw packet count `M`.
    pub fn raw_packets(&self) -> usize {
        self.m
    }

    /// Cooked packet count `N`.
    pub fn cooked_packets(&self) -> usize {
        self.n
    }

    /// Records the arrival of cooked packet `index`.
    ///
    /// Corrupted packets are discarded; duplicate intact packets are
    /// counted once (retransmission rounds resend indices).
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ N`.
    pub fn on_packet(&mut self, index: usize, corrupted: bool) {
        assert!(
            index < self.n,
            "cooked index {index} out of range (N={})",
            self.n
        );
        self.observed += 1;
        if corrupted {
            self.corrupted += 1;
            return;
        }
        if self.intact[index] {
            return;
        }
        self.intact[index] = true;
        self.intact_count += 1;
        if index < self.m {
            self.clear_content += self.packet_contents[index];
        }
    }

    /// Whether `M` distinct intact packets are available — the whole
    /// document can be reconstructed.
    pub fn is_complete(&self) -> bool {
        self.intact_count >= self.m
    }

    /// Distinct intact packets so far.
    pub fn intact_count(&self) -> usize {
        self.intact_count
    }

    /// Whether cooked packet `index` arrived intact.
    pub fn has(&self, index: usize) -> bool {
        self.intact.get(index).copied().unwrap_or(false)
    }

    /// The information content available to the user right now: 1.0
    /// after reconstruction, otherwise the sum over intact clear-text
    /// packets.
    pub fn content(&self) -> f64 {
        if self.is_complete() {
            1.0
        } else {
            self.clear_content
        }
    }

    /// Cooked packet indices not yet held intact — what a Caching
    /// client asks the server to retransmit.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| !self.intact[i]).collect()
    }

    /// The `M` cheapest missing-packet requests: clear-text packets the
    /// client still lacks plus enough redundancy to reach `M`.
    ///
    /// Any `M − intact_count` distinct missing packets suffice; this
    /// returns the lowest indices first so clear text is preferred.
    pub fn needed(&self) -> Vec<usize> {
        let deficit = self.m.saturating_sub(self.intact_count);
        self.missing().into_iter().take(deficit).collect()
    }

    /// Resets for a from-scratch reload (NoCaching): all packet state is
    /// discarded; cumulative observation counters survive for
    /// statistics.
    pub fn reset_packets(&mut self) {
        self.intact.iter_mut().for_each(|b| *b = false);
        self.intact_count = 0;
        self.clear_content = 0.0;
    }

    /// Packets observed so far (including duplicates and corrupted).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Corrupted packets observed so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Observed corruption fraction (0 when nothing observed).
    pub fn observed_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.corrupted as f64 / self.observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(m: usize, n: usize) -> ReceiverState {
        ReceiverState::new(m, n, vec![1.0 / m as f64; m])
    }

    #[test]
    fn completes_after_m_distinct_intact() {
        let mut r = uniform(3, 5);
        r.on_packet(4, false);
        r.on_packet(4, false); // duplicate
        r.on_packet(0, false);
        assert!(!r.is_complete());
        r.on_packet(2, false);
        assert!(r.is_complete());
        assert_eq!(r.intact_count(), 3);
    }

    #[test]
    fn corrupted_packets_are_discarded() {
        let mut r = uniform(2, 4);
        r.on_packet(0, true);
        r.on_packet(1, true);
        assert_eq!(r.intact_count(), 0);
        assert_eq!(r.corrupted(), 2);
        assert_eq!(r.observed(), 2);
        assert_eq!(r.observed_rate(), 1.0);
    }

    #[test]
    fn content_accrues_from_clear_text_only() {
        let mut r = ReceiverState::new(3, 5, vec![0.6, 0.3, 0.1]);
        r.on_packet(3, false); // redundancy: no direct content
        assert_eq!(r.content(), 0.0);
        r.on_packet(0, false);
        assert!(
            (r.content() - 0.6).abs() < 1e-12,
            "clear packet contributes its content"
        );
        // Completing (3 distinct) jumps content to 1.0.
        r.on_packet(4, false);
        assert!(r.is_complete());
        assert_eq!(r.content(), 1.0);
    }

    #[test]
    fn content_is_one_after_reconstruction_via_redundancy() {
        let mut r = ReceiverState::new(2, 4, vec![0.5, 0.5]);
        r.on_packet(2, false);
        r.on_packet(3, false);
        assert!(r.is_complete());
        assert_eq!(r.content(), 1.0);
    }

    #[test]
    fn missing_and_needed() {
        let mut r = uniform(3, 6);
        r.on_packet(1, false);
        r.on_packet(5, false);
        assert_eq!(r.missing(), vec![0, 2, 3, 4]);
        assert_eq!(r.needed(), vec![0]); // one more packet suffices
        r.on_packet(0, false);
        assert!(r.needed().is_empty());
    }

    #[test]
    fn reset_packets_keeps_statistics() {
        let mut r = uniform(2, 3);
        r.on_packet(0, false);
        r.on_packet(1, true);
        r.reset_packets();
        assert_eq!(r.intact_count(), 0);
        assert_eq!(r.content(), 0.0);
        assert_eq!(r.observed(), 2);
        assert_eq!(r.corrupted(), 1);
        assert!(!r.has(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        uniform(2, 3).on_packet(3, false);
    }

    #[test]
    #[should_panic(expected = "one content entry per raw packet")]
    fn wrong_content_length_panics() {
        let _ = ReceiverState::new(3, 4, vec![0.5, 0.5]);
    }
}
