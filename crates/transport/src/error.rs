//! Typed errors for the live transport.
//!
//! The fault-injection harness drives [`crate::live::run_transfer`]
//! through deliberately hostile schedules; failure paths that were
//! acceptable panics under benign unit tests (a malformed header, a
//! poisoned server thread) become recoverable, reportable errors here.

use std::fmt;

/// Errors surfaced by the live transfer machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The erasure codec rejected the transmission header (inconsistent
    /// `M`/`N`/packet-size) or failed to decode.
    Codec(mrtweb_erasure::Error),
    /// The server thread panicked mid-transfer; the transfer state is
    /// unrecoverable.
    ServerPanicked,
    /// A peer requested a cooked-packet index outside `0..N` — a
    /// protocol violation (or an index mangled in flight) that servers
    /// report instead of panicking.
    FrameOutOfRange {
        /// The requested index.
        index: usize,
        /// The transmission's cooked-packet count `N`.
        n: usize,
    },
    /// A valid index `0..N` whose packet this server does not hold —
    /// an edge cache trimmed the parity or the at-rest record rotted.
    /// Serving routes skip the sequence (the client reconstructs from
    /// any `M` of the rest); it is not a peer violation.
    FrameNotHeld {
        /// The requested index.
        index: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(e) => write!(f, "erasure codec error: {e}"),
            Error::ServerPanicked => write!(f, "server thread panicked mid-transfer"),
            Error::FrameOutOfRange { index, n } => {
                write!(f, "requested frame {index} out of range (N = {n})")
            }
            Error::FrameNotHeld { index } => {
                write!(f, "frame {index} not held by this server")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Codec(e) => Some(e),
            Error::ServerPanicked | Error::FrameOutOfRange { .. } | Error::FrameNotHeld { .. } => {
                None
            }
        }
    }
}

impl From<mrtweb_erasure::Error> for Error {
    fn from(e: mrtweb_erasure::Error) -> Self {
        Error::Codec(e)
    }
}
