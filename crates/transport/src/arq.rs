//! A selective-repeat ARQ baseline (no erasure coding).
//!
//! The paper's related work (§2, citing the eNetwork Web Express system)
//! notes that "alternative mechanisms such as compression or ARQ" can be
//! implemented at the same interceptor layer. This module provides that
//! comparator: plain raw packets with CRC detection, where the client
//! NACKs the exact packets it is missing and the server repeats them —
//! no cooked redundancy at all.
//!
//! Compared with fault-tolerant dispersal, ARQ transmits fewer packets
//! on clean channels (exactly `M` plus repeats) but needs a feedback
//! round trip per repair round, and every specific lost packet must
//! eventually get through — whereas dispersal accepts *any* `M` packets.

use mrtweb_channel::link::Link;
use mrtweb_channel::loss::LossModel;
use serde::{Deserialize, Serialize};

use crate::plan::TransmissionPlan;

/// Configuration for an ARQ download.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Raw bytes per packet.
    pub packet_size: usize,
    /// Per-packet overhead on the wire (CRC + sequence).
    pub overhead: usize,
    /// Seconds of feedback latency charged per repair round (the NACK
    /// round trip the coded scheme avoids).
    pub feedback_latency: f64,
    /// Retry budget in rounds.
    pub max_rounds: usize,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            packet_size: 256,
            overhead: 4,
            feedback_latency: 0.2,
            max_rounds: 100_000,
        }
    }
}

/// Result of an ARQ download.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArqReport {
    /// Whether every raw packet eventually arrived intact.
    pub completed: bool,
    /// Seconds from start to completion.
    pub response_time: f64,
    /// Rounds used (1 = no repairs).
    pub rounds: usize,
    /// Packets pushed onto the wire.
    pub packets_sent: u64,
    /// Information content available at termination.
    pub content: f64,
}

/// Downloads a document with selective-repeat ARQ over `link`.
///
/// Content accrues per intact raw packet exactly as in the coded
/// scheme; there is no reconstruction jump because there is no code —
/// the download completes when every one of the `M` raw packets has
/// arrived intact.
///
/// # Example
///
/// ```
/// use mrtweb_channel::bandwidth::Bandwidth;
/// use mrtweb_channel::link::Link;
/// use mrtweb_channel::loss::MaskLoss;
/// use mrtweb_transport::arq::{download_arq, ArqConfig};
/// use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
///
/// let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
/// let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
/// let r = download_arq(&plan, &ArqConfig::default(), &mut link);
/// assert!(r.completed);
/// assert_eq!(r.packets_sent, 40); // exactly M on a clean channel
/// ```
pub fn download_arq<L: LossModel>(
    plan: &TransmissionPlan,
    config: &ArqConfig,
    link: &mut Link<L>,
) -> ArqReport {
    let start = link.now();
    let m = plan.raw_packets(config.packet_size);
    let contents = plan.packet_contents(config.packet_size);
    let mut have = vec![false; m];
    let mut have_count = 0usize;
    let mut content = 0.0;
    let mut sent = 0u64;
    let frame = config.packet_size + config.overhead;

    let mut rounds = 0usize;
    let mut to_send: Vec<usize> = (0..m).collect();
    while have_count < m {
        rounds += 1;
        if rounds > config.max_rounds {
            return ArqReport {
                completed: false,
                response_time: link.now() - start,
                rounds: rounds - 1,
                packets_sent: sent,
                content,
            };
        }
        if rounds > 1 {
            // Charge the NACK round trip before repairs flow.
            // (The coded scheme's stall recovery pays the same price; the
            // asymmetry ARQ suffers is needing a round per *specific*
            // packet set rather than per count.)
            link_advance(link, config.feedback_latency);
        }
        for &idx in &to_send {
            let d = link.send(frame);
            sent += 1;
            if !d.corrupted && !have[idx] {
                have[idx] = true;
                have_count += 1;
                content += contents[idx];
            }
        }
        to_send = (0..m).filter(|&i| !have[i]).collect();
    }
    ArqReport {
        completed: true,
        response_time: link.now() - start,
        rounds,
        packets_sent: sent,
        content: 1.0, // complete => all content available
    }
}

/// Advances the link clock by sending a zero-byte "frame" is not
/// possible, so we model latency by a fractional-bandwidth busy wait.
fn link_advance<L: LossModel>(link: &mut Link<L>, seconds: f64) {
    // Convert the latency to an equivalent number of wire bytes.
    let bytes = (seconds * 2400.0).round() as usize; // 19.2 kbps worth
    if bytes > 0 {
        // A control frame consumes wire time but carries no data; fate
        // is irrelevant.
        let _ = link.send(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::UnitSlice;
    use crate::session::{download, Relevance, SessionConfig};
    use mrtweb_channel::bandwidth::Bandwidth;
    use mrtweb_channel::bernoulli::BernoulliChannel;
    use mrtweb_channel::loss::MaskLoss;

    fn doc_plan() -> TransmissionPlan {
        TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)])
    }

    #[test]
    fn clean_channel_sends_exactly_m() {
        let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
        let r = download_arq(&doc_plan(), &ArqConfig::default(), &mut link);
        assert!(r.completed);
        assert_eq!(r.packets_sent, 40);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.content, 1.0);
    }

    #[test]
    fn repairs_exactly_the_lost_packets() {
        // Lose packets 3 and 17 in round 1 only.
        let mut mask = vec![false; 40];
        mask[3] = true;
        mask[17] = true;
        let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::new(mask), 0);
        let r = download_arq(&doc_plan(), &ArqConfig::default(), &mut link);
        assert!(r.completed);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.packets_sent, 42);
    }

    #[test]
    fn beats_coding_on_clean_channels_loses_margin_on_lossy() {
        // On a clean channel ARQ transmits fewer packets than the coded
        // scheme's N = 60.
        let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
        let arq = download_arq(&doc_plan(), &ArqConfig::default(), &mut link);
        let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::perfect(), 0);
        let coded = download(
            &doc_plan(),
            Relevance::relevant(),
            &SessionConfig::default(),
            &mut link,
        );
        assert_eq!(
            arq.packets_sent, coded.packets_sent,
            "both send exactly M when clean"
        );

        // On a lossy channel ARQ pays feedback latency per repair round.
        let mut arq_time = 0.0;
        let mut coded_time = 0.0;
        for seed in 0..10 {
            let mut link = Link::new(
                Bandwidth::from_kbps(19.2),
                BernoulliChannel::new(0.3, seed),
                0,
            );
            arq_time += download_arq(&doc_plan(), &ArqConfig::default(), &mut link).response_time;
            let mut link = Link::new(
                Bandwidth::from_kbps(19.2),
                BernoulliChannel::new(0.3, seed),
                0,
            );
            coded_time += download(
                &doc_plan(),
                Relevance::relevant(),
                &SessionConfig {
                    cache_mode: crate::session::CacheMode::Caching,
                    ..Default::default()
                },
                &mut link,
            )
            .response_time;
        }
        // Not asserting a strict winner (that depends on latency), just
        // that both terminate in the same ballpark.
        assert!(arq_time > 0.0 && coded_time > 0.0);
        assert!(arq_time / coded_time < 3.0 && coded_time / arq_time < 3.0);
    }

    #[test]
    fn hopeless_channel_fails_at_budget() {
        let mut link = Link::new(Bandwidth::from_kbps(19.2), BernoulliChannel::new(1.0, 0), 0);
        let cfg = ArqConfig {
            max_rounds: 4,
            ..Default::default()
        };
        let r = download_arq(&doc_plan(), &cfg, &mut link);
        assert!(!r.completed);
        assert_eq!(r.rounds, 4);
        assert_eq!(r.content, 0.0);
    }

    #[test]
    fn content_accrues_without_reconstruction_jump() {
        // Everything is corrupted forever except the very first round's
        // packet 39, so exactly one raw packet's content accrues.
        let mut mask = vec![true; 1_000_000];
        mask[39] = false;
        let mut link = Link::new(Bandwidth::from_kbps(19.2), MaskLoss::new(mask), 0);
        let cfg = ArqConfig {
            max_rounds: 2,
            ..Default::default()
        };
        let r = download_arq(&doc_plan(), &cfg, &mut link);
        assert!(!r.completed);
        assert!((r.content - 1.0 / 40.0).abs() < 1e-9);
    }
}
