//! The fault-tolerant multi-resolution transmission protocol.
//!
//! Implements §4.2 of Leong et al. (ICDCS 2000). A document is
//! partitioned at a chosen LOD, its units permuted in descending
//! (query-based) information content, the permuted byte stream split
//! into `M` raw packets and dispersed into `N = ⌈γM⌉` cooked packets
//! (clear-text prefix first), and the stream pushed over the lossy
//! FIFO channel. The client discards corrupted packets, accrues
//! information content progressively from intact clear-text packets,
//! reconstructs once any `M` distinct intact cooked packets arrive, and
//! on a *stalled* download either reloads from scratch (**NoCaching**)
//! or keeps its intact packets and asks only for what is missing
//! (**Caching**).
//!
//! Modules:
//!
//! * [`plan`] — transmission plans: unit slices, content-descending
//!   permutation, packet→content mapping;
//! * [`receiver`] — the client-side packet bookkeeping state machine;
//! * [`session`] — a complete download over a simulated lossy link,
//!   with relevance-based early termination and retransmission rounds;
//! * [`adaptive`] — EWMA-driven adaptive redundancy (§4.2's suggestion);
//! * [`prefetch`] — IC-ranked idle-bandwidth prefetching (§6 direction);
//! * [`live`] — a threaded client/server prototype exchanging real
//!   CRC-framed bytes over a corrupting link (the Rust analogue of the
//!   paper's Figure 1 CORBA prototype);
//! * [`broadcast`] — carousel delivery over a shared medium: the
//!   stored cooked records cycle on air verbatim (one encode at store
//!   time, unbounded listeners), with interleaved air-index frames and
//!   a tune-in-anywhere listener (§6's broadcast direction).

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod arq;
pub mod broadcast;
pub mod compress;
pub mod error;
pub mod intuition;
pub mod live;
pub mod plan;
pub mod prefetch;
pub mod receiver;
pub mod session;
