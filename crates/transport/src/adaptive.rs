//! Adaptive redundancy.
//!
//! "To balance the amount of redundancy with successful transmission
//! probability, the value of γ could be defined as an adaptive function
//! of the observed summarized value of α, using perhaps a kind of EWMA
//! measure" (§4.2). [`AdaptiveRedundancy`] closes that loop: the client
//! feeds per-packet outcomes into an EWMA estimate of α, and the server
//! plans each document's `N` from the current estimate and the target
//! success probability.

use mrtweb_channel::ewma::EwmaEstimator;
use mrtweb_erasure::redundancy::{min_cooked_packets, Plan};
use mrtweb_erasure::Error;
use serde::{Deserialize, Serialize};

/// An EWMA-driven redundancy controller.
///
/// # Example
///
/// ```
/// use mrtweb_transport::adaptive::AdaptiveRedundancy;
///
/// # fn main() -> Result<(), mrtweb_erasure::Error> {
/// let mut ctl = AdaptiveRedundancy::new(0.95, 0.05, 0.1);
/// let calm = ctl.plan(40)?.cooked;
/// // The channel degrades badly; the controller reacts.
/// for _ in 0..500 { ctl.observe(true); }
/// let stormy = ctl.plan(40)?.cooked;
/// assert!(stormy > calm);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRedundancy {
    estimator: EwmaEstimator,
    target_success: f64,
}

impl AdaptiveRedundancy {
    /// Creates a controller targeting success probability
    /// `target_success`, with EWMA gain `gain` and initial α estimate
    /// `initial_alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `target_success ∈ (0, 1)` (and per
    /// [`EwmaEstimator::new`] for the other arguments).
    pub fn new(target_success: f64, gain: f64, initial_alpha: f64) -> Self {
        assert!(
            target_success > 0.0 && target_success < 1.0,
            "target success probability must be in (0, 1)"
        );
        AdaptiveRedundancy {
            estimator: EwmaEstimator::new(gain, initial_alpha),
            target_success,
        }
    }

    /// Records one packet outcome (`true` = corrupted).
    pub fn observe(&mut self, corrupted: bool) {
        self.estimator.observe(corrupted);
    }

    /// Records a round summary: `corrupted` of `total` packets.
    ///
    /// # Panics
    ///
    /// Panics if `corrupted > total`.
    pub fn observe_round(&mut self, corrupted: usize, total: usize) {
        self.estimator.observe_batch(corrupted, total);
    }

    /// The current α estimate.
    pub fn estimated_alpha(&self) -> f64 {
        self.estimator.estimate()
    }

    /// The success probability the controller plans for.
    pub fn target_success(&self) -> f64 {
        self.target_success
    }

    /// Plans the minimal code for `m` raw packets at the current α
    /// estimate.
    ///
    /// The estimate is clamped to `[0, 0.95]` before planning: an EWMA
    /// that momentarily saturates at 1.0 must not demand infinite
    /// redundancy.
    ///
    /// # Errors
    ///
    /// Propagates [`min_cooked_packets`] errors (none for clamped
    /// inputs).
    pub fn plan(&self, m: usize) -> Result<Plan, Error> {
        let alpha = self.estimated_alpha().clamp(0.0, 0.95);
        let cooked = min_cooked_packets(m, alpha, self.target_success)?;
        Ok(Plan {
            raw: m,
            cooked,
            alpha,
            success: self.target_success,
        })
    }

    /// The redundancy ratio γ the controller would use right now.
    ///
    /// # Errors
    ///
    /// Propagates [`AdaptiveRedundancy::plan`] errors.
    pub fn gamma(&self, m: usize) -> Result<f64, Error> {
        Ok(self.plan(m)?.ratio())
    }
}

impl Default for AdaptiveRedundancy {
    /// Target S = 95%, gain 0.05, initial α = 0.1 (Table 2 defaults).
    fn default() -> Self {
        AdaptiveRedundancy::new(0.95, 0.05, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_grows_with_observed_corruption() {
        let mut ctl = AdaptiveRedundancy::default();
        let before = ctl.plan(40).unwrap().cooked;
        for _ in 0..1000 {
            ctl.observe(true);
        }
        let after = ctl.plan(40).unwrap().cooked;
        assert!(after > before, "cooked {after} should exceed {before}");
    }

    #[test]
    fn plan_shrinks_on_clean_channel() {
        let mut ctl = AdaptiveRedundancy::default();
        for _ in 0..1000 {
            ctl.observe(false);
        }
        let plan = ctl.plan(40).unwrap();
        assert_eq!(plan.cooked, 40, "clean channel needs no redundancy");
        assert!(ctl.estimated_alpha() < 1e-6);
    }

    #[test]
    fn saturated_estimator_is_clamped() {
        let mut ctl = AdaptiveRedundancy::new(0.95, 1.0, 0.0);
        ctl.observe(true); // estimate jumps to 1.0
        assert_eq!(ctl.estimated_alpha(), 1.0);
        // Planning still terminates thanks to the clamp.
        let plan = ctl.plan(10).unwrap();
        assert!(plan.cooked >= 10);
    }

    #[test]
    fn converges_near_oracle_plan() {
        let mut ctl = AdaptiveRedundancy::new(0.95, 0.02, 0.5);
        // Deterministic 30% corruption stream.
        for i in 0..5000 {
            ctl.observe(i % 10 < 3);
        }
        let adaptive = ctl.plan(50).unwrap().cooked;
        let oracle = min_cooked_packets(50, 0.3, 0.95).unwrap();
        let diff = adaptive.abs_diff(oracle);
        assert!(diff <= 3, "adaptive N={adaptive} vs oracle N={oracle}");
    }

    #[test]
    fn round_observation_moves_estimate() {
        let mut ctl = AdaptiveRedundancy::new(0.95, 0.1, 0.0);
        ctl.observe_round(30, 60);
        assert!(ctl.estimated_alpha() > 0.2);
    }

    #[test]
    #[should_panic(expected = "target success")]
    fn invalid_target_panics() {
        let _ = AdaptiveRedundancy::new(1.0, 0.1, 0.1);
    }
}
