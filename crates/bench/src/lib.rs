//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation (printed before measurement) and then measures the
//! computational kernel behind it with Criterion. Run
//! `cargo bench -p mrtweb-bench` for everything, or
//! `cargo bench -p mrtweb-bench --bench fig4_exp1` for one artifact.

#![forbid(unsafe_code)]

use mrtweb_sim::experiments::Scale;

/// The workload used when a bench regenerates figure data: large enough
/// to show the paper's shapes, small enough for `cargo bench` runs.
/// Paper-scale data comes from `cargo run -p mrtweb-sim --bin figures --
/// all --paper`.
pub fn bench_scale() -> Scale {
    Scale {
        docs: 40,
        reps: 3,
        max_rounds: 80,
    }
}

/// A tiny scale for the measured kernel itself.
pub fn kernel_scale() -> Scale {
    Scale {
        docs: 10,
        reps: 1,
        max_rounds: 40,
    }
}
