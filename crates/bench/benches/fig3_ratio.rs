//! Figure 3: redundancy ratio γ versus failure probability α.
//!
//! Prints the regenerated figure, then measures ratio planning,
//! including the adaptive (EWMA-driven) variant of §4.2.

use criterion::Criterion;
use std::hint::black_box;

use mrtweb_erasure::redundancy::redundancy_ratio;
use mrtweb_sim::figures::render_figure3;
use mrtweb_transport::adaptive::AdaptiveRedundancy;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.bench_function("ratio_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in [10usize, 50, 100] {
                for i in 1..=5 {
                    acc += redundancy_ratio(m, i as f64 / 10.0, black_box(0.95)).unwrap();
                }
            }
            acc
        });
    });
    g.bench_function("adaptive_observe_and_plan", |b| {
        let mut ctl = AdaptiveRedundancy::default();
        b.iter(|| {
            ctl.observe(black_box(true));
            ctl.observe(black_box(false));
            ctl.plan(black_box(40)).unwrap().cooked
        });
    });
    g.finish();
}

fn main() {
    println!("{}", render_figure3());
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
