//! Codec throughput at the paper's parameters: M = 40, N = 60,
//! 256-byte packets (a 10240-byte document).

use criterion::{BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mrtweb_erasure::crc::{crc16, crc32};
use mrtweb_erasure::ida::Codec;
use mrtweb_erasure::packet::Frame;

fn benches(c: &mut Criterion) {
    let codec = Codec::new(40, 60, 256).unwrap();
    let data: Vec<u8> = (0..10240).map(|i| (i * 131 + 7) as u8).collect();
    let cooked = codec.encode(&data);

    let mut g = c.benchmark_group("erasure_codec");
    g.throughput(Throughput::Bytes(10240));
    g.bench_function("encode_40_60", |b| b.iter(|| codec.encode(black_box(&data))));

    // Decode from the clear-text prefix (no inversion needed).
    let clear: Vec<(usize, Vec<u8>)> = cooked.iter().take(40).cloned().enumerate().collect();
    g.bench_function("decode_all_clear", |b| {
        b.iter(|| codec.decode(black_box(&clear), 10240).unwrap())
    });

    // Decode from a worst-case survivor set (20 clear lost).
    let mixed: Vec<(usize, Vec<u8>)> =
        (20..60).map(|i| (i, cooked[i].clone())).collect();
    g.bench_function("decode_20_erasures", |b| {
        b.iter(|| codec.decode(black_box(&mixed), 10240).unwrap())
    });

    for m in [10usize, 40, 100] {
        g.bench_with_input(BenchmarkId::new("codec_setup", m), &m, |b, &m| {
            b.iter(|| Codec::new(black_box(m), black_box(m + m / 2), 256).unwrap())
        });
    }

    g.throughput(Throughput::Bytes(260));
    let frame = Frame::new(7, vec![0xA5; 256]);
    let wire = frame.to_wire();
    g.bench_function("frame_roundtrip", |b| {
        b.iter(|| {
            let w = frame.to_wire();
            Frame::from_wire(black_box(&w), 256).unwrap()
        })
    });
    g.bench_function("crc16_frame", |b| b.iter(|| crc16(black_box(&wire))));
    g.bench_function("crc32_frame", |b| b.iter(|| crc32(black_box(&wire))));
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
