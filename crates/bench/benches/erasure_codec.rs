//! Codec throughput at the paper's parameters (M = 40, N = 60,
//! 256-byte packets — a 10240-byte document) plus a packet-size sweep
//! from 256 B to 64 KiB.
//!
//! Besides the live kernels, the harness times the *seed scalar path*
//! (per-row allocation + log/exp `mul_acc_scalar`, exactly the shape of
//! the pre-kernel `encode_packets`) so every run re-measures the
//! speedup instead of trusting a number written down once. All
//! measurements are exported to `BENCH_erasure.json` at the repository
//! root so the perf trajectory is tracked across PRs.

use criterion::{BenchmarkId, Criterion, Throughput};
use std::fmt::Write as _;
use std::hint::black_box;

use mrtweb_erasure::crc::{crc16, crc16_reference, crc32, crc32_reference};
use mrtweb_erasure::gf256::mul_acc_scalar;
use mrtweb_erasure::ida::Codec;
use mrtweb_erasure::packet::Frame;
use mrtweb_erasure::par::{default_threads, encode_into_parallel};

/// The seed's encode shape: clone the clear prefix, allocate one row
/// per redundancy packet, accumulate with the scalar log/exp multiply.
fn encode_scalar_baseline(codec: &Codec, raws: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut cooked = raws.to_vec();
    for index in codec.raw_packets()..codec.cooked_packets() {
        let coeffs = codec.coefficients(index);
        let mut row = vec![0u8; codec.packet_size()];
        for (raw, &c) in raws.iter().zip(coeffs) {
            mul_acc_scalar(&mut row, raw, c);
        }
        cooked.push(row);
    }
    cooked
}

/// The `codec_setup` M values. The fitted exponent below spans an
/// order of magnitude so constant setup overhead at M = 10 cannot
/// masquerade as good scaling.
const SETUP_SWEEP: [usize; 4] = [10, 40, 100, 200];

fn benches(c: &mut Criterion) {
    let codec = Codec::new(40, 60, 256).unwrap();
    let data: Vec<u8> = (0..10240).map(|i| (i * 131 + 7) as u8).collect();
    let raws = codec.split(&data);
    let cooked = codec.encode(&data);

    let mut g = c.benchmark_group("erasure_codec");
    g.throughput(Throughput::Bytes(10240));
    g.bench_function("encode_40_60_scalar_baseline", |b| {
        b.iter(|| encode_scalar_baseline(&codec, black_box(&raws)));
    });
    g.bench_function("encode_40_60", |b| {
        b.iter(|| codec.encode(black_box(&data)));
    });
    let mut buf = Vec::new();
    // Warm the buffer and code/data caches so the traced/untraced pair
    // below compares tracer cost, not first-touch effects.
    codec.encode_into(&data, &mut buf);
    g.bench_function("encode_into_40_60", |b| {
        b.iter(|| codec.encode_into(black_box(&data), &mut buf));
    });
    // Throughput with the tracer recording (one EncodeSpan per call
    // into the per-thread ring). The headline `trace_overhead_pct` is
    // computed separately by `measure_trace_overhead` with interleaved
    // batches; this record just keeps the traced throughput visible.
    mrtweb_obs::set_enabled(true);
    g.bench_function("encode_into_40_60_traced", |b| {
        b.iter(|| codec.encode_into(black_box(&data), &mut buf));
    });
    mrtweb_obs::set_enabled(false);
    let _ = mrtweb_obs::drain();
    let threads = default_threads();
    g.bench_function("encode_into_parallel_40_60", |b| {
        b.iter(|| encode_into_parallel(&codec, black_box(&data), &mut buf, threads));
    });

    // Decode from the clear-text prefix (no inversion needed).
    let clear: Vec<(usize, Vec<u8>)> = cooked.iter().take(40).cloned().enumerate().collect();
    g.bench_function("decode_all_clear", |b| {
        b.iter(|| codec.decode(black_box(&clear), 10240).unwrap());
    });

    // Decode from a worst-case survivor set (20 clear lost): once with
    // the shared inverse cache warm and once forcing a fresh inversion
    // each call, so the cache's contribution stays visible.
    let mixed: Vec<(usize, Vec<u8>)> = (20..60).map(|i| (i, cooked[i].clone())).collect();
    g.bench_function("decode_20_erasures", |b| {
        b.iter(|| codec.decode(black_box(&mixed), 10240).unwrap());
    });
    g.bench_function("decode_20_erasures_uncached", |b| {
        b.iter(|| codec.decode_uncached(black_box(&mixed), 10240).unwrap());
    });

    // Setup-cost sweep for the scaling-exponent fit. N = 1.5·M capped
    // at GF(2⁸)'s 256 cooked-packet ceiling (M = 200 → N = 256).
    for m in SETUP_SWEEP {
        g.bench_with_input(BenchmarkId::new("codec_setup", m), &m, |b, &m| {
            b.iter(|| Codec::new(black_box(m), black_box((m + m / 2).min(256)), 256).unwrap());
        });
    }

    // Packet-size sweep, 256 B → 64 KiB at the paper's M=40/N=60 shape:
    // encode via the buffer-reuse kernel, decode under 20 erasures.
    for ps in [256usize, 1024, 4096, 16384, 65536] {
        let sweep_codec = Codec::new(40, 60, ps).unwrap();
        let doc: Vec<u8> = (0..40 * ps).map(|i| (i * 89 + 3) as u8).collect();
        g.throughput(Throughput::Bytes(doc.len() as u64));
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::new("encode_sweep", ps), &ps, |b, _| {
            b.iter(|| sweep_codec.encode_into(black_box(&doc), &mut out));
        });
        let sweep_cooked = sweep_codec.encode(&doc);
        let survivors: Vec<(usize, Vec<u8>)> =
            (20..60).map(|i| (i, sweep_cooked[i].clone())).collect();
        g.bench_with_input(
            BenchmarkId::new("decode_sweep_20_erasures", ps),
            &ps,
            |b, _| {
                b.iter(|| {
                    sweep_codec
                        .decode(black_box(&survivors), doc.len())
                        .unwrap()
                });
            },
        );
    }

    g.throughput(Throughput::Bytes(260));
    let frame = Frame::new(7, vec![0xA5; 256]);
    let wire = frame.to_wire();
    g.bench_function("frame_roundtrip", |b| {
        b.iter(|| {
            let w = frame.to_wire();
            Frame::from_wire(black_box(&w), 256).unwrap()
        });
    });
    g.bench_function("crc16_frame", |b| b.iter(|| crc16(black_box(&wire))));
    g.bench_function("crc32_frame", |b| b.iter(|| crc32(black_box(&wire))));

    // Sliced CRC kernels vs the bit-at-a-time references on a buffer
    // large enough that table effects dominate.
    let big: Vec<u8> = (0..65536).map(|i| (i * 211 + 9) as u8).collect();
    g.throughput(Throughput::Bytes(big.len() as u64));
    g.bench_function("crc32_64k_sliced", |b| b.iter(|| crc32(black_box(&big))));
    g.bench_function("crc32_64k_bitwise", |b| {
        b.iter(|| crc32_reference(black_box(&big)));
    });
    g.bench_function("crc16_64k_sliced", |b| b.iter(|| crc16(black_box(&big))));
    g.bench_function("crc16_64k_bitwise", |b| {
        b.iter(|| crc16_reference(black_box(&big)));
    });
    g.finish();
}

/// Measures the tracer's cost on the encode hot path with interleaved
/// disabled/enabled batches, taking the minimum batch time for each
/// side so frequency ramps and scheduler interrupts cancel out (the
/// sequential criterion records above are ordering-biased: whichever
/// bench runs later sees a warmer CPU). Returns the relative overhead
/// in percent; negative values mean the difference is below noise.
fn measure_trace_overhead(codec: &Codec, data: &[u8]) -> f64 {
    const BATCH: usize = 64;
    const ROUNDS: usize = 48;
    let mut buf = Vec::new();
    codec.encode_into(data, &mut buf); // warm caches and the buffer
    let mut batch_ns = |enabled: bool| -> f64 {
        mrtweb_obs::set_enabled(enabled);
        let start = std::time::Instant::now();
        for _ in 0..BATCH {
            codec.encode_into(black_box(data), &mut buf);
        }
        start.elapsed().as_nanos() as f64 / BATCH as f64
    };
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_off = best_off.min(batch_ns(false));
        best_on = best_on.min(batch_ns(true));
    }
    mrtweb_obs::set_enabled(false);
    let _ = mrtweb_obs::drain();
    (best_on - best_off) / best_off * 100.0
}

/// Writes every recorded measurement (plus the headline speedups) as
/// JSON next to the workspace root, overwriting the previous run.
fn write_summary(c: &Criterion, trace_overhead_pct: f64) {
    fn find(c: &Criterion, name: &str) -> Option<f64> {
        c.records()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ns_per_iter)
    }
    let mut out = String::from("{\n  \"bench\": \"erasure_codec\",\n");
    let _ = writeln!(out, "  \"quick\": {},", c.is_quick());
    if let (Some(scalar), Some(fast)) = (
        find(c, "encode_40_60_scalar_baseline"),
        find(c, "encode_40_60"),
    ) {
        let _ = writeln!(
            out,
            "  \"encode_40_60_speedup_vs_scalar\": {:.2},",
            scalar / fast
        );
    }
    if let (Some(bitwise), Some(sliced)) =
        (find(c, "crc32_64k_bitwise"), find(c, "crc32_64k_sliced"))
    {
        let _ = writeln!(
            out,
            "  \"crc32_speedup_vs_bitwise\": {:.2},",
            bitwise / sliced
        );
    }
    let _ = writeln!(out, "  \"trace_overhead_pct\": {trace_overhead_pct:.2},");
    // Least-squares slope of log(setup ns) against log(M): the measured
    // scaling exponent of codec construction. The Cauchy path should
    // fit ≈ 2 (O(M·N) with N ∝ M); the old Gauss-Jordan path fit ≈ 3.
    let points: Vec<(f64, f64)> = SETUP_SWEEP
        .iter()
        .filter_map(|m| find(c, &format!("codec_setup/{m}")).map(|ns| (*m as f64, ns)))
        .collect();
    if points.len() >= 2 {
        let n = points.len() as f64;
        let (mut sx, mut sy) = (0.0, 0.0);
        for (m, ns) in &points {
            sx += m.ln();
            sy += ns.ln();
        }
        let (mx, my) = (sx / n, sy / n);
        let (mut cov, mut var) = (0.0, 0.0);
        for (m, ns) in &points {
            cov += (m.ln() - mx) * (ns.ln() - my);
            var += (m.ln() - mx) * (m.ln() - mx);
        }
        if var > 0.0 {
            let _ = writeln!(out, "  \"setup_scaling_exponent\": {:.3},", cov / var);
        }
    }
    if let (Some(cold), Some(warm)) = (
        find(c, "decode_20_erasures_uncached"),
        find(c, "decode_20_erasures"),
    ) {
        let _ = writeln!(
            out,
            "  \"decode_cold_over_warm_ratio\": {:.3},",
            cold / warm
        );
    }
    out.push_str("  \"results\": [\n");
    let records = c.records();
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}",
            r.name, r.ns_per_iter
        );
        if let Some(bytes) = r.bytes_per_iter {
            let _ = write!(out, ", \"bytes_per_iter\": {bytes}");
        }
        if let Some(mib) = r.mib_per_s {
            let _ = write!(out, ", \"mib_per_s\": {mib:.1}");
        }
        out.push_str(if i + 1 == records.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_erasure.json");
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
    let codec = Codec::new(40, 60, 256).unwrap();
    let data: Vec<u8> = (0..10240).map(|i| (i * 131 + 7) as u8).collect();
    let overhead = measure_trace_overhead(&codec, &data);
    eprintln!("trace overhead on encode_into(40,60,256): {overhead:.2}%");
    write_summary(&c, overhead);
}
