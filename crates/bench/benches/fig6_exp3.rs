//! Figure 6 (Experiment 3): the benefit of multi-resolution browsing at
//! each LOD for discarding irrelevant documents early.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_bench::{bench_scale, kernel_scale};
use mrtweb_docmodel::lod::Lod;
use mrtweb_sim::browsing::run_session;
use mrtweb_sim::experiments::experiment3;
use mrtweb_sim::figures::render_improvement;
use mrtweb_sim::params::Params;
use mrtweb_transport::session::CacheMode;

fn benches(c: &mut Criterion) {
    let scale = kernel_scale();
    let mut g = c.benchmark_group("fig6_exp3");
    for lod in [Lod::Document, Lod::Section, Lod::Subsection, Lod::Paragraph] {
        let params = Params {
            alpha: 0.1,
            cache_mode: CacheMode::Caching,
            irrelevant_fraction: 1.0,
            threshold: 0.2,
            docs_per_session: scale.docs,
            max_rounds: scale.max_rounds,
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("session_lod", lod.name()),
            &params,
            |b, p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    run_session(black_box(p), lod, seed)
                });
            },
        );
    }
    g.finish();
}

fn main() {
    eprintln!("regenerating Figure 6 at reduced scale (docs=40, reps=3)...");
    let pts = experiment3(&bench_scale(), 20000);
    println!("{}", render_improvement(&pts, "Figure 6"));
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
