//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * systematic clear-text prefix vs redundancy-only decoding;
//! * Caching vs NoCaching recovery at a fixed channel;
//! * i.i.d. (Bernoulli) vs bursty (Gilbert–Elliott) corruption;
//! * stemming on vs off in the SC pipeline;
//! * QIC product form vs MQIC sum form.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_bench::kernel_scale;
use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::gilbert::GilbertElliott;
use mrtweb_channel::link::Link;
use mrtweb_content::mqic::ModifiedQueryContent;
use mrtweb_content::qic::QueryContent;
use mrtweb_content::query::Query;
use mrtweb_docmodel::lod::Lod;
use mrtweb_erasure::ida::Codec;
use mrtweb_sim::browsing::run_session;
use mrtweb_sim::params::Params;
use mrtweb_sim::table1::paper_draft;
use mrtweb_textproc::pipeline::ScPipeline;
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
use mrtweb_transport::session::{download, CacheMode, Relevance, SessionConfig};

fn benches(c: &mut Criterion) {
    // --- systematic prefix vs redundancy-heavy decode -----------------
    // γ = 2 so that even losing all 40 clear packets leaves M survivors.
    let codec = Codec::new(40, 80, 256).unwrap();
    let data: Vec<u8> = (0..10240).map(|i| (i * 29 + 3) as u8).collect();
    let cooked = codec.encode(&data);
    let mut g = c.benchmark_group("ablation_systematic");
    for lost_clear in [0usize, 10, 20, 40] {
        let survivors: Vec<(usize, Vec<u8>)> = (lost_clear..(40 + lost_clear))
            .map(|i| (i, cooked[i].clone()))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("decode_lost_clear", lost_clear),
            &survivors,
            |b, s| b.iter(|| codec.decode(black_box(s), 10240).unwrap()),
        );
    }
    g.finish();

    // --- caching vs nocaching ------------------------------------------
    let scale = kernel_scale();
    let mut g = c.benchmark_group("ablation_caching");
    for (name, mode) in [
        ("nocaching", CacheMode::NoCaching),
        ("caching", CacheMode::Caching),
    ] {
        let params = Params {
            alpha: 0.3,
            cache_mode: mode,
            irrelevant_fraction: 0.0,
            docs_per_session: scale.docs,
            max_rounds: scale.max_rounds,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                run_session(black_box(&params), Lod::Document, seed)
            });
        });
    }
    g.finish();

    // --- iid vs bursty channel ------------------------------------------
    let mut g = c.benchmark_group("ablation_channel");
    let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", 10240, 1.0)]);
    let config = SessionConfig {
        cache_mode: CacheMode::Caching,
        ..Default::default()
    };
    g.bench_function("bernoulli_a0.2", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut link = Link::new(
                Bandwidth::from_kbps(19.2),
                mrtweb_channel::bernoulli::BernoulliChannel::new(0.2, seed),
                seed,
            );
            download(black_box(&plan), Relevance::relevant(), &config, &mut link)
        });
    });
    g.bench_function("gilbert_a0.2_burst8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut link = Link::new(
                Bandwidth::from_kbps(19.2),
                GilbertElliott::matched(0.2, 8.0, seed),
                seed,
            );
            download(black_box(&plan), Relevance::relevant(), &config, &mut link)
        });
    });
    g.finish();

    // --- stemming on/off --------------------------------------------------
    let doc = paper_draft();
    let mut g = c.benchmark_group("ablation_pipeline");
    g.bench_function("stemming_on", |b| {
        let p = ScPipeline::new().with_stemming(true);
        b.iter(|| p.run(black_box(&doc)));
    });
    g.bench_function("stemming_off", |b| {
        let p = ScPipeline::new().with_stemming(false);
        b.iter(|| p.run(black_box(&doc)));
    });
    g.finish();

    // --- QIC vs MQIC ------------------------------------------------------
    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let query = Query::parse("browsing mobile web", &pipeline);
    let mut g = c.benchmark_group("ablation_measures");
    g.bench_function("qic_product_form", |b| {
        b.iter(|| QueryContent::from_index(black_box(&index), &query));
    });
    g.bench_function("mqic_sum_form", |b| {
        b.iter(|| ModifiedQueryContent::from_index(black_box(&index), &query));
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
