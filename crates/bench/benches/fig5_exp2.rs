//! Figure 5 (Experiment 2): the effect of early termination — varying
//! the irrelevant fraction I and the relevance threshold F.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_bench::{bench_scale, kernel_scale};
use mrtweb_docmodel::lod::Lod;
use mrtweb_sim::browsing::run_session;
use mrtweb_sim::experiments::{experiment2_vary_f, experiment2_vary_i};
use mrtweb_sim::figures::render_figure5;
use mrtweb_sim::params::Params;
use mrtweb_transport::session::CacheMode;

fn benches(c: &mut Criterion) {
    let scale = kernel_scale();
    let mut g = c.benchmark_group("fig5_exp2");
    for f in [0.1, 0.5, 0.9] {
        let params = Params {
            alpha: 0.3,
            cache_mode: CacheMode::Caching,
            irrelevant_fraction: 1.0,
            threshold: f,
            docs_per_session: scale.docs,
            max_rounds: scale.max_rounds,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("session_threshold", f), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                run_session(black_box(p), Lod::Document, seed)
            });
        });
    }
    g.finish();
}

fn main() {
    eprintln!("regenerating Figure 5 at reduced scale (docs=40, reps=3)...");
    let scale = bench_scale();
    let vi = experiment2_vary_i(&scale, 20000);
    let vf = experiment2_vary_f(&scale, 20000);
    println!("{}", render_figure5(&vi, &vf));
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
