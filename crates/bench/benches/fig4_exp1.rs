//! Figure 4 (Experiment 1): Caching vs NoCaching across redundancy
//! ratios.
//!
//! Prints a reduced-scale regeneration of the figure, then measures the
//! browsing-session kernel at representative cells.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_bench::{bench_scale, kernel_scale};
use mrtweb_docmodel::lod::Lod;
use mrtweb_sim::browsing::run_session;
use mrtweb_sim::experiments::experiment1;
use mrtweb_sim::figures::render_figure4;
use mrtweb_sim::params::Params;
use mrtweb_transport::session::CacheMode;

fn benches(c: &mut Criterion) {
    let scale = kernel_scale();
    let mut g = c.benchmark_group("fig4_exp1");
    for (name, cache, alpha) in [
        ("nocaching_a0.1", CacheMode::NoCaching, 0.1),
        ("nocaching_a0.5", CacheMode::NoCaching, 0.5),
        ("caching_a0.1", CacheMode::Caching, 0.1),
        ("caching_a0.5", CacheMode::Caching, 0.5),
    ] {
        let params = Params {
            alpha,
            cache_mode: cache,
            irrelevant_fraction: 0.5,
            docs_per_session: scale.docs,
            max_rounds: scale.max_rounds,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("session", name), &params, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                run_session(black_box(p), Lod::Document, seed)
            });
        });
    }
    g.finish();
}

fn main() {
    eprintln!("regenerating Figure 4 at reduced scale (docs=40, reps=3)...");
    let pts = experiment1(&bench_scale(), 20000);
    println!("{}", render_figure4(&pts));
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
