//! Figure 7 (Experiment 4): the impact of the skew factor δ on
//! multi-resolution transmission performance.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_bench::{bench_scale, kernel_scale};
use mrtweb_docmodel::lod::Lod;
use mrtweb_sim::browsing::run_session;
use mrtweb_sim::experiments::experiment4;
use mrtweb_sim::figures::render_improvement;
use mrtweb_sim::params::Params;
use mrtweb_transport::session::CacheMode;

fn benches(c: &mut Criterion) {
    let scale = kernel_scale();
    let mut g = c.benchmark_group("fig7_exp4");
    for skew in [2.0, 3.0, 4.0, 5.0] {
        let params = Params {
            alpha: 0.1,
            skew,
            cache_mode: CacheMode::Caching,
            irrelevant_fraction: 1.0,
            threshold: 0.2,
            docs_per_session: scale.docs,
            max_rounds: scale.max_rounds,
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("session_skew", skew as u32),
            &params,
            |b, p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    run_session(black_box(p), Lod::Paragraph, seed)
                });
            },
        );
    }
    g.finish();
}

fn main() {
    eprintln!("regenerating Figure 7 at reduced scale (docs=40, reps=3)...");
    let pts = experiment4(&bench_scale(), 20000);
    println!("{}", render_improvement(&pts, "Figure 7"));
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
