//! Table 1: the structural-characteristic pipeline on the paper draft.
//!
//! Prints the regenerated Table 1, then measures the pipeline stages.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_content::query::Query;
use mrtweb_content::sc::StructuralCharacteristic;
use mrtweb_docmodel::document::Document;
use mrtweb_sim::table1::{paper_draft, render_table1, PAPER_DRAFT_XML, TABLE1_QUERY};
use mrtweb_textproc::pipeline::ScPipeline;

fn benches(c: &mut Criterion) {
    let doc = paper_draft();
    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let query = Query::parse(TABLE1_QUERY, &pipeline);

    let mut g = c.benchmark_group("table1");
    g.bench_function("xml_parse", |b| {
        b.iter(|| Document::parse_xml(black_box(PAPER_DRAFT_XML)).unwrap());
    });
    g.bench_function("sc_pipeline", |b| b.iter(|| pipeline.run(black_box(&doc))));
    g.bench_function("sc_build_with_query", |b| {
        b.iter(|| StructuralCharacteristic::from_index(black_box(&index), Some(&query)));
    });
    for q in [
        "mobile",
        "mobile web browsing",
        "mobile web browsing wireless cache energy",
    ] {
        g.bench_with_input(
            BenchmarkId::new("qic_query_words", q.split(' ').count()),
            &q,
            |b, q| {
                let query = Query::parse(q, &pipeline);
                b.iter(|| StructuralCharacteristic::from_index(black_box(&index), Some(&query)));
            },
        );
    }
    g.finish();
}

fn main() {
    println!("=== Table 1 (regenerated from the embedded draft) ===");
    println!("query = {{browsing, mobile, web}}\n{}", render_table1());
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
