//! Figure 2: cooked packets N versus raw packets M.
//!
//! Prints the regenerated figure, then measures the negative-binomial
//! planner.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

use mrtweb_erasure::redundancy::{min_cooked_packets, success_probability};
use mrtweb_sim::figures::render_figure2;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    for m in [10usize, 50, 100] {
        g.bench_with_input(BenchmarkId::new("min_cooked_packets", m), &m, |b, &m| {
            b.iter(|| min_cooked_packets(black_box(m), black_box(0.3), black_box(0.95)).unwrap());
        });
    }
    g.bench_function("full_grid_s95", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for alpha in [0.1, 0.2, 0.3, 0.4, 0.5] {
                for m in (10..=100).step_by(10) {
                    total += min_cooked_packets(m, alpha, 0.95).unwrap();
                }
            }
            total
        });
    });
    g.bench_function("success_probability_tail", |b| {
        b.iter(|| success_probability(black_box(100), black_box(250), black_box(0.5)).unwrap());
    });
    g.finish();
}

fn main() {
    println!("{}", render_figure2());
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
