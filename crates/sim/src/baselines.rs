//! Baseline comparisons: summary-first filtering and selective-repeat
//! ARQ versus fault-tolerant multi-resolution transmission.
//!
//! The paper motivates MRT against two families of alternatives it
//! surveys in §2: summarization-based filtering ("the whole document is
//! often not a refinement of the summary, thus consuming additional
//! bandwidth when a relevant document is later retrieved") and
//! interceptor-level mechanisms like ARQ. These drivers quantify both
//! comparisons under the paper's own workload model.

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::link::Link;
use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::arq::{download_arq, ArqConfig};
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
use mrtweb_transport::session::{download, Relevance, SessionConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::model::SimDocument;
use crate::params::Params;
use crate::stats::Summary;

/// Which transfer strategy a baseline session uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Fault-tolerant multi-resolution transmission at the given LOD.
    Mrt(Lod),
    /// Summary-first: ship a lead-in summary (a fixed fraction of the
    /// document's bytes); the user judges relevance from the summary
    /// alone; relevant documents are then transmitted **in full**
    /// because the document does not refine the summary.
    SummaryFirst {
        /// Summary size as a fraction of the document (e.g. 0.08).
        summary_fraction: f64,
    },
    /// Selective-repeat ARQ of the raw packets (no erasure coding), at
    /// the document LOD.
    Arq,
}

/// One measured strategy cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselinePoint {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Channel corruption probability.
    pub alpha: f64,
    /// Mean response time per document.
    pub summary: Summary,
}

/// Runs one browsing session under a strategy; returns the mean
/// response time per document.
pub fn run_strategy_session(params: &Params, strategy: Strategy, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut link = Link::new(
        Bandwidth::from_kbps(params.bandwidth_kbps),
        BernoulliChannel::new(params.alpha, seed ^ 0x1234_5678),
        seed,
    );
    let config = SessionConfig {
        packet_size: params.packet_size,
        overhead: params.overhead,
        gamma: params.gamma,
        cache_mode: params.cache_mode,
        max_rounds: params.max_rounds,
        interleave_depth: params.interleave_depth,
    };
    let docs = params.docs_per_session;
    let irrelevant_count = ((params.irrelevant_fraction * docs as f64).round() as usize).min(docs);
    let mut flags = vec![false; docs];
    for f in flags.iter_mut().take(irrelevant_count) {
        *f = true;
    }
    flags.shuffle(&mut rng);

    let mut total = 0.0;
    for &irrelevant in &flags {
        let doc = SimDocument::draw(params, &mut rng);
        total += match strategy {
            Strategy::Mrt(lod) => {
                let plan = doc.plan_at(lod);
                let relevance = if irrelevant {
                    Relevance::irrelevant(params.threshold)
                } else {
                    Relevance::relevant()
                };
                download(&plan, relevance, &config, &mut link).response_time
            }
            Strategy::SummaryFirst { summary_fraction } => {
                // Phase 1: the summary, delivered in full (it is the
                // only basis for the relevance judgement).
                let summary_bytes = ((doc.total_bytes() as f64) * summary_fraction).ceil() as usize;
                let summary_plan = TransmissionPlan::sequential(vec![UnitSlice::new(
                    "summary",
                    summary_bytes.max(1),
                    1.0,
                )]);
                let t1 = download(&summary_plan, Relevance::relevant(), &config, &mut link)
                    .response_time;
                if irrelevant {
                    t1
                } else {
                    // Phase 2: the whole document from scratch — the
                    // summary is not a prefix of it.
                    let plan = doc.plan_at(Lod::Document);
                    t1 + download(&plan, Relevance::relevant(), &config, &mut link).response_time
                }
            }
            Strategy::Arq => {
                let plan = doc.plan_at(Lod::Document);
                if irrelevant {
                    // ARQ still streams sequentially; model the early
                    // stop by downloading until content F via the coded
                    // content accrual — ARQ has no redundancy, so use
                    // the plain session with gamma 1 (N = M, clear text
                    // only) as its early-stop behaviour.
                    let cfg = SessionConfig {
                        gamma: 1.0,
                        ..config.clone()
                    };
                    download(
                        &plan,
                        Relevance::irrelevant(params.threshold),
                        &cfg,
                        &mut link,
                    )
                    .response_time
                } else {
                    download_arq(&plan, &ArqConfig::default(), &mut link).response_time
                }
            }
        };
    }
    total / docs as f64
}

/// Sweeps strategies × α and summarizes over repetitions.
pub fn compare_baselines(params: &Params, reps: usize, base_seed: u64) -> Vec<BaselinePoint> {
    let strategies = [
        Strategy::Mrt(Lod::Paragraph),
        Strategy::Mrt(Lod::Document),
        Strategy::SummaryFirst {
            summary_fraction: 0.08,
        },
        Strategy::Arq,
    ];
    let mut out = Vec::new();
    for &alpha in &[0.1, 0.3, 0.5] {
        for &strategy in &strategies {
            let p = Params {
                alpha,
                ..params.clone()
            };
            let means: Vec<f64> = (0..reps)
                .map(|r| {
                    run_strategy_session(&p, strategy, base_seed.wrapping_add(r as u64 * 31337))
                })
                .collect();
            out.push(BaselinePoint {
                strategy,
                alpha,
                summary: Summary::of(&means),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_transport::session::CacheMode;

    fn params() -> Params {
        Params {
            cache_mode: CacheMode::Caching,
            docs_per_session: 30,
            max_rounds: 100,
            irrelevant_fraction: 0.5,
            threshold: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn summary_first_pays_double_for_relevant_documents() {
        // With few irrelevant documents the summary is pure overhead.
        let p = Params {
            irrelevant_fraction: 0.0,
            alpha: 0.1,
            ..params()
        };
        let mrt = run_strategy_session(&p, Strategy::Mrt(Lod::Document), 7);
        let summary = run_strategy_session(
            &p,
            Strategy::SummaryFirst {
                summary_fraction: 0.08,
            },
            7,
        );
        assert!(
            summary > mrt * 1.04,
            "summary-first ({summary:.2}s) should cost visibly more than MRT ({mrt:.2}s)"
        );
    }

    #[test]
    fn summary_first_wins_when_everything_is_irrelevant() {
        // All irrelevant: an 8% summary is cheaper than streaming until
        // F = 0.5 of the content has arrived.
        let p = Params {
            irrelevant_fraction: 1.0,
            alpha: 0.1,
            ..params()
        };
        let mrt = run_strategy_session(&p, Strategy::Mrt(Lod::Document), 9);
        let summary = run_strategy_session(
            &p,
            Strategy::SummaryFirst {
                summary_fraction: 0.08,
            },
            9,
        );
        assert!(
            summary < mrt,
            "tiny summaries must win at I=1 ({summary:.2}s vs {mrt:.2}s)"
        );
    }

    #[test]
    fn mrt_paragraph_beats_summary_first_at_mixed_relevance() {
        // Half the documents are relevant and the user needs only 20%
        // of the content to judge (F = 0.2): multi-resolution ordering
        // reaches that fast, and relevant documents are never
        // double-transmitted. (The trade-off genuinely crosses over —
        // at higher F a tiny summary wins on irrelevant documents —
        // which is exactly the tension the paper's §2 describes.)
        let p = Params {
            alpha: 0.3,
            threshold: 0.2,
            ..params()
        };
        let mrt = run_strategy_session(&p, Strategy::Mrt(Lod::Paragraph), 11);
        let summary = run_strategy_session(
            &p,
            Strategy::SummaryFirst {
                summary_fraction: 0.08,
            },
            11,
        );
        assert!(
            mrt < summary,
            "MRT ({mrt:.2}s) should beat summary-first ({summary:.2}s) at I=0.5, F=0.2"
        );
    }

    #[test]
    fn compare_baselines_produces_full_grid() {
        let p = Params {
            docs_per_session: 10,
            ..params()
        };
        let pts = compare_baselines(&p, 2, 3);
        assert_eq!(pts.len(), 3 * 4);
        assert!(pts.iter().all(|pt| pt.summary.mean > 0.0));
    }

    #[test]
    fn arq_is_competitive_on_clean_channels() {
        let p = Params {
            alpha: 0.1,
            irrelevant_fraction: 0.0,
            ..params()
        };
        let arq = run_strategy_session(&p, Strategy::Arq, 5);
        let mrt = run_strategy_session(&p, Strategy::Mrt(Lod::Document), 5);
        assert!(
            arq / mrt < 1.5 && mrt / arq < 1.5,
            "arq {arq:.2}s vs mrt {mrt:.2}s"
        );
    }
}
