//! The simulated document and its transmission plans.
//!
//! "Each simulated document is composed of 5 sections; each section is
//! composed of 2 subsections; each subsection is composed of 2
//! paragraphs. We model the information content of each paragraph by a
//! uniform distribution. We use a skewed factor δ to model the ratio
//! between the highest … and the lowest information content of a
//! paragraph" (§5). A [`SimDocument`] holds the drawn paragraph
//! contents; [`SimDocument::plan_at`] turns them into the transmission
//! plan the protocol uses at each LOD.

use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};
use rand::Rng;

use crate::params::Params;

/// A simulated document: paragraph information contents plus shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SimDocument {
    /// Normalized paragraph contents in document order (sum = 1).
    pub paragraph_contents: Vec<f64>,
    /// Bytes per paragraph (uniform split of `s_D`).
    pub paragraph_bytes: usize,
    /// Paragraphs per subsection.
    pub paragraphs_per_subsection: usize,
    /// Subsections per section.
    pub subsections_per_section: usize,
}

impl SimDocument {
    /// Draws a document per the paper's model: paragraph contents
    /// `U[1, δ]`, normalized.
    ///
    /// # Panics
    ///
    /// Panics if the parameter shape has zero paragraphs or `skew < 1`.
    pub fn draw(params: &Params, rng: &mut impl Rng) -> Self {
        let n = params.paragraphs_per_doc();
        assert!(n > 0, "document must have paragraphs");
        assert!(params.skew >= 1.0, "skew must be at least 1");
        let raw: Vec<f64> = (0..n)
            .map(|_| rng.random_range(1.0..=params.skew))
            .collect();
        let total: f64 = raw.iter().sum();
        SimDocument {
            paragraph_contents: raw.into_iter().map(|w| w / total).collect(),
            paragraph_bytes: params.doc_size / n,
            paragraphs_per_subsection: params.paragraphs,
            subsections_per_section: params.subsections,
        }
    }

    /// Number of paragraphs.
    pub fn paragraph_count(&self) -> usize {
        self.paragraph_contents.len()
    }

    /// Total document bytes.
    pub fn total_bytes(&self) -> usize {
        self.paragraph_bytes * self.paragraph_count()
    }

    /// Groups paragraph contents into units at `lod`, returning
    /// `(bytes, content)` per unit in document order.
    fn units_at(&self, lod: Lod) -> Vec<(usize, f64)> {
        let group = match lod {
            Lod::Document => self.paragraph_count(),
            Lod::Section => self.paragraphs_per_subsection * self.subsections_per_section,
            // The simulated documents define no subsubsection LOD
            // (paper §5.3); it behaves like subsection granularity.
            Lod::Subsection | Lod::Subsubsection => self.paragraphs_per_subsection,
            Lod::Paragraph => 1,
        };
        self.paragraph_contents
            .chunks(group)
            .map(|chunk| (self.paragraph_bytes * chunk.len(), chunk.iter().sum()))
            .collect()
    }

    /// The transmission plan at `lod`: sequential at the document LOD
    /// (the conventional paradigm), content-ranked at finer LODs.
    pub fn plan_at(&self, lod: Lod) -> TransmissionPlan {
        let slices: Vec<UnitSlice> = self
            .units_at(lod)
            .into_iter()
            .enumerate()
            .map(|(i, (bytes, content))| UnitSlice::new(format!("u{i}"), bytes, content))
            .collect();
        if lod == Lod::Document {
            TransmissionPlan::sequential(slices)
        } else {
            TransmissionPlan::ranked(slices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn doc(seed: u64) -> SimDocument {
        let mut rng = StdRng::seed_from_u64(seed);
        SimDocument::draw(&Params::default(), &mut rng)
    }

    #[test]
    fn shape_matches_table2() {
        let d = doc(1);
        assert_eq!(d.paragraph_count(), 20);
        assert_eq!(d.paragraph_bytes, 512);
        assert_eq!(d.total_bytes(), 10240);
        let sum: f64 = d.paragraph_contents.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unit_counts_per_lod() {
        let d = doc(2);
        assert_eq!(d.plan_at(Lod::Document).slices().len(), 1);
        assert_eq!(d.plan_at(Lod::Section).slices().len(), 5);
        assert_eq!(d.plan_at(Lod::Subsection).slices().len(), 10);
        assert_eq!(d.plan_at(Lod::Paragraph).slices().len(), 20);
    }

    #[test]
    fn every_plan_carries_full_document() {
        let d = doc(3);
        for lod in Lod::ALL {
            let p = d.plan_at(lod);
            assert_eq!(p.total_bytes(), 10240, "lod {lod}");
            assert!((p.total_content() - 1.0).abs() < 1e-9, "lod {lod}");
            assert_eq!(p.raw_packets(256), 40, "lod {lod}");
        }
    }

    #[test]
    fn document_lod_is_sequential_finer_are_ranked() {
        let d = doc(4);
        let seq = d.plan_at(Lod::Document);
        assert_eq!(seq.slices()[0].label, "u0");
        let ranked = d.plan_at(Lod::Paragraph);
        for w in ranked.slices().windows(2) {
            assert!(
                w[0].content >= w[1].content,
                "paragraph plan must be sorted"
            );
        }
    }

    #[test]
    fn skew_bounds_content_ratio() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let params = Params {
                skew: 5.0,
                ..Default::default()
            };
            let d = SimDocument::draw(&params, &mut rng);
            let maxc = d
                .paragraph_contents
                .iter()
                .copied()
                .fold(f64::MIN, f64::max);
            let minc = d
                .paragraph_contents
                .iter()
                .copied()
                .fold(f64::MAX, f64::min);
            assert!(maxc / minc <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn higher_skew_concentrates_content() {
        // With δ=1 all paragraphs are equal; with δ=5 the top unit gets
        // a clearly larger share, on average.
        let share = |skew: f64| {
            let params = Params {
                skew,
                ..Default::default()
            };
            let mut total = 0.0;
            for seed in 0..50 {
                let mut rng = StdRng::seed_from_u64(seed);
                let d = SimDocument::draw(&params, &mut rng);
                total += d
                    .paragraph_contents
                    .iter()
                    .copied()
                    .fold(f64::MIN, f64::max);
            }
            total / 50.0
        };
        let flat = share(1.0 + 1e-9);
        let skewed = share(5.0);
        assert!((flat - 0.05).abs() < 1e-3, "flat share {flat}");
        assert!(skewed > flat * 1.2, "skewed {skewed} vs flat {flat}");
    }

    #[test]
    fn subsubsection_behaves_like_subsection() {
        let d = doc(6);
        assert_eq!(
            d.plan_at(Lod::Subsubsection).slices().len(),
            d.plan_at(Lod::Subsection).slices().len()
        );
    }
}
