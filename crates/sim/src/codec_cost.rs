//! Measured dispersal cost vs the weak link.
//!
//! The paper's scheme is only viable if the fault-tolerant encoding is
//! cheap relative to the wireless channel: Table 2 budgets the link at
//! 19.2 kbps, so even a modest CPU should keep the coding stage
//! invisible. This module *measures* that claim against the real
//! kernels instead of assuming it: it times the split-table encode and
//! the erasure-pattern decode over a representative payload and
//! expresses the result as a fraction of channel time — the number the
//! simulator (and a capacity planner sizing a multi-user proxy) needs.

// analysis:allow(no-wallclock-in-sim) this module's whole purpose is measuring real codec CPU time; the reading feeds the simulator as an input, it never drives the simulated timeline
use std::time::Instant;

use mrtweb_erasure::ida::{Codec, GroupPackets};
use mrtweb_erasure::par::GroupCodec;

use crate::params::Params;

/// Measured codec throughput for one dispersal geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecCost {
    /// Raw packets per group.
    pub m: usize,
    /// Cooked packets per group.
    pub n: usize,
    /// Bytes per packet.
    pub packet_size: usize,
    /// Encode throughput in raw-payload bytes per second.
    pub encode_bytes_per_s: f64,
    /// Decode throughput (with `N - M` erasures) in bytes per second.
    pub decode_bytes_per_s: f64,
}

impl CodecCost {
    /// Seconds of CPU needed to encode `bytes` of payload.
    pub fn encode_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / self.encode_bytes_per_s
    }

    /// Seconds of CPU needed to decode `bytes` of payload under the
    /// worst tolerated loss.
    pub fn decode_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / self.decode_bytes_per_s
    }

    /// Fraction of end-to-end time spent coding (encode + decode) when
    /// the document travels a link of `bandwidth_kbps`. The paper's
    /// premise is that this is ≈ 0 for weak links.
    pub fn overhead_fraction(&self, bandwidth_kbps: f64) -> f64 {
        let link_bytes_per_s = bandwidth_kbps * 1000.0 / 8.0;
        let t_link = 1.0 / link_bytes_per_s;
        let t_code = 1.0 / self.encode_bytes_per_s + 1.0 / self.decode_bytes_per_s;
        t_code / (t_code + t_link)
    }
}

/// Times encode and decode of `payload_bytes` through the parallel
/// group codec, best of `reps` rounds (first round also warms the
/// decode-inverse cache, as a long-running proxy would be warm).
///
/// # Panics
///
/// Panics if the geometry is invalid for [`Codec::new`].
pub fn measure_codec_cost(
    m: usize,
    n: usize,
    packet_size: usize,
    payload_bytes: usize,
    reps: usize,
) -> CodecCost {
    let codec = Codec::new(m, n, packet_size).expect("valid geometry");
    let gc = GroupCodec::new(codec);
    let payload: Vec<u8> = (0..payload_bytes).map(|i| (i * 131 + 17) as u8).collect();

    let mut best_encode = f64::INFINITY;
    let mut groups = Vec::new();
    for _ in 0..reps.max(1) {
        // analysis:allow(no-wallclock-in-sim) wall-clock timing of the real encode kernel is the measurement itself
        let t = Instant::now();
        groups = gc.encode(&payload);
        best_encode = best_encode.min(t.elapsed().as_secs_f64());
    }

    // Worst tolerated loss: drop the first N - M packets of each group,
    // forcing a full matrix decode (no all-clear shortcut).
    let received: Vec<GroupPackets> = groups
        .iter()
        .map(|g| {
            let survivors: Vec<(usize, Vec<u8>)> =
                g.cooked.iter().cloned().enumerate().skip(n - m).collect();
            (g.index, survivors, g.len)
        })
        .collect();
    let mut best_decode = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // analysis:allow(no-wallclock-in-sim) wall-clock timing of the real decode kernel is the measurement itself
        let t = Instant::now();
        let out = gc.decode(&received).expect("M survivors suffice");
        best_decode = best_decode.min(t.elapsed().as_secs_f64());
        assert_eq!(out.len(), payload.len());
    }

    let bytes = payload_bytes.max(1) as f64;
    CodecCost {
        m,
        n,
        packet_size,
        // Guard against timer quantization on tiny payloads.
        encode_bytes_per_s: bytes / best_encode.max(1e-9),
        decode_bytes_per_s: bytes / best_decode.max(1e-9),
    }
}

/// Measures the cost of the Table 2 geometry from `params` over one
/// document's worth of payload.
pub fn dispersal_cost(params: &Params) -> CodecCost {
    let m = params.doc_size.div_ceil(params.packet_size).clamp(1, 128);
    let n = ((m as f64 * params.gamma).round() as usize).clamp(m, 256);
    measure_codec_cost(m, n, params.packet_size, params.doc_size, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_throughput_is_positive_and_sane() {
        let cost = measure_codec_cost(8, 12, 256, 8 * 256 * 4, 2);
        assert!(cost.encode_bytes_per_s > 0.0);
        assert!(cost.decode_bytes_per_s > 0.0);
        assert!(cost.encode_seconds(10_000) > 0.0);
        assert!(cost.decode_seconds(10_000) > 0.0);
    }

    #[test]
    fn coding_is_negligible_on_the_paper_link() {
        // Table 2: 19.2 kbps. Even a debug build encodes orders of
        // magnitude faster than the channel drains.
        let cost = dispersal_cost(&Params::default());
        let f = cost.overhead_fraction(19.2);
        assert!(
            f < 0.05,
            "coding overhead fraction {f} should be negligible"
        );
        assert!(f > 0.0);
    }

    #[test]
    fn overhead_grows_with_bandwidth() {
        let cost = measure_codec_cost(8, 12, 256, 8 * 256 * 2, 2);
        let weak = cost.overhead_fraction(19.2);
        let strong = cost.overhead_fraction(100_000.0);
        assert!(strong > weak);
    }
}
