//! Extension experiment: browsing through disconnection windows.
//!
//! The paper's channel model is pure per-packet corruption; its title
//! phenomenon — *weak connectivity* — also includes whole outage
//! windows. This extension experiment reruns the Caching/NoCaching
//! comparison over an [`OutageChannel`] layered on the Bernoulli base,
//! quantifying how the client packet cache fares when losses arrive in
//! disconnection bursts rather than independently.

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::link::Link;
use mrtweb_channel::outage::OutageChannel;
use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::session::{download, Outcome, Relevance, SessionConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::model::SimDocument;
use crate::params::Params;
use crate::stats::Summary;

/// Outage configuration layered on the base channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    /// P(connected → disconnected) per packet.
    pub p_drop: f64,
    /// P(disconnected → connected) per packet.
    pub p_recover: f64,
}

impl OutageSpec {
    /// Mean outage length in packets.
    pub fn mean_outage(&self) -> f64 {
        1.0 / self.p_recover
    }

    /// Stationary fraction of packets inside outages.
    pub fn outage_fraction(&self) -> f64 {
        self.p_drop / (self.p_drop + self.p_recover)
    }
}

/// One browsing session over the outage channel; mirrors
/// [`crate::browsing::run_session`] with the composite loss model.
pub fn run_outage_session(
    params: &Params,
    outage: &OutageSpec,
    lod: Lod,
    seed: u64,
) -> (f64, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = BernoulliChannel::new(params.alpha, seed ^ 0xfeed);
    let loss = OutageChannel::new(base, outage.p_drop, outage.p_recover, seed ^ 0xbeef);
    let mut link = Link::new(Bandwidth::from_kbps(params.bandwidth_kbps), loss, seed);
    let config = SessionConfig {
        packet_size: params.packet_size,
        overhead: params.overhead,
        gamma: params.gamma,
        cache_mode: params.cache_mode,
        max_rounds: params.max_rounds,
        interleave_depth: params.interleave_depth,
    };
    let docs = params.docs_per_session;
    let irrelevant_count = ((params.irrelevant_fraction * docs as f64).round() as usize).min(docs);
    let mut flags = vec![false; docs];
    for f in flags.iter_mut().take(irrelevant_count) {
        *f = true;
    }
    flags.shuffle(&mut rng);

    let mut total = 0.0;
    let mut failed = 0usize;
    for &irrelevant in &flags {
        let doc = SimDocument::draw(params, &mut rng);
        let plan = doc.plan_at(lod);
        let relevance = if irrelevant {
            Relevance::irrelevant(params.threshold)
        } else {
            Relevance::relevant()
        };
        let report = download(&plan, relevance, &config, &mut link);
        total += report.response_time;
        if report.outcome == Outcome::Failed {
            failed += 1;
        }
    }
    (total / docs as f64, failed)
}

/// Summarizes outage-session response times over repetitions.
pub fn replicate_outage(
    params: &Params,
    outage: &OutageSpec,
    lod: Lod,
    reps: usize,
    base_seed: u64,
) -> Summary {
    let means: Vec<f64> = (0..reps)
        .map(|r| {
            run_outage_session(
                params,
                outage,
                lod,
                base_seed.wrapping_add(r as u64 * 104729),
            )
            .0
        })
        .collect();
    Summary::of(&means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_transport::session::CacheMode;

    fn params(cache: CacheMode) -> Params {
        Params {
            alpha: 0.05,
            cache_mode: cache,
            irrelevant_fraction: 0.0,
            docs_per_session: 20,
            max_rounds: 200,
            ..Default::default()
        }
    }

    #[test]
    fn outage_spec_derived_quantities() {
        let o = OutageSpec {
            p_drop: 0.01,
            p_recover: 0.04,
        };
        assert!((o.mean_outage() - 25.0).abs() < 1e-12);
        assert!((o.outage_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn outages_slow_sessions_down() {
        let o_none = OutageSpec {
            p_drop: 1e-12,
            p_recover: 1.0,
        };
        let o_heavy = OutageSpec {
            p_drop: 0.02,
            p_recover: 0.05,
        };
        let p = params(CacheMode::Caching);
        let clean = replicate_outage(&p, &o_none, Lod::Document, 3, 5);
        let stormy = replicate_outage(&p, &o_heavy, Lod::Document, 3, 5);
        assert!(
            stormy.mean > clean.mean * 1.1,
            "outages should slow sessions ({:.2} vs {:.2})",
            stormy.mean,
            clean.mean
        );
    }

    #[test]
    fn caching_helps_under_outages_too() {
        let o = OutageSpec {
            p_drop: 0.02,
            p_recover: 0.05,
        };
        let nc = replicate_outage(&params(CacheMode::NoCaching), &o, Lod::Document, 3, 9);
        let c = replicate_outage(&params(CacheMode::Caching), &o, Lod::Document, 3, 9);
        assert!(
            c.mean < nc.mean,
            "caching {:.2}s vs nocaching {:.2}s",
            c.mean,
            nc.mean
        );
    }

    #[test]
    fn sessions_are_deterministic() {
        let o = OutageSpec {
            p_drop: 0.01,
            p_recover: 0.1,
        };
        let p = params(CacheMode::Caching);
        let a = run_outage_session(&p, &o, Lod::Paragraph, 42);
        let b = run_outage_session(&p, &o, Lod::Paragraph, 42);
        assert_eq!(a, b);
    }
}
