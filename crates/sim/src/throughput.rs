//! Throughput of multi-resolution browsing vs the traditional paradigm.
//!
//! The paper's discussion section (§6) says the authors "are also
//! conducting experiments to measure the throughput of our system in
//! browsing web documents when compared with traditional web browsing
//! paradigm". This module runs that experiment: *goodput* is defined as
//! information content usefully delivered per second of channel time —
//! for a relevant document, the whole unit of content; for an
//! irrelevant one, only the content the user had seen when they hit
//! stop (the rest of the bytes were wasted either way, but MRT stops
//! paying for them sooner).

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::link::Link;
use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::session::{download, Relevance, SessionConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::model::SimDocument;
use crate::params::Params;
use crate::stats::Summary;

/// Throughput measurements for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Useful content units delivered per second of channel time.
    pub goodput: f64,
    /// Raw content bytes delivered (relevant docs) per second.
    pub byte_goodput: f64,
    /// Fraction of transmitted packets that ended up useful.
    pub efficiency: f64,
}

/// Measures session goodput at the given LOD.
pub fn measure_throughput(params: &Params, lod: Lod, seed: u64) -> ThroughputResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut link = Link::new(
        Bandwidth::from_kbps(params.bandwidth_kbps),
        BernoulliChannel::new(params.alpha, seed ^ 0xabcdef),
        seed,
    );
    let config = SessionConfig {
        packet_size: params.packet_size,
        overhead: params.overhead,
        gamma: params.gamma,
        cache_mode: params.cache_mode,
        max_rounds: params.max_rounds,
        interleave_depth: params.interleave_depth,
    };
    let docs = params.docs_per_session;
    let irrelevant_count = ((params.irrelevant_fraction * docs as f64).round() as usize).min(docs);
    let mut flags = vec![false; docs];
    for f in flags.iter_mut().take(irrelevant_count) {
        *f = true;
    }
    flags.shuffle(&mut rng);

    let mut useful_content = 0.0;
    let mut useful_bytes = 0.0;
    let mut total_time = 0.0;
    let mut useful_packets = 0u64;
    let mut total_packets = 0u64;
    for &irrelevant in &flags {
        let doc = SimDocument::draw(params, &mut rng);
        let plan = doc.plan_at(lod);
        let relevance = if irrelevant {
            Relevance::irrelevant(params.threshold)
        } else {
            Relevance::relevant()
        };
        let report = download(&plan, relevance, &config, &mut link);
        total_time += report.response_time;
        total_packets += report.packets_sent;
        useful_content += report.content;
        if irrelevant {
            // Clear-text packets that contributed to the judgement.
            useful_packets += ((report.content * report.m as f64).round()) as u64;
        } else {
            useful_bytes += plan.total_bytes() as f64;
            useful_packets += report.m as u64;
        }
    }
    ThroughputResult {
        goodput: useful_content / total_time,
        byte_goodput: useful_bytes / total_time,
        efficiency: useful_packets as f64 / total_packets.max(1) as f64,
    }
}

/// Summarizes goodput over repetitions.
pub fn replicate_throughput(
    params: &Params,
    lod: Lod,
    reps: usize,
    base_seed: u64,
) -> (Summary, Summary) {
    let mut goodputs = Vec::with_capacity(reps);
    let mut efficiencies = Vec::with_capacity(reps);
    for r in 0..reps {
        let t = measure_throughput(params, lod, base_seed.wrapping_add(r as u64 * 6271));
        goodputs.push(t.goodput);
        efficiencies.push(t.efficiency);
    }
    (Summary::of(&goodputs), Summary::of(&efficiencies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_transport::session::CacheMode;

    fn params() -> Params {
        Params {
            docs_per_session: 30,
            cache_mode: CacheMode::Caching,
            max_rounds: 80,
            ..Default::default()
        }
    }

    #[test]
    fn mrt_beats_traditional_goodput_with_irrelevant_docs() {
        let p = Params {
            irrelevant_fraction: 0.7,
            threshold: 0.3,
            ..params()
        };
        let (doc_g, _) = replicate_throughput(&p, Lod::Document, 5, 3);
        let (para_g, _) = replicate_throughput(&p, Lod::Paragraph, 5, 3);
        assert!(
            para_g.mean > doc_g.mean,
            "paragraph goodput {:.4} should beat document goodput {:.4}",
            para_g.mean,
            doc_g.mean
        );
    }

    #[test]
    fn all_relevant_docs_show_no_ordering_advantage() {
        let p = Params {
            irrelevant_fraction: 0.0,
            ..params()
        };
        let (doc_g, _) = replicate_throughput(&p, Lod::Document, 4, 5);
        let (para_g, _) = replicate_throughput(&p, Lod::Paragraph, 4, 5);
        // Full downloads need M intact packets regardless of order.
        assert!(
            (doc_g.mean - para_g.mean).abs() / doc_g.mean < 0.05,
            "ordering should not matter for full downloads ({:.4} vs {:.4})",
            doc_g.mean,
            para_g.mean
        );
    }

    #[test]
    fn goodput_falls_with_alpha() {
        let lo = measure_throughput(
            &Params {
                alpha: 0.1,
                ..params()
            },
            Lod::Paragraph,
            9,
        );
        let hi = measure_throughput(
            &Params {
                alpha: 0.5,
                ..params()
            },
            Lod::Paragraph,
            9,
        );
        assert!(lo.goodput > hi.goodput);
        assert!(lo.efficiency > hi.efficiency);
    }

    #[test]
    fn efficiency_is_a_fraction() {
        let t = measure_throughput(&params(), Lod::Section, 11);
        assert!(t.efficiency > 0.0 && t.efficiency <= 1.0);
        assert!(t.goodput > 0.0);
        assert!(t.byte_goodput > 0.0);
    }
}
