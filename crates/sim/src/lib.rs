//! Simulation harness reproducing the evaluation of Leong et al.
//! (ICDCS 2000), §5.
//!
//! "In order to quickly generate a portrait of an overall behavior and
//! performance of our proposed scheme, we have developed a simulation
//! model for the study" — this crate is that model:
//!
//! * [`params`] — the Table 2 parameter settings;
//! * [`stats`] — means, standard deviations and confidence intervals
//!   over the 50 experiment repetitions;
//! * [`model`] — the simulated document (5 sections × 2 subsections ×
//!   2 paragraphs, uniform content with skew δ) and its transmission
//!   plans at each LOD;
//! * [`browsing`] — a browsing session visiting 200 documents with a
//!   fraction `I` irrelevant, measuring mean response time;
//! * [`experiments`] — the four experiments behind Figures 4–7;
//! * [`figures`] — the analytic Figures 2–3 and text rendering of every
//!   figure's data;
//! * [`table1`] — regenerates Table 1 (IC/QIC/MQIC of a draft of the
//!   paper) from an embedded XML draft through the full text pipeline.

#![forbid(unsafe_code)]

pub mod adaptive_session;
pub mod baselines;
pub mod browsing;
pub mod bursty;
pub mod codec_cost;
pub mod experiments;
pub mod figures;
pub mod model;
pub mod params;
pub mod stats;
pub mod table1;
pub mod throughput;
pub mod weakconn;
