//! The paper's Table 2: default experimental parameter settings.

use mrtweb_transport::session::CacheMode;
use serde::{Deserialize, Serialize};

/// Default experimental parameters (Table 2).
///
/// | Parameter | Description                              | Value |
/// |-----------|------------------------------------------|-------|
/// | `s_p`     | Raw size per packet                      | 256   |
/// | `s_D`     | Size per document                        | 10240 |
/// | `O`       | Overhead (CRC + sequence number)         | 4     |
/// | `M`       | Number of raw packets                    | 40    |
/// | `N`       | Number of cooked packets                 | 60    |
/// | `B`       | Bandwidth (kbps)                         | 19.2  |
/// | `δ`       | Skew factor in information content       | 3     |
/// | `I`       | Irrelevant documents                     | 50%   |
/// | `F`       | Info content to determine relevance      | 0.5   |
/// | `α`       | Probability of a corrupted packet        | 0.1   |
/// | `γ`       | Redundancy ratio `N/M`                   | 1.5   |
///
/// Document shape: 5 sections × 2 subsections × 2 paragraphs; browsing
/// sessions visit 200 random documents; every experiment is repeated 50
/// times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Raw bytes per packet (`s_p`).
    pub packet_size: usize,
    /// Document size in bytes (`s_D`).
    pub doc_size: usize,
    /// Per-packet overhead in bytes (`O`).
    pub overhead: usize,
    /// Channel bandwidth in kbps (`B`).
    pub bandwidth_kbps: f64,
    /// Skew factor (`δ`).
    pub skew: f64,
    /// Fraction of irrelevant documents (`I`).
    pub irrelevant_fraction: f64,
    /// Content threshold to judge relevance (`F`).
    pub threshold: f64,
    /// Per-packet corruption probability (`α`).
    pub alpha: f64,
    /// Redundancy ratio (`γ`).
    pub gamma: f64,
    /// Sections per document.
    pub sections: usize,
    /// Subsections per section.
    pub subsections: usize,
    /// Paragraphs per subsection.
    pub paragraphs: usize,
    /// Documents visited per browsing session.
    pub docs_per_session: usize,
    /// Experiment repetitions.
    pub repetitions: usize,
    /// Client cache behaviour on stalls.
    pub cache_mode: CacheMode,
    /// Retry budget per document (rounds) — the paper lets stalls
    /// retransmit indefinitely; a finite cap keeps hopeless
    /// NoCaching/high-α cells bounded (their times are far off-chart
    /// either way).
    pub max_rounds: usize,
    /// Block-interleaving depth for the first round (extension;
    /// 1 = off, the paper's behaviour).
    pub interleave_depth: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            packet_size: 256,
            doc_size: 10240,
            overhead: 4,
            bandwidth_kbps: 19.2,
            skew: 3.0,
            irrelevant_fraction: 0.5,
            threshold: 0.5,
            alpha: 0.1,
            gamma: 1.5,
            sections: 5,
            subsections: 2,
            paragraphs: 2,
            docs_per_session: 200,
            repetitions: 50,
            cache_mode: CacheMode::NoCaching,
            max_rounds: 200,
            interleave_depth: 1,
        }
    }
}

impl Params {
    /// Raw packets per document: `M = ⌈s_D / s_p⌉`.
    pub fn raw_packets(&self) -> usize {
        self.doc_size.div_ceil(self.packet_size)
    }

    /// Cooked packets per document: `N = round(γ·M)`.
    pub fn cooked_packets(&self) -> usize {
        ((self.raw_packets() as f64 * self.gamma).round() as usize).max(self.raw_packets())
    }

    /// Paragraphs per document.
    pub fn paragraphs_per_doc(&self) -> usize {
        self.sections * self.subsections * self.paragraphs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = Params::default();
        assert_eq!(p.packet_size, 256);
        assert_eq!(p.doc_size, 10240);
        assert_eq!(p.overhead, 4);
        assert_eq!(p.raw_packets(), 40);
        assert_eq!(p.cooked_packets(), 60);
        assert_eq!(p.bandwidth_kbps, 19.2);
        assert_eq!(p.skew, 3.0);
        assert_eq!(p.irrelevant_fraction, 0.5);
        assert_eq!(p.threshold, 0.5);
        assert_eq!(p.alpha, 0.1);
        assert_eq!(p.gamma, 1.5);
        assert_eq!(p.paragraphs_per_doc(), 20);
        assert_eq!(p.docs_per_session, 200);
        assert_eq!(p.repetitions, 50);
    }

    #[test]
    fn cooked_packet_size_matches_paper() {
        let p = Params::default();
        // "Raw packets are transformed into cooked packets, each has a
        // size of 260 bytes."
        assert_eq!(p.packet_size + p.overhead, 260);
    }
}
