//! The four experiments of §5 (Figures 4–7).
//!
//! Every driver takes a [`Scale`] so the full paper-scale runs (200
//! documents × 50 repetitions) and fast CI-friendly runs share one code
//! path, and uses common random numbers across compared arms to tighten
//! the comparisons.

use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::session::CacheMode;
use serde::{Deserialize, Serialize};

use crate::browsing::replicate;
use crate::params::Params;
use crate::stats::Summary;

/// How much work to spend per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Documents per browsing session.
    pub docs: usize,
    /// Repetitions per cell.
    pub reps: usize,
    /// Retry budget per document.
    pub max_rounds: usize,
}

impl Scale {
    /// The paper's scale: 200 documents, 50 repetitions.
    pub fn paper() -> Self {
        Scale {
            docs: 200,
            reps: 50,
            max_rounds: 200,
        }
    }

    /// A fast scale for tests and smoke runs.
    pub fn quick() -> Self {
        Scale {
            docs: 30,
            reps: 3,
            max_rounds: 60,
        }
    }

    fn apply(&self, params: &mut Params) {
        params.docs_per_session = self.docs;
        params.repetitions = self.reps;
        params.max_rounds = self.max_rounds;
    }
}

/// The α values every experiment sweeps.
pub const ALPHAS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// One cell of Experiment 1 (Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exp1Point {
    /// Cache mode of the panel.
    pub cache: CacheMode,
    /// Fraction of irrelevant documents (0 or 0.5).
    pub irrelevant: f64,
    /// Channel corruption probability.
    pub alpha: f64,
    /// Redundancy ratio γ (the x axis).
    pub gamma: f64,
    /// Mean response time summary over repetitions.
    pub summary: Summary,
}

/// Experiment 1: Caching vs NoCaching across redundancy ratios
/// γ ∈ {1.1 … 2.5}, α ∈ {0.1 … 0.5}, I ∈ {0, 0.5}, document LOD.
pub fn experiment1(scale: &Scale, seed: u64) -> Vec<Exp1Point> {
    let mut out = Vec::new();
    for cache in [CacheMode::NoCaching, CacheMode::Caching] {
        for irrelevant in [0.0, 0.5] {
            for &alpha in &ALPHAS {
                for step in 0..=14 {
                    let gamma = 1.1 + 0.1 * step as f64;
                    let mut params = Params {
                        alpha,
                        gamma,
                        cache_mode: cache,
                        irrelevant_fraction: irrelevant,
                        threshold: 0.5,
                        ..Default::default()
                    };
                    scale.apply(&mut params);
                    let summary = replicate(&params, Lod::Document, scale.reps, seed);
                    out.push(Exp1Point {
                        cache,
                        irrelevant,
                        alpha,
                        gamma,
                        summary,
                    });
                }
            }
        }
    }
    out
}

/// One cell of Experiment 2 (Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exp2Point {
    /// Cache mode of the panel.
    pub cache: CacheMode,
    /// Channel corruption probability.
    pub alpha: f64,
    /// The swept value (I in the first set, F in the second).
    pub x: f64,
    /// Mean response time summary.
    pub summary: Summary,
}

/// Experiment 2 (first set): F = 0.5 fixed, I ∈ {0, 0.1, …, 1.0}.
pub fn experiment2_vary_i(scale: &Scale, seed: u64) -> Vec<Exp2Point> {
    sweep_exp2(scale, seed, true)
}

/// Experiment 2 (second set): I = 0.5 fixed, F ∈ {0, 0.1, …, 1.0}.
pub fn experiment2_vary_f(scale: &Scale, seed: u64) -> Vec<Exp2Point> {
    sweep_exp2(scale, seed, false)
}

fn sweep_exp2(scale: &Scale, seed: u64, vary_i: bool) -> Vec<Exp2Point> {
    let mut out = Vec::new();
    for cache in [CacheMode::NoCaching, CacheMode::Caching] {
        for &alpha in &ALPHAS {
            for step in 0..=10 {
                let x = step as f64 / 10.0;
                let (irrelevant, threshold) = if vary_i { (x, 0.5) } else { (0.5, x) };
                let mut params = Params {
                    alpha,
                    cache_mode: cache,
                    irrelevant_fraction: irrelevant,
                    threshold,
                    ..Default::default()
                };
                scale.apply(&mut params);
                let summary = replicate(&params, Lod::Document, scale.reps, seed);
                out.push(Exp2Point {
                    cache,
                    alpha,
                    x,
                    summary,
                });
            }
        }
    }
    out
}

/// One cell of Experiments 3 and 4 (Figures 6 and 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImprovementPoint {
    /// Channel corruption probability.
    pub alpha: f64,
    /// Skew factor δ.
    pub skew: f64,
    /// The transmission LOD.
    pub lod: Lod,
    /// Relevance threshold F (the x axis).
    pub f: f64,
    /// Mean response time at this LOD.
    pub lod_time: Summary,
    /// Mean response time at the document LOD (the baseline).
    pub document_time: Summary,
    /// Improvement = document-LOD time / this-LOD time.
    pub improvement: f64,
}

/// The LODs Experiments 3–4 compare (no subsubsection: the simulated
/// documents do not define one).
pub const LODS: [Lod; 4] = [Lod::Document, Lod::Section, Lod::Subsection, Lod::Paragraph];

/// Experiment 3: improvement of multi-resolution browsing per LOD, all
/// documents irrelevant (I = 1), Caching, α ∈ {0.1, 0.3, 0.5},
/// F ∈ {0.1 … 1.0}.
pub fn experiment3(scale: &Scale, seed: u64) -> Vec<ImprovementPoint> {
    let mut out = Vec::new();
    for &alpha in &[0.1, 0.3, 0.5] {
        out.extend(improvement_sweep(scale, seed, alpha, 3.0));
    }
    out
}

/// Experiment 4: impact of the skew factor, δ ∈ {2, 3, 4, 5}, α = 0.1.
pub fn experiment4(scale: &Scale, seed: u64) -> Vec<ImprovementPoint> {
    let mut out = Vec::new();
    for &skew in &[2.0, 3.0, 4.0, 5.0] {
        out.extend(improvement_sweep(scale, seed, 0.1, skew));
    }
    out
}

fn improvement_sweep(scale: &Scale, seed: u64, alpha: f64, skew: f64) -> Vec<ImprovementPoint> {
    let mut out = Vec::new();
    for step in 1..=10 {
        let f = step as f64 / 10.0;
        let mut params = Params {
            alpha,
            skew,
            cache_mode: CacheMode::Caching,
            irrelevant_fraction: 1.0,
            threshold: f,
            ..Default::default()
        };
        scale.apply(&mut params);
        // Common random numbers: every LOD arm sees the same seeds, so
        // documents and channel noise match across arms.
        let document_time = replicate(&params, Lod::Document, scale.reps, seed);
        for lod in LODS {
            let lod_time = if lod == Lod::Document {
                document_time
            } else {
                replicate(&params, lod, scale.reps, seed)
            };
            out.push(ImprovementPoint {
                alpha,
                skew,
                lod,
                f,
                lod_time,
                document_time,
                improvement: document_time.mean / lod_time.mean,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment1_shapes() {
        let scale = Scale {
            docs: 10,
            reps: 2,
            max_rounds: 40,
        };
        let pts = experiment1(&scale, 1);
        assert_eq!(pts.len(), 2 * 2 * 5 * 15);
        // γ grid is exact.
        assert!(pts.iter().any(|p| (p.gamma - 1.1).abs() < 1e-9));
        assert!(pts.iter().any(|p| (p.gamma - 2.5).abs() < 1e-9));
    }

    #[test]
    fn experiment1_caching_wins_at_high_alpha() {
        let scale = Scale {
            docs: 15,
            reps: 3,
            max_rounds: 60,
        };
        let pts = experiment1(&scale, 3);
        let cell = |cache, alpha: f64, gamma: f64| {
            pts.iter()
                .find(|p| {
                    p.cache == cache
                        && p.irrelevant == 0.0
                        && (p.alpha - alpha).abs() < 1e-9
                        && (p.gamma - gamma).abs() < 1e-9
                })
                .unwrap()
                .summary
                .mean
        };
        assert!(
            cell(CacheMode::Caching, 0.5, 1.5) < cell(CacheMode::NoCaching, 0.5, 1.5),
            "caching must beat nocaching at alpha=0.5, gamma=1.5"
        );
    }

    #[test]
    fn experiment2_response_time_decreases_with_i() {
        let scale = Scale {
            docs: 30,
            reps: 2,
            max_rounds: 60,
        };
        let pts = experiment2_vary_i(&scale, 5);
        let at = |x: f64| {
            pts.iter()
                .find(|p| {
                    p.cache == CacheMode::Caching
                        && (p.alpha - 0.1).abs() < 1e-9
                        && (p.x - x).abs() < 1e-9
                })
                .unwrap()
                .summary
                .mean
        };
        assert!(
            at(1.0) < at(0.0),
            "more irrelevant docs must mean faster sessions"
        );
    }

    #[test]
    fn experiment3_paragraph_lod_improves_at_low_f() {
        let scale = Scale {
            docs: 30,
            reps: 3,
            max_rounds: 60,
        };
        let pts = improvement_sweep(&scale, 9, 0.1, 3.0);
        let para_at_02 = pts
            .iter()
            .find(|p| p.lod == Lod::Paragraph && (p.f - 0.2).abs() < 1e-9)
            .unwrap();
        assert!(
            para_at_02.improvement > 1.1,
            "paragraph LOD improvement {} too small at F=0.2",
            para_at_02.improvement
        );
        // Document LOD improvement is identically 1.
        for p in pts.iter().filter(|p| p.lod == Lod::Document) {
            assert!((p.improvement - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn experiment4_higher_skew_more_improvement() {
        let scale = Scale {
            docs: 40,
            reps: 3,
            max_rounds: 60,
        };
        let low = improvement_sweep(&scale, 21, 0.1, 2.0);
        let high = improvement_sweep(&scale, 21, 0.1, 5.0);
        let peak = |pts: &[ImprovementPoint]| {
            pts.iter()
                .filter(|p| p.lod == Lod::Paragraph)
                .map(|p| p.improvement)
                .fold(f64::MIN, f64::max)
        };
        assert!(
            peak(&high) > peak(&low),
            "δ=5 peak {:.3} should exceed δ=2 peak {:.3}",
            peak(&high),
            peak(&low)
        );
    }
}
