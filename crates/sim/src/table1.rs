//! Regenerating Table 1: information contents of a draft of the paper.
//!
//! The paper demonstrates structural-characteristic generation on an
//! early draft of itself, listing IC, QIC and MQIC per organizational
//! unit for the query `{browsing, mobile, web}`. An abridged XML draft
//! of the manuscript is embedded here and pushed through the full
//! pipeline; absolute values differ from the paper's (their draft was
//! longer) but the structure and the qualitative pattern — query-heavy
//! sections dominating under QIC, no zero rows under MQIC — reproduce.

use mrtweb_content::query::Query;
use mrtweb_content::sc::StructuralCharacteristic;
use mrtweb_docmodel::document::Document;
use mrtweb_textproc::pipeline::ScPipeline;

/// The embedded abridged draft of the manuscript.
pub const PAPER_DRAFT_XML: &str = include_str!("../assets/paper_draft.xml");

/// The paper's demonstration query.
pub const TABLE1_QUERY: &str = "browsing mobile web";

/// Parses the embedded draft.
///
/// # Panics
///
/// Panics if the embedded asset is malformed (a build-time invariant).
pub fn paper_draft() -> Document {
    Document::parse_xml(PAPER_DRAFT_XML).expect("embedded paper draft must parse")
}

/// Builds the Table 1 structural characteristic: IC, QIC and MQIC of
/// every organizational unit of the draft under the demonstration
/// query.
pub fn build_table1() -> StructuralCharacteristic {
    let doc = paper_draft();
    let pipeline = ScPipeline::default();
    let index = pipeline.run(&doc);
    let query = Query::parse(TABLE1_QUERY, &pipeline);
    StructuralCharacteristic::from_index(&index, Some(&query))
}

/// Renders the regenerated Table 1 as text.
pub fn render_table1() -> String {
    build_table1().render_table()
}

/// Serializes the regenerated Table 1 as a JSON array — one object per
/// organizational unit with its IC, QIC, MQIC and size — for the
/// golden-fixture tests.
pub fn table1_json() -> String {
    use std::fmt::Write as _;

    let sc = build_table1();
    let entries = sc.entries();
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"path\": \"{}\", \"kind\": \"{}\", \"bytes\": {}, \
             \"ic\": {}, \"qic\": {}, \"mqic\": {}}}",
            e.path,
            e.kind.name(),
            e.bytes,
            crate::figures::json_f64(e.ic),
            crate::figures::json_f64(e.qic),
            crate::figures::json_f64(e.mqic),
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_docmodel::lod::Lod;
    use mrtweb_docmodel::unit::UnitPath;

    #[test]
    fn draft_parses_with_expected_shape() {
        let doc = paper_draft();
        // Abstract + 5 numbered sections.
        assert_eq!(doc.units_at(Lod::Section).len(), 6);
        assert!(doc.units_at(Lod::Paragraph).len() >= 20);
        assert!(doc.title().unwrap().contains("Weakly-Connected"));
    }

    #[test]
    fn contents_normalize_like_the_paper() {
        let sc = build_table1();
        let root = sc.entry_at(&UnitPath::root()).unwrap();
        assert!((root.ic - 1.0).abs() < 1e-9);
        assert!((root.qic - 1.0).abs() < 1e-9);
        assert!((root.mqic - 1.0).abs() < 1e-9);
    }

    #[test]
    fn additive_rule_across_sections() {
        let sc = build_table1();
        let section_sum: f64 = sc
            .entries()
            .iter()
            .filter(|e| e.kind == Lod::Section)
            .map(|e| e.ic)
            .sum();
        // Sections cover all content except the document title words.
        assert!(
            section_sum > 0.95 && section_sum <= 1.0 + 1e-9,
            "sum {section_sum}"
        );
    }

    #[test]
    fn qic_favors_query_heavy_units_over_ic() {
        // The introduction (mobile/web/browsing-heavy) should gain share
        // under QIC relative to the related-work section, as in the
        // paper's Table 1 where section 1 jumps from IC 0.118 to QIC 0.332.
        let sc = build_table1();
        let by_path = |idx: usize| {
            sc.entry_at(&UnitPath::from_indices([idx]))
                .unwrap_or_else(|| panic!("missing section {idx}"))
        };
        let intro = by_path(1);
        let ratio_intro = intro.qic / intro.ic.max(1e-12);
        let eval = by_path(5);
        let ratio_eval = eval.qic / eval.ic.max(1e-12);
        assert!(
            ratio_intro > ratio_eval,
            "introduction should gain more from the query ({ratio_intro:.2} vs {ratio_eval:.2})"
        );
    }

    #[test]
    fn mqic_never_zeroes_nonempty_units() {
        // The paper motivates MQIC by units whose QIC collapses to zero;
        // MQIC keeps every content-bearing unit positive (Table 1 rows
        // 3.2–3.3 show QIC 0.00000 but nonzero MQIC).
        let sc = build_table1();
        for e in sc.entries() {
            if e.ic > 1e-9 {
                assert!(e.mqic > 0.0, "unit {} lost all MQIC", e.path);
            }
        }
    }

    #[test]
    fn some_units_have_zero_qic_but_positive_ic() {
        let sc = build_table1();
        let zeroed = sc
            .entries()
            .iter()
            .filter(|e| e.kind == Lod::Paragraph && e.ic > 1e-6 && e.qic < 1e-12)
            .count();
        assert!(
            zeroed > 0,
            "expected at least one paragraph without query words"
        );
    }

    #[test]
    fn render_contains_all_columns() {
        let table = render_table1();
        assert!(table.contains("IC p"));
        assert!(table.contains("QIC"));
        assert!(table.contains("MQIC"));
        assert!(table.lines().count() > 20);
    }
}
