//! Extension experiment: bursty corruption and block interleaving.
//!
//! The paper's channel corrupts packets independently; real fades come
//! in bursts. For the MDS dispersal code a burst cannot change *whether*
//! a document reconstructs — any `M` survivors suffice — so one might
//! reach for block interleaving, the classic burst remedy. The ablation
//! here shows interleaving is **counterproductive** for multi-resolution
//! transmission: early termination depends on the highest-content clear
//! packets arriving *first*, and interleaving defers them behind
//! low-content and redundancy packets. Protecting against the burst that
//! might hit the hot prefix costs more than the burst does in
//! expectation — content-descending order is load-bearing, which is
//! precisely the paper's point.

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::gilbert::GilbertElliott;
use mrtweb_channel::link::Link;
use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::session::{download, Relevance, SessionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::model::SimDocument;
use crate::params::Params;
use crate::stats::Summary;

/// One measured cell of the bursty/interleaving comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstyPoint {
    /// Mean burst length (packets) of the Gilbert–Elliott channel.
    pub burst_len: f64,
    /// First-round interleaving depth (1 = off).
    pub interleave_depth: usize,
    /// Mean response time per (irrelevant) document.
    pub summary: Summary,
}

/// Runs one all-irrelevant browsing session over a bursty channel,
/// returning the mean response time.
pub fn run_bursty_session(params: &Params, burst_len: f64, lod: Lod, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let loss = GilbertElliott::matched(params.alpha, burst_len, seed ^ 0xb00b);
    let mut link = Link::new(Bandwidth::from_kbps(params.bandwidth_kbps), loss, seed);
    let config = SessionConfig {
        packet_size: params.packet_size,
        overhead: params.overhead,
        gamma: params.gamma,
        cache_mode: params.cache_mode,
        max_rounds: params.max_rounds,
        interleave_depth: params.interleave_depth,
    };
    let mut total = 0.0;
    for _ in 0..params.docs_per_session {
        let doc = SimDocument::draw(params, &mut rng);
        let plan = doc.plan_at(lod);
        let report = download(
            &plan,
            Relevance::irrelevant(params.threshold),
            &config,
            &mut link,
        );
        total += report.response_time;
    }
    total / params.docs_per_session as f64
}

/// Sweeps burst length × interleaving depth at paragraph LOD.
pub fn bursty_comparison(params: &Params, reps: usize, base_seed: u64) -> Vec<BurstyPoint> {
    let mut out = Vec::new();
    for &burst_len in &[1.5, 8.0, 20.0] {
        for &depth in &[1usize, 12] {
            let p = Params {
                interleave_depth: depth,
                ..params.clone()
            };
            let means: Vec<f64> = (0..reps)
                .map(|r| {
                    run_bursty_session(
                        &p,
                        burst_len,
                        Lod::Paragraph,
                        base_seed.wrapping_add(r as u64 * 7907),
                    )
                })
                .collect();
            out.push(BurstyPoint {
                burst_len,
                interleave_depth: depth,
                summary: Summary::of(&means),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_transport::session::CacheMode;

    fn params() -> Params {
        Params {
            alpha: 0.2,
            cache_mode: CacheMode::Caching,
            irrelevant_fraction: 1.0,
            threshold: 0.3,
            docs_per_session: 40,
            max_rounds: 200,
            ..Default::default()
        }
    }

    #[test]
    fn comparison_produces_full_grid() {
        let p = Params {
            docs_per_session: 8,
            ..params()
        };
        let pts = bursty_comparison(&p, 2, 1);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|pt| pt.summary.mean > 0.0));
    }

    #[test]
    fn interleaving_is_counterproductive_for_content_ordering() {
        // The pinned negative result: even under 20-packet bursts,
        // deferring the hot clear-text packets costs early termination
        // more than burst protection saves.
        let base = params();
        let mean = |depth: usize, reps: usize| {
            let p = Params {
                interleave_depth: depth,
                ..base.clone()
            };
            let vals: Vec<f64> = (0..reps)
                .map(|r| run_bursty_session(&p, 20.0, Lod::Paragraph, 100 + r as u64))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let plain = mean(1, 6);
        let interleaved = mean(12, 6);
        assert!(
            plain < interleaved,
            "content-descending order should beat interleaved order \
             ({plain:.3}s vs {interleaved:.3}s)"
        );
    }

    #[test]
    fn bursts_do_not_change_reconstruction_time_much() {
        // For relevant documents (full reconstruction) the MDS property
        // makes burst length nearly irrelevant at equal long-run rate.
        let p = Params {
            irrelevant_fraction: 0.0,
            ..params()
        };
        let mean = |burst: f64| {
            let vals: Vec<f64> = (0..6)
                .map(|r| {
                    let rng_seed = 500 + r as u64;
                    let loss = GilbertElliott::matched(p.alpha, burst, rng_seed ^ 0xb00b);
                    let mut link =
                        Link::new(Bandwidth::from_kbps(p.bandwidth_kbps), loss, rng_seed);
                    let config = SessionConfig {
                        packet_size: p.packet_size,
                        overhead: p.overhead,
                        gamma: p.gamma,
                        cache_mode: p.cache_mode,
                        max_rounds: p.max_rounds,
                        interleave_depth: 1,
                    };
                    let mut rng = StdRng::seed_from_u64(rng_seed);
                    let mut total = 0.0;
                    for _ in 0..20 {
                        let doc = SimDocument::draw(&p, &mut rng);
                        let plan = doc.plan_at(Lod::Document);
                        total += download(&plan, Relevance::relevant(), &config, &mut link)
                            .response_time;
                    }
                    total / 20.0
                })
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let short = mean(1.5);
        let long = mean(20.0);
        assert!(
            (short - long).abs() / short < 0.25,
            "reconstruction time should be burst-insensitive ({short:.2}s vs {long:.2}s)"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params();
        let a = run_bursty_session(&p, 8.0, Lod::Paragraph, 5);
        let b = run_bursty_session(&p, 8.0, Lod::Paragraph, 5);
        assert_eq!(a, b);
    }
}
