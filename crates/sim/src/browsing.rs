//! Browsing sessions: the unit of measurement of §5.
//!
//! "Each simulated browsing session will visit 200 random documents,
//! with a certain percentage of documents, I, defined to be irrelevant.
//! Each irrelevant document will be discovered to be irrelevant by a
//! client after a total information content of F has been received. …
//! The mean response time taken to visit a document in a session is
//! measured."

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::link::Link;
use mrtweb_docmodel::lod::Lod;
use mrtweb_transport::session::{download, Outcome, Relevance, SessionConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::model::SimDocument;
use crate::params::Params;
use crate::stats::Summary;

/// What one browsing session measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Mean response time per document (seconds).
    pub mean_response_time: f64,
    /// Documents visited.
    pub docs: usize,
    /// Documents that exhausted the retry budget.
    pub failed: usize,
    /// Total packets pushed onto the wire.
    pub packets_sent: u64,
}

/// Runs one browsing session at the given LOD and parameters.
///
/// The session visits `params.docs_per_session` documents over a single
/// persistent lossy link; `⌊I·docs⌋` of them (at shuffled positions)
/// are irrelevant and judged so at content `F`.
pub fn run_session(params: &Params, lod: Lod, seed: u64) -> SessionResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut link = Link::new(
        Bandwidth::from_kbps(params.bandwidth_kbps),
        BernoulliChannel::new(params.alpha, seed ^ 0x9e37_79b9_7f4a_7c15),
        seed ^ 0x5851_f42d_4c95_7f2d,
    );
    let config = SessionConfig {
        packet_size: params.packet_size,
        overhead: params.overhead,
        gamma: params.gamma,
        cache_mode: params.cache_mode,
        max_rounds: params.max_rounds,
        interleave_depth: params.interleave_depth,
    };

    // Exactly ⌊I·docs⌋ irrelevant documents at shuffled positions.
    let docs = params.docs_per_session;
    let irrelevant_count = ((params.irrelevant_fraction * docs as f64).round() as usize).min(docs);
    let mut flags = vec![false; docs];
    for f in flags.iter_mut().take(irrelevant_count) {
        *f = true;
    }
    flags.shuffle(&mut rng);

    let mut total_time = 0.0;
    let mut failed = 0usize;
    let mut packets = 0u64;
    for &irrelevant in &flags {
        let doc = SimDocument::draw(params, &mut rng);
        let plan = doc.plan_at(lod);
        let relevance = if irrelevant {
            Relevance::irrelevant(params.threshold)
        } else {
            Relevance::relevant()
        };
        let report = download(&plan, relevance, &config, &mut link);
        total_time += report.response_time;
        packets += report.packets_sent;
        if report.outcome == Outcome::Failed {
            failed += 1;
        }
    }
    SessionResult {
        mean_response_time: total_time / docs as f64,
        docs,
        failed,
        packets_sent: packets,
    }
}

/// Repeats [`run_session`] `reps` times with distinct seeds and
/// summarizes the per-session mean response times — the quantity the
/// paper plots.
pub fn replicate(params: &Params, lod: Lod, reps: usize, base_seed: u64) -> Summary {
    let means: Vec<f64> = (0..reps)
        .map(|r| {
            run_session(params, lod, base_seed.wrapping_add(r as u64 * 7919)).mean_response_time
        })
        .collect();
    Summary::of(&means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_transport::session::CacheMode;

    fn quick_params() -> Params {
        Params {
            docs_per_session: 30,
            max_rounds: 100,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = quick_params();
        let a = run_session(&p, Lod::Document, 11);
        let b = run_session(&p, Lod::Document, 11);
        assert_eq!(a, b);
        let c = run_session(&p, Lod::Document, 12);
        assert_ne!(a.mean_response_time, c.mean_response_time);
    }

    #[test]
    fn perfect_channel_matches_hand_math() {
        // α = 0, all relevant: every document needs exactly M = 40
        // packets of 260 bytes at 2400 B/s → 4.333 s.
        let p = Params {
            alpha: 0.0,
            irrelevant_fraction: 0.0,
            docs_per_session: 10,
            ..Default::default()
        };
        let r = run_session(&p, Lod::Document, 5);
        assert!((r.mean_response_time - 40.0 * 260.0 / 2400.0).abs() < 1e-9);
        assert_eq!(r.failed, 0);
        assert_eq!(r.packets_sent, 400);
    }

    #[test]
    fn irrelevant_docs_cut_response_time() {
        let base = Params {
            alpha: 0.0,
            docs_per_session: 40,
            ..Default::default()
        };
        let all_relevant = run_session(
            &Params {
                irrelevant_fraction: 0.0,
                ..base.clone()
            },
            Lod::Document,
            3,
        );
        let half_irrelevant = run_session(
            &Params {
                irrelevant_fraction: 0.5,
                ..base.clone()
            },
            Lod::Document,
            3,
        );
        assert!(
            half_irrelevant.mean_response_time < all_relevant.mean_response_time,
            "early termination must reduce mean response time"
        );
    }

    #[test]
    fn caching_never_slower_at_high_alpha() {
        let base = Params {
            alpha: 0.4,
            docs_per_session: 20,
            irrelevant_fraction: 0.0,
            ..Default::default()
        };
        let nc = replicate(
            &Params {
                cache_mode: CacheMode::NoCaching,
                ..base.clone()
            },
            Lod::Document,
            5,
            77,
        );
        let c = replicate(
            &Params {
                cache_mode: CacheMode::Caching,
                ..base.clone()
            },
            Lod::Document,
            5,
            77,
        );
        assert!(
            c.mean < nc.mean,
            "caching {:.2}s vs nocaching {:.2}s",
            c.mean,
            nc.mean
        );
    }

    #[test]
    fn finer_lod_speeds_up_irrelevant_browsing() {
        let p = Params {
            irrelevant_fraction: 1.0,
            threshold: 0.2,
            cache_mode: CacheMode::Caching,
            docs_per_session: 40,
            ..Default::default()
        };
        let doc_lod = replicate(&p, Lod::Document, 5, 13);
        let para_lod = replicate(&p, Lod::Paragraph, 5, 13);
        assert!(
            para_lod.mean < doc_lod.mean,
            "paragraph LOD {:.3}s should beat document LOD {:.3}s",
            para_lod.mean,
            doc_lod.mean
        );
    }

    #[test]
    fn replicate_reports_tight_spread() {
        // The paper observes 1–5% relative std; allow a looser bound for
        // our shorter sessions.
        let p = quick_params();
        let s = replicate(&p, Lod::Document, 10, 1);
        assert!(
            s.relative_std() < 0.25,
            "relative std {:.3}",
            s.relative_std()
        );
        assert_eq!(s.n, 10);
    }
}
