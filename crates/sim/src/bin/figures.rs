//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [table1|fig2|fig3|fig4|fig5|fig6|fig7|all] [--paper|--quick|--docs N --reps R]
//! ```
//!
//! `--quick` (the default) runs a reduced workload suitable for smoke
//! runs; `--paper` runs the full 200-documents × 50-repetitions grid of
//! the paper (slow: minutes).

use std::env;

use mrtweb_docmodel::lod::Lod;
use mrtweb_sim::baselines::{compare_baselines, Strategy};
use mrtweb_sim::experiments::{
    experiment1, experiment2_vary_f, experiment2_vary_i, experiment3, experiment4, Scale,
};
use mrtweb_sim::figures::{
    render_figure2, render_figure3, render_figure4, render_figure5, render_improvement,
};
use mrtweb_sim::params::Params;
use mrtweb_sim::table1::render_table1;
use mrtweb_sim::throughput::replicate_throughput;
use mrtweb_sim::weakconn::{replicate_outage, OutageSpec};
use mrtweb_transport::session::CacheMode;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let what = args.first().map_or("all", String::as_str);
    let mut scale = Scale {
        docs: 60,
        reps: 5,
        max_rounds: 100,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => scale = Scale::paper(),
            "--quick" => scale = Scale::quick(),
            "--docs" => {
                i += 1;
                scale.docs = args[i].parse().expect("--docs needs a number");
            }
            "--reps" => {
                i += 1;
                scale.reps = args[i].parse().expect("--reps needs a number");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let seed = 20000; // ICDCS 2000

    let run = |name: &str| what == "all" || what == name;
    if run("table1") {
        println!("=== Table 1: information contents of a draft of this paper ===");
        println!("query = {{browsing, mobile, web}}\n{}", render_table1());
    }
    if run("fig2") {
        println!("{}", render_figure2());
    }
    if run("fig3") {
        println!("{}", render_figure3());
    }
    if run("fig4") {
        eprintln!(
            "running experiment 1 (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        let pts = experiment1(&scale, seed);
        println!("{}", render_figure4(&pts));
    }
    if run("fig5") {
        eprintln!(
            "running experiment 2 (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        let vi = experiment2_vary_i(&scale, seed);
        let vf = experiment2_vary_f(&scale, seed);
        println!("{}", render_figure5(&vi, &vf));
    }
    if run("fig6") {
        eprintln!(
            "running experiment 3 (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        let pts = experiment3(&scale, seed);
        println!("{}", render_improvement(&pts, "Figure 6"));
    }
    if run("fig7") {
        eprintln!(
            "running experiment 4 (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        let pts = experiment4(&scale, seed);
        println!("{}", render_improvement(&pts, "Figure 7"));
    }
    // Extension experiments (this reproduction, beyond the paper).
    if run("baselines") {
        eprintln!(
            "running baseline comparison (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        let p = Params {
            cache_mode: CacheMode::Caching,
            docs_per_session: scale.docs,
            max_rounds: scale.max_rounds,
            threshold: 0.2,
            ..Default::default()
        };
        let pts = compare_baselines(&p, scale.reps, seed);
        println!("Extension: strategy comparison (I = 0.5, F = 0.2) — response time (s)");
        println!(
            "{:>24} {:>10} {:>10} {:>10}",
            "strategy", "α=0.1", "α=0.3", "α=0.5"
        );
        for strategy in [
            Strategy::Mrt(Lod::Paragraph),
            Strategy::Mrt(Lod::Document),
            Strategy::SummaryFirst {
                summary_fraction: 0.08,
            },
            Strategy::Arq,
        ] {
            let name = match strategy {
                Strategy::Mrt(Lod::Paragraph) => "MRT (paragraph)".to_string(),
                Strategy::Mrt(lod) => format!("MRT ({})", lod.name()),
                Strategy::SummaryFirst { .. } => "summary-first (8%)".to_string(),
                Strategy::Arq => "selective-repeat ARQ".to_string(),
            };
            print!("{name:>24}");
            for alpha in [0.1, 0.3, 0.5] {
                let v = pts
                    .iter()
                    .find(|p| p.strategy == strategy && (p.alpha - alpha).abs() < 1e-9)
                    .map_or(f64::NAN, |p| p.summary.mean);
                print!(" {v:>10.2}");
            }
            println!();
        }
        println!();
    }
    if run("throughput") {
        eprintln!(
            "running throughput experiment (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        println!("Extension: goodput (content units/s) per LOD, I = 0.7, F = 0.3, Caching");
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "α", "document", "section", "subsect", "paragraph"
        );
        for alpha in [0.1, 0.3, 0.5] {
            let p = Params {
                alpha,
                cache_mode: CacheMode::Caching,
                irrelevant_fraction: 0.7,
                threshold: 0.3,
                docs_per_session: scale.docs,
                max_rounds: scale.max_rounds,
                ..Default::default()
            };
            print!("{alpha:>6.1}");
            for lod in [Lod::Document, Lod::Section, Lod::Subsection, Lod::Paragraph] {
                let (g, _) = replicate_throughput(&p, lod, scale.reps, seed);
                print!(" {:>12.4}", g.mean);
            }
            println!();
        }
        println!();
    }
    if run("weakconn") {
        eprintln!(
            "running weak-connectivity experiment (docs={}, reps={})...",
            scale.docs, scale.reps
        );
        println!("Extension: response time (s) under disconnection windows (α = 0.05 base)");
        println!(
            "{:>28} {:>12} {:>12}",
            "outage regime", "NoCaching", "Caching"
        );
        for (label, spec) in [
            (
                "none",
                OutageSpec {
                    p_drop: 1e-12,
                    p_recover: 1.0,
                },
            ),
            (
                "5% time, ~20-pkt bursts",
                OutageSpec {
                    p_drop: 0.0026,
                    p_recover: 0.05,
                },
            ),
            (
                "20% time, ~50-pkt bursts",
                OutageSpec {
                    p_drop: 0.005,
                    p_recover: 0.02,
                },
            ),
        ] {
            print!("{label:>28}");
            for cache in [CacheMode::NoCaching, CacheMode::Caching] {
                let p = Params {
                    alpha: 0.05,
                    cache_mode: cache,
                    irrelevant_fraction: 0.0,
                    docs_per_session: scale.docs,
                    max_rounds: scale.max_rounds,
                    ..Default::default()
                };
                let s = replicate_outage(&p, &spec, Lod::Document, scale.reps, seed);
                print!(" {:>12.2}", s.mean);
            }
            println!();
        }
        println!();
    }
}
