//! Figure data generation and text rendering.
//!
//! Figures 2 and 3 are analytic (negative-binomial redundancy planning,
//! re-exported from `mrtweb-erasure`); Figures 4–7 come from the
//! simulation drivers in [`crate::experiments`]. The renderers here
//! print each figure as aligned text series so a run of the `figures`
//! binary regenerates every artifact of the paper's evaluation.

use std::fmt::Write as _;

use mrtweb_erasure::redundancy::{figure2, figure3, Figure2Point, Figure3Point};
use mrtweb_erasure::Error;
use mrtweb_transport::session::CacheMode;

use crate::experiments::{Exp1Point, Exp2Point, ImprovementPoint, ALPHAS, LODS};

/// Figure 2 data for both success targets: `(S, points)`.
///
/// # Errors
///
/// Propagates redundancy-model errors (none for these inputs).
pub fn figure2_data() -> Result<Vec<(f64, Vec<Figure2Point>)>, Error> {
    Ok(vec![(0.95, figure2(0.95)?), (0.99, figure2(0.99)?)])
}

/// Figure 3 data for both success targets: `(S, points)`.
///
/// # Errors
///
/// Propagates redundancy-model errors (none for these inputs).
pub fn figure3_data() -> Result<Vec<(f64, Vec<Figure3Point>)>, Error> {
    Ok(vec![(0.95, figure3(0.95)?), (0.99, figure3(0.99)?)])
}

/// Renders Figure 2 (cooked packets N versus raw packets M).
pub fn render_figure2() -> String {
    let mut out = String::new();
    for (s, points) in figure2_data().expect("static inputs are valid") {
        let _ = writeln!(
            out,
            "Figure 2: cooked packets N vs raw packets M (S = {:.0}%)",
            s * 100.0
        );
        let _ = write!(out, "{:>6}", "M");
        for &alpha in &ALPHAS {
            let _ = write!(out, "  α={alpha:<4}");
        }
        let _ = writeln!(out);
        for m in (10..=100).step_by(10) {
            let _ = write!(out, "{m:>6}");
            for &alpha in &ALPHAS {
                let n = points
                    .iter()
                    .find(|p| p.m == m && (p.alpha - alpha).abs() < 1e-9)
                    .map_or(0, |p| p.n);
                let _ = write!(out, "  {n:>6}");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Figure 3 (redundancy ratio γ versus failure probability α).
pub fn render_figure3() -> String {
    let mut out = String::new();
    for (s, points) in figure3_data().expect("static inputs are valid") {
        let _ = writeln!(
            out,
            "Figure 3: redundancy ratio γ vs α (S = {:.0}%)",
            s * 100.0
        );
        let _ = writeln!(out, "{:>6} {:>8} {:>8} {:>8}", "α", "M=10", "M=50", "M=100");
        for i in 1..=5 {
            let alpha = i as f64 / 10.0;
            let _ = write!(out, "{alpha:>6.1}");
            for m in [10usize, 50, 100] {
                let g = points
                    .iter()
                    .find(|p| p.m == m && (p.alpha - alpha).abs() < 1e-9)
                    .map_or(f64::NAN, |p| p.gamma);
                let _ = write!(out, " {g:>8.3}");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

fn cache_name(c: CacheMode) -> &'static str {
    match c {
        CacheMode::NoCaching => "NoCaching",
        CacheMode::Caching => "Caching",
    }
}

/// Renders Experiment 1 (Figure 4): response time vs γ, one panel per
/// (cache mode, I).
pub fn render_figure4(points: &[Exp1Point]) -> String {
    let mut out = String::new();
    for cache in [CacheMode::NoCaching, CacheMode::Caching] {
        for irrelevant in [0.0, 0.5] {
            let _ = writeln!(
                out,
                "Figure 4 panel: {} (I = {irrelevant}) — response time (s) vs γ",
                cache_name(cache)
            );
            let _ = write!(out, "{:>6}", "γ");
            for &alpha in &ALPHAS {
                let _ = write!(out, "  α={alpha:<6}");
            }
            let _ = writeln!(out);
            for step in 0..=14 {
                let gamma = 1.1 + 0.1 * step as f64;
                let _ = write!(out, "{gamma:>6.1}");
                for &alpha in &ALPHAS {
                    let p = points.iter().find(|p| {
                        p.cache == cache
                            && (p.irrelevant - irrelevant).abs() < 1e-9
                            && (p.alpha - alpha).abs() < 1e-9
                            && (p.gamma - gamma).abs() < 1e-9
                    });
                    match p {
                        Some(p) => {
                            let _ = write!(out, "  {:>8.2}", p.summary.mean);
                        }
                        None => {
                            let _ = write!(out, "  {:>8}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Renders Experiment 2 (Figure 5): response time vs I (top panels) or
/// vs F (bottom panels).
pub fn render_figure5(vary_i: &[Exp2Point], vary_f: &[Exp2Point]) -> String {
    let mut out = String::new();
    for (label, axis, points) in [
        ("F = 0.5, varying I", "I", vary_i),
        ("I = 0.5, varying F", "F", vary_f),
    ] {
        for cache in [CacheMode::NoCaching, CacheMode::Caching] {
            let _ = writeln!(
                out,
                "Figure 5 panel: {} ({label}) — response time (s) vs {axis}",
                cache_name(cache)
            );
            let _ = write!(out, "{axis:>6}");
            for &alpha in &ALPHAS {
                let _ = write!(out, "  α={alpha:<6}");
            }
            let _ = writeln!(out);
            for step in 0..=10 {
                let x = step as f64 / 10.0;
                let _ = write!(out, "{x:>6.1}");
                for &alpha in &ALPHAS {
                    let p = points.iter().find(|p| {
                        p.cache == cache && (p.alpha - alpha).abs() < 1e-9 && (p.x - x).abs() < 1e-9
                    });
                    match p {
                        Some(p) => {
                            let _ = write!(out, "  {:>8.2}", p.summary.mean);
                        }
                        None => {
                            let _ = write!(out, "  {:>8}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Renders an improvement figure (Experiments 3 and 4, Figures 6 and 7):
/// improvement vs F per LOD, one panel per `(α, δ)` pair present.
pub fn render_improvement(points: &[ImprovementPoint], figure_name: &str) -> String {
    let mut out = String::new();
    let mut panels: Vec<(f64, f64)> = points.iter().map(|p| (p.alpha, p.skew)).collect();
    panels.sort_by(|a, b| a.partial_cmp(b).unwrap());
    panels.dedup();
    for (alpha, skew) in panels {
        let _ = writeln!(
            out,
            "{figure_name} panel: Caching (I = 1, α = {alpha}, δ = {skew}) — improvement vs F"
        );
        let _ = write!(out, "{:>6}", "F");
        for lod in LODS {
            let _ = write!(out, "  {:>12}", lod.name());
        }
        let _ = writeln!(out);
        for step in 1..=10 {
            let f = step as f64 / 10.0;
            let _ = write!(out, "{f:>6.1}");
            for lod in LODS {
                let p = points.iter().find(|p| {
                    (p.alpha - alpha).abs() < 1e-9
                        && (p.skew - skew).abs() < 1e-9
                        && p.lod == lod
                        && (p.f - f).abs() < 1e-9
                });
                match p {
                    Some(p) => {
                        let _ = write!(out, "  {:>12.3}", p.improvement);
                    }
                    None => {
                        let _ = write!(out, "  {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats an `f64` as a JSON number, or `null` when it is not finite.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes improvement points (Experiments 3 and 4, Figures 6 and 7)
/// as a JSON array — one object per line, mean times only — for the
/// golden-fixture tests.
pub fn improvement_points_json(points: &[ImprovementPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"alpha\": {}, \"skew\": {}, \"lod\": \"{}\", \"f\": {}, \
             \"improvement\": {}, \"lod_time\": {}, \"document_time\": {}}}",
            json_f64(p.alpha),
            json_f64(p.skew),
            p.lod.name(),
            json_f64(p.f),
            json_f64(p.improvement),
            json_f64(p.lod_time.mean),
            json_f64(p.document_time.mean),
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{experiment3, Scale};

    #[test]
    fn figure2_rendering_has_all_rows() {
        let text = render_figure2();
        assert!(text.contains("S = 95%"));
        assert!(text.contains("S = 99%"));
        // 10 M-rows per panel.
        assert_eq!(text.matches('\n').count(), 2 * (1 + 1 + 10 + 1));
    }

    #[test]
    fn figure3_rendering_monotone_gamma() {
        let data = figure3_data().unwrap();
        for (_, pts) in data {
            for m in [10usize, 50, 100] {
                let series: Vec<f64> = (1..=5)
                    .map(|i| {
                        let alpha = i as f64 / 10.0;
                        pts.iter()
                            .find(|p| p.m == m && (p.alpha - alpha).abs() < 1e-9)
                            .unwrap()
                            .gamma
                    })
                    .collect();
                for w in series.windows(2) {
                    assert!(w[1] > w[0], "γ must grow with α");
                }
            }
        }
    }

    #[test]
    fn improvement_rendering_contains_panels() {
        let scale = Scale {
            docs: 6,
            reps: 1,
            max_rounds: 30,
        };
        let pts = experiment3(&scale, 2);
        let text = render_improvement(&pts, "Figure 6");
        assert!(text.contains("α = 0.1"));
        assert!(text.contains("α = 0.5"));
        assert!(text.contains("paragraph"));
    }
}
