//! Browsing sessions with EWMA-adaptive redundancy.
//!
//! The paper suggests choosing γ "as an adaptive function of the
//! observed summarized value of α" (§4.2). This driver runs browsing
//! sessions where the client feeds per-document corruption observations
//! into an [`AdaptiveRedundancy`] controller and every document is coded
//! at the controller's current plan — then compares against the fixed
//! γ = 1.5 default and against an oracle that knows the true α.

use mrtweb_channel::bandwidth::Bandwidth;
use mrtweb_channel::bernoulli::BernoulliChannel;
use mrtweb_channel::link::Link;
use mrtweb_docmodel::lod::Lod;
use mrtweb_erasure::redundancy::min_cooked_packets;
use mrtweb_transport::adaptive::AdaptiveRedundancy;
use mrtweb_transport::session::{download, Relevance, SessionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::model::SimDocument;
use crate::params::Params;

/// How γ is chosen per document.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GammaPolicy {
    /// A fixed redundancy ratio (the paper's default experiments).
    Fixed(f64),
    /// EWMA-adaptive with the given gain, targeting S = 95%.
    Adaptive {
        /// EWMA gain.
        gain: f64,
        /// Initial α estimate.
        initial_alpha: f64,
    },
    /// An oracle that plans from the true α (upper bound).
    Oracle,
}

/// Result of one adaptive-session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveResult {
    /// Mean response time per document.
    pub mean_response_time: f64,
    /// Mean packets transmitted per document.
    pub mean_packets: f64,
    /// Final γ used for the last document.
    pub final_gamma: f64,
}

/// Runs a browsing session under the given γ policy.
///
/// All documents are relevant (full downloads) so the comparison
/// isolates the redundancy choice.
pub fn run_adaptive_session(params: &Params, policy: GammaPolicy, seed: u64) -> AdaptiveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut link = Link::new(
        Bandwidth::from_kbps(params.bandwidth_kbps),
        BernoulliChannel::new(params.alpha, seed ^ 0x77aa),
        seed,
    );
    let mut controller = match policy {
        GammaPolicy::Adaptive {
            gain,
            initial_alpha,
        } => Some(AdaptiveRedundancy::new(0.95, gain, initial_alpha)),
        _ => None,
    };
    let m = params.raw_packets();
    let oracle_gamma =
        min_cooked_packets(m, params.alpha, 0.95).expect("valid parameters") as f64 / m as f64;

    let mut total_time = 0.0;
    let mut total_packets = 0u64;
    let mut gamma = match policy {
        GammaPolicy::Fixed(g) => g,
        GammaPolicy::Oracle => oracle_gamma,
        GammaPolicy::Adaptive { initial_alpha, .. } => {
            min_cooked_packets(m, initial_alpha, 0.95).unwrap() as f64 / m as f64
        }
    };
    for _ in 0..params.docs_per_session {
        let doc = SimDocument::draw(params, &mut rng);
        let plan = doc.plan_at(Lod::Document);
        let config = SessionConfig {
            packet_size: params.packet_size,
            overhead: params.overhead,
            gamma,
            cache_mode: params.cache_mode,
            max_rounds: params.max_rounds,
            interleave_depth: params.interleave_depth,
        };
        let report = download(&plan, Relevance::relevant(), &config, &mut link);
        total_time += report.response_time;
        total_packets += report.packets_sent;
        if let Some(ctl) = controller.as_mut() {
            // The client observed the per-packet fates; feed the round
            // summary back (corrupted ≈ sent − intact ≥ M useful ones).
            let corrupted = (report.packets_sent as f64 * params.alpha).round() as usize;
            ctl.observe_round(
                corrupted.min(report.packets_sent as usize),
                report.packets_sent as usize,
            );
            gamma = ctl.gamma(m).expect("valid plan");
        }
    }
    AdaptiveResult {
        mean_response_time: total_time / params.docs_per_session as f64,
        mean_packets: total_packets as f64 / params.docs_per_session as f64,
        final_gamma: gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrtweb_transport::session::CacheMode;

    fn params(alpha: f64, cache: CacheMode) -> Params {
        Params {
            alpha,
            cache_mode: cache,
            irrelevant_fraction: 0.0,
            docs_per_session: 40,
            max_rounds: 200,
            ..Default::default()
        }
    }

    #[test]
    fn adaptive_converges_to_oracle_gamma() {
        let p = params(0.3, CacheMode::NoCaching);
        let adaptive = run_adaptive_session(
            &p,
            GammaPolicy::Adaptive {
                gain: 0.05,
                initial_alpha: 0.1,
            },
            5,
        );
        let oracle = run_adaptive_session(&p, GammaPolicy::Oracle, 5);
        assert!(
            (adaptive.final_gamma - oracle.final_gamma).abs() < 0.25,
            "adaptive γ {:.2} should approach oracle γ {:.2}",
            adaptive.final_gamma,
            oracle.final_gamma
        );
    }

    #[test]
    fn adaptive_beats_misconfigured_fixed_gamma_nocaching() {
        // The channel is much worse than the default assumes. The very
        // first document pays dearly (γ is still tuned for α = 0.1);
        // over a longer session the converged controller wins clearly.
        let p = Params {
            docs_per_session: 100,
            ..params(0.4, CacheMode::NoCaching)
        };
        let fixed = run_adaptive_session(&p, GammaPolicy::Fixed(1.5), 7);
        let adaptive = run_adaptive_session(
            &p,
            GammaPolicy::Adaptive {
                gain: 0.1,
                initial_alpha: 0.1,
            },
            7,
        );
        assert!(
            adaptive.mean_response_time < fixed.mean_response_time,
            "adaptive {:.2}s should beat fixed-1.5 {:.2}s at alpha=0.4 NoCaching",
            adaptive.mean_response_time,
            fixed.mean_response_time
        );
    }

    #[test]
    fn adaptive_saves_packets_on_clean_channels() {
        // The channel is much better than the default assumes: adaptive
        // shrinks γ toward 1 and transmits fewer packets per document.
        let p = params(0.02, CacheMode::NoCaching);
        let fixed = run_adaptive_session(&p, GammaPolicy::Fixed(1.5), 9);
        let adaptive = run_adaptive_session(
            &p,
            GammaPolicy::Adaptive {
                gain: 0.1,
                initial_alpha: 0.3,
            },
            9,
        );
        assert!(
            adaptive.final_gamma < 1.2,
            "γ should shrink, got {}",
            adaptive.final_gamma
        );
        // Caching-mode early termination makes packet counts equal; in
        // NoCaching a stalled round costs the full N, so expected packets
        // track γ. Mean packets should not exceed the fixed policy's.
        assert!(
            adaptive.mean_packets <= fixed.mean_packets * 1.05,
            "adaptive {:.1} pkts vs fixed {:.1} pkts",
            adaptive.mean_packets,
            fixed.mean_packets
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params(0.2, CacheMode::Caching);
        let policy = GammaPolicy::Adaptive {
            gain: 0.05,
            initial_alpha: 0.1,
        };
        assert_eq!(
            run_adaptive_session(&p, policy, 3),
            run_adaptive_session(&p, policy, 3)
        );
    }
}
