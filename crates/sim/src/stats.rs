//! Summary statistics over experiment repetitions.
//!
//! "The same experiment is repeated 50 times and the average of the 50
//! mean response times is taken in plotting our curves … the standard
//! deviation over the 50 repetitions is only between 1% to 5% of the
//! mean" (§5/§5.1). [`Summary`] reports exactly those quantities plus a
//! 95% confidence interval.

use serde::{Deserialize, Serialize};

/// Mean, spread and confidence interval of a set of repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of repetitions.
    pub n: usize,
    /// Mean of the repetition values.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a slice of repetition values.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize zero repetitions");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let ci95 = 1.96 * std_dev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            std_dev,
            ci95,
        }
    }

    /// Standard deviation as a fraction of the mean (the paper quotes
    /// 1–5%); 0 when the mean is 0.
    pub fn relative_std(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// The `q`-th percentile (0–100) of a sample, by linear interpolation
/// between closest ranks.
///
/// # Panics
///
/// Panics on an empty slice or `q` outside `[0, 100]`.
///
/// # Example
///
/// ```
/// use mrtweb_sim::stats::percentile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// ```
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take a percentile of no data");
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_values() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.relative_std(), 0.0);
    }

    #[test]
    fn known_sample() {
        // values 1..5: mean 3, sample variance 2.5.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * 2.5f64.sqrt() / 5f64.sqrt()).abs() < 1e-12);
        assert!((s.relative_std() - 2.5f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero repetitions")]
    fn empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 90.0), 46.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let a = [3.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&a, 75.0), percentile(&b, 75.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_range_checked() {
        let _ = percentile(&[1.0], 101.0);
    }
}
