//! Property tests rotting dispersed blobs at rest.
//!
//! `decode_dispersed` promises: per-packet CRC-32 screening, groups
//! reconstructing from any `M` intact packets, typed errors (never
//! panics) below that — for arbitrary payloads, geometry, and damage
//! patterns.

use proptest::prelude::*;

use mrtweb_store::codec::{decode_dispersed, encode_dispersed};

/// Byte offsets of the `i`-th packet record of group `g` in the blob.
/// Layout: 29-byte header, then per group 4 bytes of length plus `n`
/// records of `packet_size + 4` (packet ‖ crc32).
fn record_range(g: usize, p: usize, n: usize, packet_size: usize) -> std::ops::Range<usize> {
    let record = packet_size + 4;
    let start = 29 + g * (4 + n * record) + 4 + p * record;
    start..start + record
}

proptest! {
    /// Damaging up to `N - M` packets per group never changes the
    /// decoded bytes; damaging more fails with a typed error.
    #[test]
    fn rot_below_margin_is_invisible_above_fails(
        m in 1usize..8,
        extra in 0usize..6,
        packet_size in 8usize..64,
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        rot_per_group in 0usize..10,
        seed in any::<u64>(),
    ) {
        let n = m + extra;
        let blob = encode_dispersed(&data, m, n, packet_size).unwrap();
        let record = packet_size + 4;
        let n_groups = (blob.len() - 29) / (4 + n * record);
        let rot = rot_per_group.min(n);

        let mut rotted = blob.clone();
        let mut state = seed | 1;
        for g in 0..n_groups {
            // Rot `rot` distinct packets of this group.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                idx.swap(i, (state >> 33) as usize % (i + 1));
            }
            for &p in idx.iter().take(rot) {
                let r = record_range(g, p, n, packet_size);
                // Flip one payload byte: CRC-32 must catch it.
                rotted[r.start + (state as usize % packet_size)] ^= 0x01;
            }
        }

        match decode_dispersed(&rotted) {
            Ok(decoded) => {
                prop_assert!(rot <= n - m, "decode passed with {} > N-M={} rotted", rot, n - m);
                prop_assert_eq!(decoded, data);
            }
            Err(_) => {
                prop_assert!(rot > n - m, "decode failed with only {} ≤ N-M={} rotted", rot, n - m);
            }
        }
    }

    /// Rotting a stored CRC (rather than the packet) equally disables
    /// only that packet; the blob still decodes while ≥ M survive.
    #[test]
    fn crc_rot_is_equivalent_to_packet_rot(
        m in 1usize..6,
        extra in 1usize..6,
        packet_size in 8usize..48,
        data in proptest::collection::vec(any::<u8>(), 1..1000),
        seed in any::<u64>(),
    ) {
        let n = m + extra;
        let blob = encode_dispersed(&data, m, n, packet_size).unwrap();
        let record = packet_size + 4;
        let n_groups = (blob.len() - 29) / (4 + n * record);
        let victim = seed as usize % n;
        let mut rotted = blob.clone();
        for g in 0..n_groups {
            let r = record_range(g, victim, n, packet_size);
            // Damage the 4 stored CRC bytes only.
            for b in &mut rotted[r.end - 4..r.end] {
                *b ^= 0xFF;
            }
        }
        let decoded = decode_dispersed(&rotted).unwrap();
        prop_assert_eq!(decoded, data);
    }

    /// Arbitrary byte-garbage input never panics the decoder.
    #[test]
    fn hostile_input_fails_cleanly(
        garbage in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = decode_dispersed(&garbage);
    }

    /// Truncating a valid blob anywhere fails cleanly.
    #[test]
    fn truncation_fails_cleanly(
        m in 1usize..5,
        extra in 0usize..4,
        data in proptest::collection::vec(any::<u8>(), 1..600),
        cut_frac in 0.0f64..1.0,
    ) {
        let n = m + extra;
        let blob = encode_dispersed(&data, m, n, 16).unwrap();
        let cut = ((blob.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode_dispersed(&blob[..cut]).is_err());
    }
}
