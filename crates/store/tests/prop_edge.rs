//! Property tests for the edge cache and the migration codec: the byte
//! budget holds over arbitrary admission sequences, whatever the cache
//! serves reconstructs the admitted payload exactly (resident or
//! rehydrated from disk), and migration records round-trip while every
//! hostile mutation is rejected without a panic.

use proptest::prelude::*;

use mrtweb_content::sc::Measure;
use mrtweb_docmodel::lod::Lod;
use mrtweb_store::codec::encode_dispersed;
use mrtweb_store::edge::{EdgeCache, EdgeKey};
use mrtweb_store::migrate::{decode_record, encode_record, MigrationRecord};
use mrtweb_transport::live::{DocumentHeader, LiveClient, LiveServer};
use mrtweb_transport::plan::{TransmissionPlan, UnitSlice};

/// A scratch directory unique to this process and call site.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("mrtweb-prop-edge-{tag}-{nanos}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic cache entry: seeded payload of `payload_len` bytes
/// dispersal-encoded at `packet_size` with `gamma_pct`% redundancy,
/// keyed by `idx` so sequences of entries occupy distinct slots.
fn entry(
    idx: u64,
    payload_len: usize,
    packet_size: usize,
    gamma_pct: usize,
) -> (EdgeKey, DocumentHeader, Vec<u8>, Vec<u8>) {
    let payload: Vec<u8> = (0..payload_len)
        .map(|i| ((i as u64 ^ idx).wrapping_mul(2_654_435_761) >> 7) as u8)
        .collect();
    let plan = TransmissionPlan::sequential(vec![UnitSlice::new("doc", payload_len, 1.0)]);
    let m = plan.raw_packets(packet_size);
    let n = ((m * gamma_pct).div_ceil(100)).max(m);
    let blob = encode_dispersed(&payload, m, n, packet_size).unwrap();
    let header = DocumentHeader {
        doc_len: payload_len,
        m,
        n,
        packet_size,
        plan,
    };
    let key = EdgeKey {
        url: format!("http://cell/doc{idx}"),
        query: String::new(),
        lod: Lod::Paragraph,
        measure: Measure::Ic,
        packet_size,
        gamma_bits: (gamma_pct as f64 / 100.0).to_bits(),
    };
    (key, header, blob, payload)
}

/// Reconstructs the payload from whatever the cache serves for `key`.
fn reconstruct(cache: &EdgeCache, key: &EdgeKey) -> Option<Vec<u8>> {
    let hit = cache.serve(key)?;
    let server = LiveServer::from_cooked(hit.header, hit.packets).ok()?;
    let mut client = LiveClient::new(server.header().clone()).ok()?;
    for f in 0..server.header().n {
        if client.document_bytes().is_some() {
            break;
        }
        if let Some(wire) = server.frame_bytes(f) {
            client.on_wire(wire);
        }
    }
    client.document_bytes().map(<[u8]>::to_vec)
}

/// Strategy for one entry's shape: payload length, packet size, γ%.
fn shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        64usize..1500,
        prop_oneof![Just(32usize), Just(64usize)],
        100usize..200,
    )
}

proptest! {
    /// Residency never exceeds the byte budget at any point of an
    /// arbitrary admission sequence, and a refused admission leaves
    /// nothing behind.
    #[test]
    fn budget_never_exceeded(
        shapes in proptest::collection::vec(shape(), 1..10),
        budget_kib in 1usize..48,
    ) {
        let budget = budget_kib << 10;
        let dir = temp_dir("budget");
        let cache = EdgeCache::new(&dir, budget).unwrap();
        for (i, &(len, ps, gamma)) in shapes.iter().enumerate() {
            let (key, header, blob, _) = entry(i as u64, len, ps, gamma);
            let admitted = cache.admit(key.clone(), header, &blob).unwrap();
            prop_assert!(
                cache.resident_bytes() <= budget,
                "budget {} exceeded at entry {}: resident {}",
                budget, i, cache.resident_bytes()
            );
            if !admitted {
                prop_assert!(cache.serve(&key).is_none());
            }
        }
        prop_assert!(cache.resident_bytes() <= budget);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A hit reconstructs the admitted payload byte-identically — both
    /// straight from residency and after a flush forces rehydration
    /// from disk (the cold-serve path a miss would have produced).
    #[test]
    fn hit_reconstructs_admitted_payload(s in shape(), idx in any::<u64>()) {
        let (len, ps, gamma) = s;
        let dir = temp_dir("identity");
        let cache = EdgeCache::new(&dir, 1 << 22).unwrap();
        let (key, header, blob, payload) = entry(idx, len, ps, gamma);
        prop_assert!(cache.admit(key.clone(), header, &blob).unwrap());
        prop_assert_eq!(reconstruct(&cache, &key).as_deref(), Some(&payload[..]));
        cache.flush_resident();
        prop_assert_eq!(reconstruct(&cache, &key).as_deref(), Some(&payload[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Migration records round-trip exactly.
    #[test]
    fn migration_record_round_trips(s in shape(), idx in any::<u64>()) {
        let (len, ps, gamma) = s;
        let (key, header, blob, _) = entry(idx, len, ps, gamma);
        let record = encode_record(&MigrationRecord {
            key: key.clone(),
            header: header.clone(),
            blob: blob.clone(),
        });
        let decoded = decode_record(&record).unwrap();
        prop_assert_eq!(decoded.key, key);
        prop_assert_eq!(decoded.header, header);
        prop_assert_eq!(decoded.blob, blob);
    }

    /// Arbitrary bytes never panic the migration decoder.
    #[test]
    fn hostile_records_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let _ = decode_record(&bytes);
    }

    /// Any single-byte corruption of a valid record is rejected: the
    /// trailing CRC-32 catches every one-byte error.
    #[test]
    fn corrupted_records_are_rejected(s in shape(), pos in any::<usize>(), mask in 1u8..=255) {
        let (len, ps, gamma) = s;
        let (key, header, blob, _) = entry(1, len, ps, gamma);
        let mut record = encode_record(&MigrationRecord { key, header, blob });
        let i = pos % record.len();
        record[i] ^= mask;
        prop_assert!(decode_record(&record).is_err(), "flip at {} passed", i);
    }

    /// Truncating a valid record always errors — no partial migrations.
    #[test]
    fn truncated_records_error(s in shape(), cut_frac in 0.0f64..1.0) {
        let (len, ps, gamma) = s;
        let (key, header, blob, _) = entry(2, len, ps, gamma);
        let record = encode_record(&MigrationRecord { key, header, blob });
        let cut = ((record.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < record.len());
        prop_assert!(decode_record(&record[..cut]).is_err());
    }
}
