//! Property tests for the persistence codec: round trips are exact and
//! arbitrary bytes never panic the decoder.

use proptest::prelude::*;

use mrtweb_docmodel::document::Document;
use mrtweb_docmodel::gen::SyntheticDocSpec;
use mrtweb_docmodel::lod::Lod;
use mrtweb_docmodel::unit::{Inline, Unit};
use mrtweb_store::codec::{decode_document, decode_index, encode_document, encode_index};
use mrtweb_textproc::pipeline::ScPipeline;

fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9]{1,8}", 1..5).prop_map(|ws| ws.join(" "))
}

fn document() -> impl Strategy<Value = Document> {
    (
        proptest::option::of(text()),
        proptest::collection::vec(
            (
                proptest::option::of(text()),
                proptest::collection::vec((text(), any::<bool>()), 1..4),
            ),
            1..4,
        ),
    )
        .prop_map(|(title, sections)| {
            let mut root = Unit::new(Lod::Document);
            root.set_title(title);
            for (stitle, paras) in sections {
                let mut s = Unit::new(Lod::Section);
                s.set_title(stitle);
                for (t, emph) in paras {
                    let mut p = Unit::new(Lod::Paragraph);
                    p.push_run(if emph {
                        Inline::emphasized(t)
                    } else {
                        Inline::plain(t)
                    });
                    s.push_child(p);
                }
                root.push_child(s);
            }
            Document::from_root(root)
        })
}

proptest! {
    /// Document round trips are exact for arbitrary structured content.
    #[test]
    fn document_round_trip(doc in document()) {
        let bytes = encode_document(&doc);
        prop_assert_eq!(decode_document(&bytes).unwrap(), doc);
    }

    /// Index round trips are exact.
    #[test]
    fn index_round_trip(seed in any::<u64>()) {
        let doc = SyntheticDocSpec {
            sections: 2,
            target_bytes: 600,
            keyword_budget: 25,
            ..Default::default()
        }
        .generate(seed)
        .document;
        let index = ScPipeline::default().run(&doc);
        let bytes = encode_index(&index);
        prop_assert_eq!(decode_index(&bytes).unwrap(), index);
    }

    /// Decoding arbitrary garbage never panics (it errors).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_document(&bytes);
        let _ = decode_index(&bytes);
    }

    /// Flipping any single byte of a valid encoding either errors or
    /// decodes to *some* document — never panics.
    #[test]
    fn bit_flips_never_panic(doc in document(), pos in any::<usize>(), mask in 1u8..=255) {
        let mut bytes = encode_document(&doc);
        let i = pos % bytes.len();
        bytes[i] ^= mask;
        let _ = decode_document(&bytes);
    }

    /// Truncating a valid encoding always errors (no silent partial
    /// documents).
    #[test]
    fn truncations_error(doc in document(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_document(&doc);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode_document(&bytes[..cut]).is_err());
    }
}
