//! The concurrent document store with structural-characteristic caching.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use mrtweb_content::query::Query;
use mrtweb_content::sc::StructuralCharacteristic;
use mrtweb_docmodel::document::Document;
use mrtweb_textproc::index::DocumentIndex;
use mrtweb_textproc::pipeline::ScPipeline;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Structural characteristics served from cache.
    pub sc_hits: u64,
    /// Structural characteristics computed on demand.
    pub sc_misses: u64,
}

/// A stored document with its pre-computed logical index.
#[derive(Debug)]
struct StoredDoc {
    document: Arc<Document>,
    index: Arc<DocumentIndex>,
    /// Store-wide unique id of this exact document version; a `put`
    /// over the same URL assigns a fresh one, so derived caches (the
    /// edge cache's cooked blobs) can detect replacement without
    /// holding the document pointer.
    generation: u64,
    /// Query-keyed SC cache with insertion-order eviction.
    sc_cache: HashMap<String, Arc<StructuralCharacteristic>>,
    sc_order: Vec<String>,
}

/// A concurrent URL-keyed document store.
///
/// The logical index of every document is computed once at `put` time —
/// "the weights of keywords of a document remain unchanged across
/// queries, only the contribution by querying words need be
/// incorporated" (§3.3) — and per-query structural characteristics are
/// cached with bounded LRU-ish eviction.
///
/// # Example
///
/// ```
/// use mrtweb_store::store::DocumentStore;
/// use mrtweb_docmodel::document::Document;
/// use mrtweb_content::query::Query;
///
/// # fn main() -> Result<(), mrtweb_docmodel::xml::ParseError> {
/// let store = DocumentStore::new(8);
/// let doc = Document::parse_xml(
///     "<document><paragraph>mobile web</paragraph></document>")?;
/// store.put("http://a/", doc);
/// let q = Query::parse("mobile", store.pipeline());
/// let sc1 = store.structural_characteristic("http://a/", &q).unwrap();
/// let sc2 = store.structural_characteristic("http://a/", &q).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&sc1, &sc2)); // second hit is cached
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DocumentStore {
    docs: RwLock<HashMap<String, StoredDoc>>,
    pipeline: ScPipeline,
    sc_capacity: usize,
    stats: RwLock<CacheStats>,
    /// Source of [`StoredDoc::generation`] values.
    next_generation: AtomicU64,
}

impl DocumentStore {
    /// Creates a store caching at most `sc_capacity` structural
    /// characteristics per document (0 disables SC caching).
    pub fn new(sc_capacity: usize) -> Self {
        DocumentStore {
            docs: RwLock::new(HashMap::new()),
            pipeline: ScPipeline::default(),
            sc_capacity,
            stats: RwLock::new(CacheStats::default()),
            next_generation: AtomicU64::new(0),
        }
    }

    /// Uses a custom pipeline (stop words, policy, stemming).
    pub fn with_pipeline(mut self, pipeline: ScPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// The pipeline queries must be normalized with.
    pub fn pipeline(&self) -> &ScPipeline {
        &self.pipeline
    }

    /// Inserts (or replaces) a document, computing its logical index.
    /// Returns the previous document if one existed.
    pub fn put(&self, url: impl Into<String>, document: Document) -> Option<Arc<Document>> {
        let index = Arc::new(self.pipeline.run(&document));
        let stored = StoredDoc {
            document: Arc::new(document),
            index,
            // ORDERING: only uniqueness matters, not publication order —
            // the value travels to readers under the `docs` lock.
            generation: self.next_generation.fetch_add(1, Ordering::Relaxed),
            sc_cache: HashMap::new(),
            sc_order: Vec::new(),
        };
        self.docs
            .write()
            .insert(url.into(), stored)
            .map(|s| s.document)
    }

    /// The generation of the document currently stored at `url`, or
    /// `None` for unknown URLs. Every `put` assigns a fresh value, so a
    /// derived artifact stamped with the generation it was built from
    /// (an edge-cache blob) is stale exactly when the stamps differ.
    pub fn generation(&self, url: &str) -> Option<u64> {
        self.docs.read().get(url).map(|s| s.generation)
    }

    /// The document at `url` together with its generation, read under
    /// one lock — a derived artifact cooked from the returned document
    /// can stamp itself with a generation that is guaranteed to match
    /// it, even against a concurrent `put`.
    pub fn document_with_generation(&self, url: &str) -> Option<(Arc<Document>, u64)> {
        self.docs
            .read()
            .get(url)
            .map(|s| (Arc::clone(&s.document), s.generation))
    }

    /// Removes a document.
    pub fn remove(&self, url: &str) -> Option<Arc<Document>> {
        self.docs.write().remove(url).map(|s| s.document)
    }

    /// Fetches a document.
    pub fn document(&self, url: &str) -> Option<Arc<Document>> {
        self.docs.read().get(url).map(|s| Arc::clone(&s.document))
    }

    /// Fetches a document's pre-computed logical index.
    pub fn index(&self, url: &str) -> Option<Arc<DocumentIndex>> {
        self.docs.read().get(url).map(|s| Arc::clone(&s.index))
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.read().is_empty()
    }

    /// Stored URLs (unordered).
    pub fn urls(&self) -> Vec<String> {
        self.docs.read().keys().cloned().collect()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.read()
    }

    /// The structural characteristic of `url` under `query`, cached per
    /// canonical query.
    ///
    /// Returns `None` for unknown URLs.
    pub fn structural_characteristic(
        &self,
        url: &str,
        query: &Query,
    ) -> Option<Arc<StructuralCharacteristic>> {
        let key = canonical_query_key(query);
        // Fast path: read lock, cache hit.
        {
            let docs = self.docs.read();
            let stored = docs.get(url)?;
            if let Some(sc) = stored.sc_cache.get(&key) {
                self.stats.write().sc_hits += 1;
                return Some(Arc::clone(sc));
            }
        }
        // Slow path: compute outside any lock, then insert.
        let index = self.index(url)?;
        let sc = Arc::new(StructuralCharacteristic::from_index(&index, Some(query)));
        self.stats.write().sc_misses += 1;
        if self.sc_capacity > 0 {
            let mut docs = self.docs.write();
            if let Some(stored) = docs.get_mut(url) {
                if !stored.sc_cache.contains_key(&key) {
                    if stored.sc_order.len() >= self.sc_capacity {
                        let evict = stored.sc_order.remove(0);
                        stored.sc_cache.remove(&evict);
                    }
                    stored.sc_cache.insert(key.clone(), Arc::clone(&sc));
                    stored.sc_order.push(key);
                }
            }
        }
        Some(sc)
    }
}

/// Canonical cache key of a query: sorted `stem:count` pairs.
fn canonical_query_key(query: &Query) -> String {
    let mut parts: Vec<String> = query.iter().map(|(s, n)| format!("{s}:{n}")).collect();
    parts.sort();
    parts.join("\u{1f}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Document {
        Document::parse_xml(&format!(
            "<document><paragraph>{text}</paragraph></document>"
        ))
        .unwrap()
    }

    fn store_with_doc() -> DocumentStore {
        let s = DocumentStore::new(2);
        s.put("u1", doc("mobile web browsing"));
        s.put("u2", doc("database storage engines"));
        s
    }

    #[test]
    fn put_get_remove() {
        let s = store_with_doc();
        assert_eq!(s.len(), 2);
        assert!(s.document("u1").is_some());
        assert!(s.index("u1").is_some());
        assert!(s.document("nope").is_none());
        assert!(s.remove("u1").is_some());
        assert!(s.document("u1").is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn put_replaces_and_returns_old() {
        let s = DocumentStore::new(2);
        assert!(s.put("u", doc("old text")).is_none());
        let old = s.put("u", doc("new text")).unwrap();
        assert!(old.full_text().contains("old"));
        assert!(s.document("u").unwrap().full_text().contains("new"));
    }

    #[test]
    fn sc_cache_hits_after_first_computation() {
        let s = store_with_doc();
        let q = Query::parse("mobile", s.pipeline());
        let a = s.structural_characteristic("u1", &q).unwrap();
        let b = s.structural_characteristic("u1", &q).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let st = s.stats();
        assert_eq!(st.sc_misses, 1);
        assert_eq!(st.sc_hits, 1);
    }

    #[test]
    fn distinct_queries_get_distinct_scs() {
        let s = store_with_doc();
        let qa = Query::parse("mobile", s.pipeline());
        let qb = Query::parse("browsing", s.pipeline());
        let a = s.structural_characteristic("u1", &qa).unwrap();
        let b = s.structural_characteristic("u1", &qb).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(s.stats().sc_misses, 2);
    }

    #[test]
    fn query_key_is_order_insensitive() {
        let s = store_with_doc();
        let qa = Query::parse("mobile web", s.pipeline());
        let qb = Query::parse("web mobile", s.pipeline());
        let a = s.structural_characteristic("u1", &qa).unwrap();
        let b = s.structural_characteristic("u1", &qb).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "query word order must not defeat the cache"
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let s = store_with_doc(); // capacity 2
        let pipeline = s.pipeline().clone();
        let q1 = Query::parse("mobile", &pipeline);
        let q2 = Query::parse("web", &pipeline);
        let q3 = Query::parse("browsing", &pipeline);
        let first = s.structural_characteristic("u1", &q1).unwrap();
        s.structural_characteristic("u1", &q2).unwrap();
        s.structural_characteristic("u1", &q3).unwrap(); // evicts q1
        let again = s.structural_characteristic("u1", &q1).unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "q1 should have been evicted");
        assert_eq!(s.stats().sc_misses, 4);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let s = DocumentStore::new(0);
        s.put("u", doc("mobile things"));
        let q = Query::parse("mobile", s.pipeline());
        s.structural_characteristic("u", &q).unwrap();
        s.structural_characteristic("u", &q).unwrap();
        assert_eq!(s.stats().sc_misses, 2);
        assert_eq!(s.stats().sc_hits, 0);
    }

    #[test]
    fn unknown_url_returns_none() {
        let s = store_with_doc();
        let q = Query::parse("mobile", s.pipeline());
        assert!(s.structural_characteristic("ghost", &q).is_none());
    }

    #[test]
    fn concurrent_reads_and_computes() {
        let s = Arc::new(store_with_doc());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let q = Query::parse(if t % 2 == 0 { "mobile" } else { "web" }, s.pipeline());
                for _ in 0..50 {
                    let sc = s.structural_characteristic("u1", &q).unwrap();
                    assert!(!sc.entries().is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let st = s.stats();
        assert_eq!(st.sc_hits + st.sc_misses, 400);
        assert!(
            st.sc_misses <= 16,
            "misses {} should be near 2",
            st.sc_misses
        );
    }
}
